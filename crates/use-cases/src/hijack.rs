//! Forged-origin hijack detection (§3.1, §11, Table 3).
//!
//! In a forged-origin (Type-X) hijack the attacker keeps the victim's
//! origin AS at the end of the forged path, defeating origin validation;
//! the hijack is *detectable* only if at least one VP's best route is the
//! forged one. The static analysis simulates a hijack for every victim and
//! measures how many are visible from a VP set; the stream analysis scores
//! a sampled update set against the ground-truth hijack events.

use as_topology::Topology;
use bgp_sim::routing::{compute_routes, SourceAnnouncement};
use bgp_sim::{EventKind, UpdateStream};
use bgp_types::Asn;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Result of a static hijack-visibility campaign.
#[derive(Clone, Copy, Debug, Default)]
pub struct HijackCampaign {
    /// Hijacks simulated.
    pub total: usize,
    /// Hijacks visible from at least one VP.
    pub detected: usize,
}

impl HijackCampaign {
    /// Detection rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Simulates one Type-`x` forged-origin hijack per victim in `victims`
/// (random attacker each, deterministic in `seed`) and counts how many are
/// visible from `vp_nodes` (§3.1's experiment).
pub fn static_detection(
    topo: &Topology,
    vp_nodes: &[u32],
    victims: &[u32],
    x: u8,
    seed: u64,
) -> HijackCampaign {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4a11_ce5e_0000_0001);
    let failed = HashSet::new();
    let vp_set: Vec<u32> = vp_nodes.to_vec();
    let n = topo.num_ases() as u32;
    let mut campaign = HijackCampaign::default();
    for &victim in victims {
        // random attacker distinct from the victim
        let attacker = loop {
            let a = rng.gen_range(0..n);
            if a != victim {
                break a;
            }
        };
        let fillers: Vec<u32> = match x {
            0 | 1 => Vec::new(),
            _ => {
                // X-1 filler hops: real neighbors of the victim where possible
                let mut f: Vec<u32> = topo
                    .providers(victim)
                    .iter()
                    .chain(topo.peers(victim))
                    .chain(topo.customers(victim))
                    .copied()
                    .filter(|&v| v != attacker)
                    .take((x - 1) as usize)
                    .collect();
                let mut pad = 0u32;
                while f.len() < (x - 1) as usize {
                    if pad != victim && pad != attacker {
                        f.push(pad);
                    }
                    pad += 1;
                }
                f
            }
        };
        let sources = vec![
            SourceAnnouncement::origin(victim),
            SourceAnnouncement::forged(attacker, &fillers, victim),
        ];
        let table = compute_routes(topo, &sources, &failed);
        campaign.total += 1;
        let visible = vp_set.iter().any(|&v| table.source_index(v) == Some(1));
        if visible {
            campaign.detected += 1;
        }
    }
    campaign
}

/// The stream-based evaluator (Table 3): ground truth is the set of
/// injected hijack events; a hijack is detected if the sample contains at
/// least one update whose path traverses the attacker and claims the
/// victim's origin.
pub struct HijackDetection {
    /// (prefix, attacker ASN) per ground-truth hijack.
    truth: Vec<(bgp_types::Prefix, Asn)>,
}

impl HijackDetection {
    /// Collects the ground-truth hijacks from the stream's event log.
    pub fn new(stream: &UpdateStream) -> Self {
        let truth = stream
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ForgedOriginHijack {
                    prefix, attacker, ..
                } => Some((bgp_types::Prefix::synthetic(prefix), Asn(attacker + 1))),
                _ => None,
            })
            .collect();
        HijackDetection { truth }
    }

    /// Number of injected hijacks.
    pub fn truth_size(&self) -> usize {
        self.truth.len()
    }

    /// Fraction of injected hijacks visible in the sample.
    pub fn score(&self, stream: &UpdateStream, sample: &[usize]) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let mut detected = 0usize;
        for &(prefix, attacker) in &self.truth {
            let hit = sample.iter().any(|&i| {
                let u = &stream.updates[i];
                u.prefix == prefix && u.is_announce() && u.path.contains(attacker)
            });
            if hit {
                detected += 1;
            }
        }
        detected as f64 / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    #[test]
    fn full_vp_coverage_detects_every_hijack() {
        let topo = TopologyBuilder::artificial(200, 5).build();
        let all: Vec<u32> = (0..topo.num_ases() as u32).collect();
        let victims: Vec<u32> = (0..50u32).collect();
        let c = static_detection(&topo, &all, &victims, 1, 1);
        // the attacker's own AS hosts a VP, so every hijack is visible
        assert_eq!(c.detected, c.total);
    }

    #[test]
    fn sparse_coverage_misses_hijacks() {
        let topo = TopologyBuilder::artificial(400, 6).build();
        let few: Vec<u32> = vec![7, 99, 256];
        let victims: Vec<u32> = (0..80u32).collect();
        let c = static_detection(&topo, &few, &victims, 1, 2);
        assert!(c.rate() < 1.0, "3 VPs cannot see every Type-1 hijack");
        assert!(c.rate() > 0.0);
    }

    #[test]
    fn type2_less_visible_than_type1() {
        let topo = TopologyBuilder::artificial(400, 7).build();
        let vps: Vec<u32> = (0..20u32).map(|i| i * 19 % 400).collect();
        let victims: Vec<u32> = (0..100u32).map(|i| (i * 3) % 400).collect();
        let t1 = static_detection(&topo, &vps, &victims, 1, 3).rate();
        let t2 = static_detection(&topo, &vps, &victims, 2, 3).rate();
        assert!(
            t2 <= t1 + 0.05,
            "Type-2 ({t2}) should not be more visible than Type-1 ({t1})"
        );
    }

    #[test]
    fn stream_scoring_matches_event_log() {
        let topo = TopologyBuilder::artificial(120, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(1.0, 3);
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(10)
                .seed(81)
                .weights([0.0, 1.0, 0.0, 0.0]),
        );
        let uc = HijackDetection::new(&s);
        assert!(uc.truth_size() > 0);
        let all: Vec<usize> = (0..s.updates.len()).collect();
        let full = uc.score(&s, &all);
        assert!(full > 0.0, "full coverage must catch some hijack");
        assert_eq!(uc.score(&s, &[]), 0.0);
        assert!(uc.score(&s, &all[..all.len() / 2]) <= full + 1e-9);
    }
}
