//! Use case II — MOAS (Multiple-Origin AS) prefix detection (§10).
//!
//! A MOAS prefix is announced by more than one origin AS during the
//! observation window — legitimately (anycast, transfers) or maliciously
//! (origin hijacks). Every scheme gets the same prior knowledge (the
//! window-start origin from the RIBs), so detecting a MOAS requires
//! sampling at least one update carrying the *other* origin.

use bgp_sim::UpdateStream;
use bgp_types::{Asn, Prefix};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Detects MOAS prefixes among the sampled updates: a prefix whose observed
/// origin set (initial origin + sampled-update origins) has ≥ 2 members.
pub fn detect(stream: &UpdateStream, indices: &[usize]) -> HashSet<Prefix> {
    let mut origins: BTreeMap<Prefix, BTreeSet<Asn>> = BTreeMap::new();
    for &i in indices {
        let u = &stream.updates[i];
        if let Some(o) = u.path.origin() {
            origins.entry(u.prefix).or_default().insert(o);
        }
    }
    let initials = initial_origins(stream);
    let mut out = HashSet::new();
    for (prefix, set) in origins {
        // window-start origin (known to every scheme from the RIB dumps)
        let mut all = set;
        if let Some(o) = initials.get(&prefix) {
            all.insert(*o);
        }
        if all.len() >= 2 {
            out.insert(prefix);
        }
    }
    out
}

/// Map of every prefix to its window-start origin.
fn initial_origins(stream: &UpdateStream) -> BTreeMap<Prefix, Asn> {
    (0..stream.prefix_origin.len() as u32)
        .map(|id| {
            (
                Prefix::synthetic(id),
                Asn(stream.prefix_origin[id as usize] + 1),
            )
        })
        .collect()
}

#[cfg(test)]
fn initial_origin(stream: &UpdateStream, prefix: Prefix) -> Option<Asn> {
    initial_origins(stream).get(&prefix).copied()
}

/// The Table-2 evaluator for MOAS detection.
pub struct MoasDetection {
    truth: HashSet<Prefix>,
}

impl MoasDetection {
    /// Ground truth: MOAS prefixes visible in the full stream.
    pub fn new(stream: &UpdateStream) -> Self {
        let all: Vec<usize> = (0..stream.updates.len()).collect();
        MoasDetection {
            truth: detect(stream, &all),
        }
    }

    /// Number of ground-truth MOAS prefixes.
    pub fn truth_size(&self) -> usize {
        self.truth.len()
    }

    /// Fraction of ground-truth MOAS prefixes detected from the sample.
    pub fn score(&self, stream: &UpdateStream, sample: &[usize]) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let found = detect(stream, sample);
        self.truth.intersection(&found).count() as f64 / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    fn stream() -> UpdateStream {
        let topo = TopologyBuilder::artificial(120, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.5, 3);
        sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(30)
                .seed(41)
                .weights([0.1, 0.45, 0.45, 0.0]),
        )
    }

    #[test]
    fn hijacks_and_origin_changes_create_moas() {
        let s = stream();
        let uc = MoasDetection::new(&s);
        assert!(uc.truth_size() > 0, "no MOAS produced");
        let all: Vec<usize> = (0..s.updates.len()).collect();
        assert!((uc.score(&s, &all) - 1.0).abs() < 1e-9);
        assert_eq!(uc.score(&s, &[]), 0.0);
    }

    #[test]
    fn single_update_with_new_origin_suffices() {
        let s = stream();
        let uc = MoasDetection::new(&s);
        // find one update whose origin differs from the initial origin
        let idx = (0..s.updates.len()).find(|&i| {
            let u = &s.updates[i];
            u.path
                .origin()
                .and_then(|o| initial_origin(&s, u.prefix).map(|io| o != io))
                .unwrap_or(false)
        });
        if let Some(i) = idx {
            let score = uc.score(&s, &[i]);
            assert!(
                score > 0.0,
                "one MOAS-revealing update must detect one MOAS"
            );
        }
    }
}
