//! Use case III — AS topology mapping (§10, §3, §11).
//!
//! Counts the distinct AS-level adjacencies visible in the collected data.
//! The §3/§11 simulations additionally split observed links by relationship
//! (p2p links propagate less and are the hard case).

use as_topology::{Relationship, Topology};
use bgp_sim::routing::{compute_routes, SourceAnnouncement};
use bgp_sim::UpdateStream;
use bgp_types::Link;
use std::collections::HashSet;

/// Undirected links visible in the sampled updates.
pub fn observed_links(stream: &UpdateStream, indices: &[usize]) -> HashSet<Link> {
    let mut out = HashSet::new();
    for &i in indices {
        for l in stream.updates[i].path.undirected_links() {
            out.insert(l);
        }
    }
    out
}

/// The Table-2 evaluator: fraction of the links visible in the full stream
/// that the sample still covers.
pub struct TopologyMapping {
    truth: HashSet<Link>,
}

impl TopologyMapping {
    /// Ground truth: links visible in the full stream.
    pub fn new(stream: &UpdateStream) -> Self {
        let all: Vec<usize> = (0..stream.updates.len()).collect();
        TopologyMapping {
            truth: observed_links(stream, &all),
        }
    }

    /// Number of ground-truth links.
    pub fn truth_size(&self) -> usize {
        self.truth.len()
    }

    /// Coverage score in `[0, 1]`.
    pub fn score(&self, stream: &UpdateStream, sample: &[usize]) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let found = observed_links(stream, sample);
        self.truth.intersection(&found).count() as f64 / self.truth.len() as f64
    }
}

/// §3/§11 static analysis: the fraction of p2p and c2p links of `topo`
/// visible in the best routes collected by `vps` (every AS announcing one
/// prefix). Returns `(p2p_coverage, c2p_coverage)`.
pub fn static_link_coverage(topo: &Topology, vp_nodes: &[u32]) -> (f64, f64) {
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let failed = HashSet::new();
    for origin in 0..topo.num_ases() as u32 {
        let table = compute_routes(topo, &[SourceAnnouncement::origin(origin)], &failed);
        for &v in vp_nodes {
            if let Some(path) = table.path(v) {
                for w in path.windows(2) {
                    let (a, b) = (w[0].min(w[1]), w[0].max(w[1]));
                    seen.insert((a, b));
                }
            }
        }
    }
    let mut p2p_total = 0usize;
    let mut p2p_seen = 0usize;
    let mut c2p_total = 0usize;
    let mut c2p_seen = 0usize;
    for l in topo.links() {
        let key = (l.a.min(l.b), l.a.max(l.b));
        match l.rel {
            Relationship::P2p => {
                p2p_total += 1;
                if seen.contains(&key) {
                    p2p_seen += 1;
                }
            }
            Relationship::C2p => {
                c2p_total += 1;
                if seen.contains(&key) {
                    c2p_seen += 1;
                }
            }
        }
    }
    (
        if p2p_total == 0 {
            1.0
        } else {
            p2p_seen as f64 / p2p_total as f64
        },
        if c2p_total == 0 {
            1.0
        } else {
            c2p_seen as f64 / c2p_total as f64
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    #[test]
    fn stream_based_scores_monotone() {
        let topo = TopologyBuilder::artificial(120, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.4, 3);
        let s = sim.synthesize_stream(&vps, StreamConfig::default().events(30).seed(51));
        let uc = TopologyMapping::new(&s);
        assert!(uc.truth_size() > 0);
        let all: Vec<usize> = (0..s.updates.len()).collect();
        assert!((uc.score(&s, &all) - 1.0).abs() < 1e-9);
        assert_eq!(uc.score(&s, &[]), 0.0);
        let half: Vec<usize> = all.iter().copied().step_by(2).collect();
        let sh = uc.score(&s, &half);
        assert!((0.0..=1.0).contains(&sh));
    }

    #[test]
    fn full_coverage_sees_all_c2p_links() {
        let topo = TopologyBuilder::artificial(150, 7).build();
        let all: Vec<u32> = (0..topo.num_ases() as u32).collect();
        let (p2p, c2p) = static_link_coverage(&topo, &all);
        // With a VP in every AS, every link that BGP uses at all is seen.
        assert!(c2p > 0.95, "c2p coverage {c2p}");
        assert!(p2p > 0.9, "p2p coverage {p2p}");
    }

    #[test]
    fn low_coverage_misses_p2p_links_most() {
        let topo = TopologyBuilder::artificial(300, 8).build();
        let few: Vec<u32> = (0..3u32).map(|i| i * 97 % 300).collect();
        let (p2p_few, c2p_few) = static_link_coverage(&topo, &few);
        let all: Vec<u32> = (0..topo.num_ases() as u32).collect();
        let (p2p_all, c2p_all) = static_link_coverage(&topo, &all);
        assert!(p2p_few < p2p_all);
        assert!(c2p_few <= c2p_all + 1e-12);
        // the paper's key asymmetry: p2p links are the hard case
        assert!(
            p2p_few < c2p_few,
            "p2p ({p2p_few}) should be harder to observe than c2p ({c2p_few})"
        );
    }
}
