//! Use case IV — action communities detection (§10).
//!
//! Action communities request traffic-engineering behaviour and are the
//! hardest community class to observe: they are attached rarely and
//! stripped a few hops from the origin. The evaluator counts the distinct
//! action communities visible in the sample.

use bgp_sim::UpdateStream;
use bgp_types::Community;
use std::collections::HashSet;

/// Distinct action communities visible in the sampled updates.
pub fn detect(stream: &UpdateStream, indices: &[usize]) -> HashSet<Community> {
    let mut out = HashSet::new();
    for &i in indices {
        for c in &stream.updates[i].communities {
            if c.is_action() {
                out.insert(*c);
            }
        }
    }
    out
}

/// The Table-2 evaluator for action communities.
pub struct ActionCommunities {
    truth: HashSet<Community>,
}

impl ActionCommunities {
    /// Ground truth: action communities in the full stream.
    pub fn new(stream: &UpdateStream) -> Self {
        let all: Vec<usize> = (0..stream.updates.len()).collect();
        ActionCommunities {
            truth: detect(stream, &all),
        }
    }

    /// Number of ground-truth action communities.
    pub fn truth_size(&self) -> usize {
        self.truth.len()
    }

    /// Detection score in `[0, 1]`.
    pub fn score(&self, stream: &UpdateStream, sample: &[usize]) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let found = detect(stream, sample);
        self.truth.intersection(&found).count() as f64 / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    #[test]
    fn community_changes_produce_action_communities() {
        let topo = TopologyBuilder::artificial(120, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.6, 3);
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(30)
                .seed(61)
                .weights([0.0, 0.0, 0.0, 1.0]),
        );
        let uc = ActionCommunities::new(&s);
        assert!(uc.truth_size() > 0, "no action communities generated");
        let all: Vec<usize> = (0..s.updates.len()).collect();
        assert!((uc.score(&s, &all) - 1.0).abs() < 1e-9);
        assert_eq!(uc.score(&s, &[]), 0.0);
    }

    #[test]
    fn only_near_origin_updates_carry_actions() {
        let topo = TopologyBuilder::artificial(120, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.6, 3);
        let s = sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(30)
                .seed(62)
                .weights([0.0, 0.0, 0.0, 1.0]),
        );
        for u in &s.updates {
            if u.communities.iter().any(|c| c.is_action()) {
                assert!(
                    u.path.unique_len() <= bgp_sim::communities::ACTION_VISIBILITY_HOPS,
                    "action community survived too far: {u}"
                );
            }
        }
    }
}
