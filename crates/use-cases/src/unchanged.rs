//! Use case V — unchanged-path updates detection (§10).
//!
//! Unchanged-path updates signal a change in community values without a
//! change in AS path. Detecting one requires knowing the VP's current
//! route, so the evaluator replays each `(VP, prefix)` state from the
//! window-start RIBs: an update is detected as unchanged-path if its path
//! equals the replayed state and its communities differ.

use bgp_sim::UpdateStream;
use bgp_types::{AsPath, Asn, Community, Prefix, VpId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// An unchanged-path event: the origin AS that re-tagged its announcements
/// and the new community values *in the origin's own namespace* (transit
/// tags vary per path, so they are not part of the event identity).
/// Event-keyed — one origin re-tagging its address space is one event no
/// matter how many prefixes and VPs echo it, and recognizing it from any
/// single retained observation detects it.
pub type UnchangedKey = (Asn, BTreeSet<Community>);

/// Detects unchanged-path events among the updates selected by `indices`
/// (sorted): replaying the sampled data per (VP, prefix) from the
/// window-start RIBs, an update whose path equals the replayed state but
/// whose communities differ is an unchanged-path update.
pub fn detect(stream: &UpdateStream, indices: &[usize]) -> HashSet<UnchangedKey> {
    detect_indices(stream, indices)
        .into_iter()
        .filter_map(|i| {
            let u = &stream.updates[i];
            u.path.origin().map(|o| {
                let own: BTreeSet<Community> = u
                    .communities
                    .iter()
                    .copied()
                    .filter(|c| {
                        // communities in the origin's namespace (the
                        // simulator maps origins into 16-bit space)
                        c.asn_part() as u32 == o.value() % 60_000
                            || c.asn_part() as u32 == (o.value() - 1) % 60_000 + 1
                    })
                    .collect();
                (o, own)
            })
        })
        .collect()
}

/// The raw per-update detection (indices into `stream.updates`).
pub fn detect_indices(stream: &UpdateStream, indices: &[usize]) -> HashSet<usize> {
    let mut state: HashMap<(VpId, Prefix), (AsPath, BTreeSet<Community>)> = HashMap::new();
    // seed from initial RIBs
    for (vp, rib) in &stream.initial_ribs {
        for (prefix, entry) in rib.iter() {
            state.insert(
                (*vp, *prefix),
                (entry.path.clone(), entry.communities.clone()),
            );
        }
    }
    let mut out = HashSet::new();
    for &i in indices {
        let u = &stream.updates[i];
        let key = (u.vp, u.prefix);
        if u.is_announce() {
            if let Some((path, comms)) = state.get(&key) {
                if *path == u.path && *comms != u.communities {
                    out.insert(i);
                }
            }
            state.insert(key, (u.path.clone(), u.communities.clone()));
        } else {
            state.remove(&key);
        }
    }
    out
}

/// The Table-2 evaluator for unchanged-path updates.
pub struct UnchangedPath {
    truth: HashSet<UnchangedKey>,
}

impl UnchangedPath {
    /// Ground truth: unchanged-path updates in the full stream.
    pub fn new(stream: &UpdateStream) -> Self {
        let all: Vec<usize> = (0..stream.updates.len()).collect();
        UnchangedPath {
            truth: detect(stream, &all),
        }
    }

    /// Number of ground-truth unchanged-path updates.
    pub fn truth_size(&self) -> usize {
        self.truth.len()
    }

    /// Fraction of ground-truth unchanged-path updates correctly detected
    /// from the sample (an update counts only if the sample both contains
    /// it and has the state to recognize it).
    pub fn score(&self, stream: &UpdateStream, sample: &[usize]) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let found = detect(stream, sample);
        self.truth.intersection(&found).count() as f64 / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    fn stream() -> UpdateStream {
        let topo = TopologyBuilder::artificial(120, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.4, 3);
        sim.synthesize_stream(
            &vps,
            StreamConfig::default()
                .events(25)
                .seed(71)
                .weights([0.2, 0.0, 0.0, 0.8]),
        )
    }

    #[test]
    fn community_changes_yield_unchanged_path_updates() {
        let s = stream();
        let uc = UnchangedPath::new(&s);
        assert!(uc.truth_size() > 0, "no unchanged-path updates produced");
        let all: Vec<usize> = (0..s.updates.len()).collect();
        assert!((uc.score(&s, &all) - 1.0).abs() < 1e-9);
        assert_eq!(uc.score(&s, &[]), 0.0);
    }

    #[test]
    fn detected_updates_really_keep_the_path() {
        let s = stream();
        let all: Vec<usize> = (0..s.updates.len()).collect();
        let found = detect_indices(&s, &all);
        for &i in &found {
            assert!(s.updates[i].withdrawn_links.is_empty());
            assert!(s.updates[i].is_announce());
        }
    }

    #[test]
    fn sampling_away_context_loses_detections() {
        let s = stream();
        let uc = UnchangedPath::new(&s);
        // Keep only every third update: both the update itself and its
        // state context may be missing.
        let third: Vec<usize> = (0..s.updates.len()).step_by(3).collect();
        let sc = uc.score(&s, &third);
        assert!(sc < 1.0);
    }
}
