//! AS-relationship inference and customer-cone replication (§12).
//!
//! Implements a Gao/Luckie-style relationship inference over a corpus of
//! observed AS paths: each path votes on the orientation of its links
//! relative to the path's apex (the highest-degree AS); apex-adjacent
//! links between comparably-sized ASes vote peer-to-peer. §12 measures how
//! many relationships a sample lets us infer and validates them against
//! ground truth.

use as_topology::{cone, Topology};
use std::collections::HashMap;

/// An inferred relationship for an undirected AS pair `(a, b)` with
/// `a < b` (node indices).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InferredRel {
    /// `a` is the customer of `b`.
    ACustomerOfB,
    /// `b` is the customer of `a`.
    BCustomerOfA,
    /// Settlement-free peering.
    Peer,
}

/// Degree ratio above which an apex-adjacent link votes p2p.
pub const PEER_DEGREE_RATIO: f64 = 0.6;

/// Infers relationships from a corpus of AS paths (node indices, VP side
/// first, origin last). Returns a map keyed by `(min, max)` node pair.
pub fn infer_relationships(paths: &[Vec<u32>]) -> HashMap<(u32, u32), InferredRel> {
    // Observed *transit degree*: the number of distinct neighbor pairs an
    // AS forwards between (it appears in the interior of a path). This
    // approximates the provider hierarchy far better than the raw degree,
    // which peering inflates.
    let mut transit: HashMap<u32, std::collections::HashSet<(u32, u32)>> = HashMap::new();
    let mut neighbor: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
    for p in paths {
        let mut path: Vec<u32> = Vec::with_capacity(p.len());
        for &h in p {
            if path.last() != Some(&h) {
                path.push(h);
            }
        }
        for w in path.windows(2) {
            neighbor.entry(w[0]).or_default().insert(w[1]);
            neighbor.entry(w[1]).or_default().insert(w[0]);
        }
        for w in path.windows(3) {
            transit
                .entry(w[1])
                .or_default()
                .insert((w[0].min(w[2]), w[0].max(w[2])));
        }
    }
    // rank = (transit degree, plain degree) — the plain degree breaks ties
    // among stubs and low-tier ASes
    let deg = |x: u32| {
        transit.get(&x).map(|s| s.len()).unwrap_or(0) * 10_000
            + neighbor.get(&x).map(|s| s.len()).unwrap_or(0)
    };

    // votes per link: [a_customer_of_b, b_customer_of_a] plus, per link,
    // whether every occurrence sits at the very top of its path — the
    // structural signature of a p2p link (it is only ever crossed at the
    // peak, between the path's two highest-ranked ASes).
    let mut votes: HashMap<(u32, u32), [u32; 2]> = HashMap::new();
    let mut always_top: HashMap<(u32, u32), bool> = HashMap::new();
    for p in paths {
        // collapse prepending
        let mut path: Vec<u32> = Vec::with_capacity(p.len());
        for &h in p {
            if path.last() != Some(&h) {
                path.push(h);
            }
        }
        if path.len() < 2 {
            continue;
        }
        // apex: highest observed rank; top2: second highest
        let apex = (0..path.len())
            .max_by_key(|&i| (deg(path[i]), std::cmp::Reverse(i)))
            .unwrap();
        let top2 = (0..path.len())
            .filter(|&i| i != apex)
            .max_by_key(|&i| (deg(path[i]), std::cmp::Reverse(i)));
        for i in 0..path.len() - 1 {
            let (x, y) = (path[i], path[i + 1]);
            let key = (x.min(y), x.max(y));
            let at_top = match top2 {
                Some(t) => (i == apex || i + 1 == apex) && (i == t || i + 1 == t),
                None => true,
            };
            let e = always_top.entry(key).or_insert(true);
            *e &= at_top;
            let v = votes.entry(key).or_insert([0, 0]);
            if i < apex {
                // the VP-side slope: x (closer to the VP) is the customer
                if key.0 == x {
                    v[0] += 1;
                } else {
                    v[1] += 1;
                }
            } else {
                // the origin-side slope: y (closer to the origin) is the customer
                if key.0 == y {
                    v[0] += 1;
                } else {
                    v[1] += 1;
                }
            }
        }
    }
    votes
        .into_iter()
        .map(|(k, v)| {
            let rel = if always_top.get(&k).copied().unwrap_or(false) {
                InferredRel::Peer
            } else if v[0] >= v[1] {
                InferredRel::ACustomerOfB
            } else {
                InferredRel::BCustomerOfA
            };
            (k, rel)
        })
        .collect()
}

/// Validation against the ground-truth topology: returns
/// `(inferred_count, correct_count)`. A c2p inference is correct only with
/// the right orientation.
pub fn validate(topo: &Topology, inferred: &HashMap<(u32, u32), InferredRel>) -> (usize, usize) {
    let mut correct = 0usize;
    for (&(a, b), &rel) in inferred {
        let truth = if topo.providers(a).contains(&b) {
            Some(InferredRel::ACustomerOfB)
        } else if topo.providers(b).contains(&a) {
            Some(InferredRel::BCustomerOfA)
        } else if topo.peers(a).contains(&b) {
            Some(InferredRel::Peer)
        } else {
            None
        };
        if truth == Some(rel) {
            correct += 1;
        }
    }
    (inferred.len(), correct)
}

/// Customer-cone-size replication (§12 / ASRank): computes per-AS CCS from
/// the observed paths and compares to ground truth. Returns
/// `(exactly_correct_fraction, mean_absolute_error)` over transit ASes.
pub fn ccs_accuracy(topo: &Topology, paths: Vec<Vec<u32>>) -> (f64, f64) {
    let truth = cone::customer_cone_sizes(topo);
    let observed = cone::observed_cone_sizes(topo, paths);
    let transit: Vec<usize> = (0..topo.num_ases())
        .filter(|&u| topo.is_transit(u as u32))
        .collect();
    if transit.is_empty() {
        return (1.0, 0.0);
    }
    let mut exact = 0usize;
    let mut abs_err = 0.0f64;
    for &u in &transit {
        if truth[u] == observed[u] {
            exact += 1;
        }
        abs_err += (truth[u] as f64 - observed[u] as f64).abs();
    }
    (
        exact as f64 / transit.len() as f64,
        abs_err / transit.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::routing::{compute_routes, SourceAnnouncement};
    use std::collections::HashSet;

    fn all_paths(topo: &Topology, vps: &[u32]) -> Vec<Vec<u32>> {
        let no_fail = HashSet::new();
        let mut out = Vec::new();
        for origin in 0..topo.num_ases() as u32 {
            let t = compute_routes(topo, &[SourceAnnouncement::origin(origin)], &no_fail);
            for &v in vps {
                if let Some(p) = t.path(v) {
                    if p.len() >= 2 {
                        out.push(p);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn inference_is_mostly_correct_on_full_data() {
        let topo = TopologyBuilder::artificial(200, 5).build();
        let vps: Vec<u32> = (0..topo.num_ases() as u32).collect();
        let paths = all_paths(&topo, &vps);
        let inferred = infer_relationships(&paths);
        let (n, correct) = validate(&topo, &inferred);
        assert!(n > 0);
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.75, "accuracy {acc} too low on full visibility");
    }

    #[test]
    fn more_paths_infer_more_relationships() {
        let topo = TopologyBuilder::artificial(250, 6).build();
        let few: Vec<u32> = vec![5, 100];
        let many: Vec<u32> = (0..50u32).map(|i| i * 5 % 250).collect();
        let (n_few, _) = validate(&topo, &infer_relationships(&all_paths(&topo, &few)));
        let (n_many, _) = validate(&topo, &infer_relationships(&all_paths(&topo, &many)));
        assert!(n_many > n_few, "{n_many} <= {n_few}");
    }

    #[test]
    fn ccs_exact_on_full_visibility_degrades_with_less() {
        let topo = TopologyBuilder::artificial(150, 7).build();
        let all: Vec<u32> = (0..topo.num_ases() as u32).collect();
        let (exact_full, err_full) = ccs_accuracy(&topo, all_paths(&topo, &all));
        let few: Vec<u32> = vec![3];
        let (exact_few, err_few) = ccs_accuracy(&topo, all_paths(&topo, &few));
        assert!(exact_full >= exact_few);
        assert!(err_full <= err_few + 1e-9);
        assert!(
            exact_full > 0.5,
            "full-visibility CCS exactness {exact_full}"
        );
    }

    #[test]
    fn empty_corpus_infers_nothing() {
        let inferred = infer_relationships(&[]);
        assert!(inferred.is_empty());
    }
}
