//! BMP v3 wire codec (RFC 7854).
//!
//! Frame layout: a 6-byte common header (version, total length, message
//! type) followed by a per-type body. Five of the six message types carry
//! the 42-byte per-peer header identifying which monitored BGP peer the
//! message is about; Initiation/Termination are session-scoped and carry
//! TLVs instead. Embedded BGP PDUs keep their full RFC 4271 framing
//! (marker + length + type) and are decoded by `bgp-wire`.
//!
//! [`BmpMessage::decode`] mirrors `BgpMessage::decode`: `Ok(None)` means
//! "incomplete, feed more bytes", success consumes exactly one frame, and
//! every malformation maps to a typed [`BmpError`] — the fuzz battery
//! asserts the decoder never panics on arbitrary input.

use bgp_wire::{BgpMessage, Notification, OpenMessage, UpdateMessage, WireError};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// The only BMP version this codec speaks.
pub const BMP_VERSION: u8 = 3;

/// Common header size: version (1) + length (4) + type (1).
pub const COMMON_HEADER_LEN: usize = 6;

/// Per-peer header size (RFC 7854 §4.2).
pub const PEER_HEADER_LEN: usize = 42;

/// Upper bound on one frame. RFC 7854 leaves length unbounded (a Route
/// Monitoring frame is ~one BGP message, Peer Up is two), so anything near
/// the u32 limit is a length-lie from a corrupt stream; reject it instead
/// of buffering gigabytes waiting for bytes that never come.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// BMP message type codes (RFC 7854 §4).
pub mod msg_type {
    /// Route Monitoring: one monitored peer's BGP UPDATE.
    pub const ROUTE_MONITORING: u8 = 0;
    /// Statistics Report.
    pub const STATS_REPORT: u8 = 1;
    /// Peer Down Notification.
    pub const PEER_DOWN: u8 = 2;
    /// Peer Up Notification.
    pub const PEER_UP: u8 = 3;
    /// Initiation: first message on a session.
    pub const INITIATION: u8 = 4;
    /// Termination: last message on a session.
    pub const TERMINATION: u8 = 5;
}

/// Information TLV types (RFC 7854 §4.4).
pub mod info_type {
    /// Free-form string.
    pub const STRING: u16 = 0;
    /// sysDescr.
    pub const SYS_DESCR: u16 = 1;
    /// sysName.
    pub const SYS_NAME: u16 = 2;
}

/// Errors raised while encoding or decoding BMP frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmpError {
    /// A structure ended before it was complete (within one frame — a
    /// short *buffer* is `Ok(None)`, a short *frame* is this).
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// Version byte is not 3.
    BadVersion(u8),
    /// Unknown message type code.
    UnknownMessageType(u8),
    /// Length field below the header size or above [`MAX_FRAME_LEN`].
    BadLength(u32),
    /// The frame body was longer than its type's structure.
    TrailingBytes {
        /// Which message type had the excess.
        what: &'static str,
        /// How many bytes were left over.
        extra: usize,
    },
    /// An embedded BGP PDU failed to decode.
    Bgp(WireError),
    /// An embedded BGP PDU decoded to the wrong message type (e.g. a
    /// KEEPALIVE where Route Monitoring requires an UPDATE).
    EmbeddedType {
        /// Where the PDU was embedded.
        what: &'static str,
        /// The BGP type code found.
        found: u8,
    },
    /// A TLV's declared length overruns the frame, or a stats counter has
    /// an unsupported width.
    BadTlv(&'static str),
    /// Unknown Peer Down reason code.
    BadPeerDownReason(u8),
}

impl fmt::Display for BmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmpError::Truncated { what, needed, have } => {
                write!(f, "truncated BMP {what}: need {needed} bytes, have {have}")
            }
            BmpError::BadVersion(v) => write!(f, "unsupported BMP version {v}"),
            BmpError::UnknownMessageType(t) => write!(f, "unknown BMP message type {t}"),
            BmpError::BadLength(l) => write!(f, "invalid BMP frame length {l}"),
            BmpError::TrailingBytes { what, extra } => {
                write!(f, "{extra} trailing bytes after BMP {what}")
            }
            BmpError::Bgp(e) => write!(f, "embedded BGP PDU: {e}"),
            BmpError::EmbeddedType { what, found } => {
                write!(f, "wrong embedded BGP message type {found} in {what}")
            }
            BmpError::BadTlv(what) => write!(f, "malformed BMP TLV: {what}"),
            BmpError::BadPeerDownReason(r) => write!(f, "unknown Peer Down reason {r}"),
        }
    }
}

impl std::error::Error for BmpError {}

impl From<WireError> for BmpError {
    fn from(e: WireError) -> Self {
        BmpError::Bgp(e)
    }
}

// ---------------------------------------------------------------------------
// Per-peer header
// ---------------------------------------------------------------------------

/// The 42-byte per-peer header (RFC 7854 §4.2) identifying which monitored
/// BGP peer a message concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerHeader {
    /// Peer type (0 = Global Instance, 1 = RD Instance, 2 = Local).
    pub peer_type: u8,
    /// Flags (V/L/A bits; V set means the address is IPv6).
    pub flags: u8,
    /// Peer Distinguisher (route distinguisher for type 1, else 0).
    pub distinguisher: u64,
    /// Peer address, 16 bytes; IPv4 is right-justified with a zero prefix.
    pub address: [u8; 16],
    /// Peer AS number.
    pub asn: u32,
    /// Peer BGP ID.
    pub bgp_id: u32,
    /// Timestamp seconds (when the encapsulated data was received; 0 if
    /// unavailable).
    pub ts_sec: u32,
    /// Timestamp microseconds.
    pub ts_usec: u32,
}

impl PeerHeader {
    /// A Global-Instance IPv4 peer, with the timestamp taken from a
    /// millisecond clock.
    pub fn v4(asn: u32, address: Ipv4Addr, distinguisher: u64, ts_ms: u64) -> PeerHeader {
        let mut addr = [0u8; 16];
        addr[12..].copy_from_slice(&address.octets());
        PeerHeader {
            peer_type: 0,
            flags: 0,
            distinguisher,
            address: addr,
            asn,
            bgp_id: u32::from(address),
            ts_sec: (ts_ms / 1000) as u32,
            ts_usec: ((ts_ms % 1000) * 1000) as u32,
        }
    }

    /// The peer address as IPv4, when the 12-byte prefix is zero.
    pub fn addr_v4(&self) -> Option<Ipv4Addr> {
        if self.address[..12].iter().all(|&b| b == 0) {
            let o = &self.address[12..];
            Some(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
        } else {
            None
        }
    }

    /// Renders the peer address for config lookups and logs: dotted quad
    /// for IPv4, colon-joined hex groups otherwise.
    pub fn addr_string(&self) -> String {
        match self.addr_v4() {
            Some(v4) => v4.to_string(),
            None => {
                let groups: Vec<String> = self
                    .address
                    .chunks(2)
                    .map(|c| format!("{:x}", u16::from_be_bytes([c[0], c[1]])))
                    .collect();
                groups.join(":")
            }
        }
    }

    /// The header timestamp in milliseconds (0 when the router reported
    /// none).
    pub fn ts_ms(&self) -> u64 {
        self.ts_sec as u64 * 1000 + self.ts_usec as u64 / 1000
    }

    fn encode(&self, out: &mut BytesMut) {
        out.put_u8(self.peer_type);
        out.put_u8(self.flags);
        out.put_slice(&self.distinguisher.to_be_bytes());
        out.put_slice(&self.address);
        out.put_u32(self.asn);
        out.put_u32(self.bgp_id);
        out.put_u32(self.ts_sec);
        out.put_u32(self.ts_usec);
    }

    fn decode(b: &mut BytesMut) -> Result<PeerHeader, BmpError> {
        if b.len() < PEER_HEADER_LEN {
            return Err(BmpError::Truncated {
                what: "per-peer header",
                needed: PEER_HEADER_LEN,
                have: b.len(),
            });
        }
        let peer_type = b.get_u8();
        let flags = b.get_u8();
        let mut dist = [0u8; 8];
        dist.copy_from_slice(&b.chunk()[..8]);
        b.advance(8);
        let mut address = [0u8; 16];
        address.copy_from_slice(&b.chunk()[..16]);
        b.advance(16);
        Ok(PeerHeader {
            peer_type,
            flags,
            distinguisher: u64::from_be_bytes(dist),
            address,
            asn: b.get_u32(),
            bgp_id: b.get_u32(),
            ts_sec: b.get_u32(),
            ts_usec: b.get_u32(),
        })
    }
}

// ---------------------------------------------------------------------------
// TLVs and stats counters
// ---------------------------------------------------------------------------

/// An Information TLV (Initiation, Termination, Peer Up).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InfoTlv {
    /// TLV type (see [`info_type`]).
    pub kind: u16,
    /// Raw value bytes (strings are UTF-8 by convention).
    pub value: Vec<u8>,
}

impl InfoTlv {
    /// A string-typed TLV.
    pub fn string(kind: u16, s: &str) -> InfoTlv {
        InfoTlv {
            kind,
            value: s.as_bytes().to_vec(),
        }
    }

    /// The value as UTF-8 text, when it is.
    pub fn as_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.value).ok()
    }
}

/// Finds the first TLV of `kind` and returns its value as text.
pub fn tlv_text(tlvs: &[InfoTlv], kind: u16) -> Option<&str> {
    tlvs.iter()
        .find(|t| t.kind == kind)
        .and_then(|t| t.as_str())
}

fn encode_tlvs(tlvs: &[InfoTlv], out: &mut BytesMut) {
    for t in tlvs {
        out.put_u16(t.kind);
        out.put_u16(t.value.len() as u16);
        out.put_slice(&t.value);
    }
}

fn decode_tlvs(b: &mut BytesMut) -> Result<Vec<InfoTlv>, BmpError> {
    let mut tlvs = Vec::new();
    while !b.is_empty() {
        if b.len() < 4 {
            return Err(BmpError::BadTlv("header shorter than 4 bytes"));
        }
        let kind = b.get_u16();
        let len = b.get_u16() as usize;
        if b.len() < len {
            return Err(BmpError::BadTlv("value overruns frame"));
        }
        let value = b.split_to(len).to_vec();
        tlvs.push(InfoTlv { kind, value });
    }
    Ok(tlvs)
}

/// One statistics counter from a Stats Report (RFC 7854 §4.8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatCounter {
    /// Stat type code (e.g. 0 = prefixes rejected by inbound policy).
    pub stat_type: u16,
    /// Counter or gauge value.
    pub value: u64,
    /// Whether the value is a 64-bit gauge (types 7/8) rather than a
    /// 32-bit counter.
    pub wide: bool,
}

impl StatCounter {
    /// A 32-bit counter.
    pub fn counter(stat_type: u16, value: u32) -> StatCounter {
        StatCounter {
            stat_type,
            value: value as u64,
            wide: false,
        }
    }

    /// A 64-bit gauge (stat types 7 and 8).
    pub fn gauge(stat_type: u16, value: u64) -> StatCounter {
        StatCounter {
            stat_type,
            value,
            wide: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Message bodies
// ---------------------------------------------------------------------------

/// Why a monitored peer went down (RFC 7854 §4.9 reason codes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PeerDownReason {
    /// 1: the local system closed, with the NOTIFICATION it sent.
    LocalNotification(Notification),
    /// 2: the local system closed without a NOTIFICATION; carries the FSM
    /// event code.
    LocalFsm(u16),
    /// 3: the remote system closed, with the NOTIFICATION it sent.
    RemoteNotification(Notification),
    /// 4: the remote system closed without a NOTIFICATION.
    RemoteNoData,
    /// 5: monitoring for this peer was de-configured on the router.
    PeerDeconfigured,
}

impl PeerDownReason {
    /// The wire reason code.
    pub fn code(&self) -> u8 {
        match self {
            PeerDownReason::LocalNotification(_) => 1,
            PeerDownReason::LocalFsm(_) => 2,
            PeerDownReason::RemoteNotification(_) => 3,
            PeerDownReason::RemoteNoData => 4,
            PeerDownReason::PeerDeconfigured => 5,
        }
    }
}

/// A Peer Up Notification (RFC 7854 §4.10): a monitored peer's session
/// reached Established, with both sides' OPENs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerUpMessage {
    /// Which peer came up.
    pub peer: PeerHeader,
    /// The router's local address for the session (same encoding as the
    /// peer address).
    pub local_address: [u8; 16],
    /// Local TCP port.
    pub local_port: u16,
    /// Remote TCP port.
    pub remote_port: u16,
    /// The OPEN the router sent.
    pub sent_open: OpenMessage,
    /// The OPEN the router received from the peer.
    pub recv_open: OpenMessage,
    /// Optional Information TLVs (e.g. a type-0 peer name).
    pub info: Vec<InfoTlv>,
}

/// A decoded BMP message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmpMessage {
    /// One monitored peer's BGP UPDATE, verbatim.
    RouteMonitoring {
        /// Which peer the UPDATE came from.
        peer: PeerHeader,
        /// The embedded UPDATE.
        update: UpdateMessage,
    },
    /// Periodic per-peer statistics.
    StatsReport {
        /// Which peer the stats concern.
        peer: PeerHeader,
        /// The counters.
        stats: Vec<StatCounter>,
    },
    /// A monitored peer's session went down.
    PeerDown {
        /// Which peer went down.
        peer: PeerHeader,
        /// Why.
        reason: PeerDownReason,
    },
    /// A monitored peer's session reached Established.
    PeerUp(PeerUpMessage),
    /// First message on a BMP session.
    Initiation {
        /// sysDescr/sysName/string TLVs.
        info: Vec<InfoTlv>,
    },
    /// Last message on a BMP session.
    Termination {
        /// Reason/string TLVs.
        info: Vec<InfoTlv>,
    },
}

fn decode_embedded(
    b: &mut BytesMut,
    what: &'static str,
    ctx: &bgp_wire::DecodeCtx,
) -> Result<BgpMessage, BmpError> {
    match BgpMessage::decode_ctx(b, ctx) {
        Ok(Some(m)) => Ok(m),
        Ok(None) => Err(BmpError::Truncated {
            what,
            needed: bgp_wire::MIN_MESSAGE_LEN,
            have: b.len(),
        }),
        Err(e) => Err(BmpError::Bgp(e)),
    }
}

fn encode_pdu(m: &BgpMessage, out: &mut BytesMut) -> Result<(), BmpError> {
    m.encode(out).map_err(BmpError::Bgp)
}

impl BmpMessage {
    /// The message's wire type code.
    pub fn type_code(&self) -> u8 {
        match self {
            BmpMessage::RouteMonitoring { .. } => msg_type::ROUTE_MONITORING,
            BmpMessage::StatsReport { .. } => msg_type::STATS_REPORT,
            BmpMessage::PeerDown { .. } => msg_type::PEER_DOWN,
            BmpMessage::PeerUp(_) => msg_type::PEER_UP,
            BmpMessage::Initiation { .. } => msg_type::INITIATION,
            BmpMessage::Termination { .. } => msg_type::TERMINATION,
        }
    }

    /// Encodes the full frame (common header + body) into `out`.
    pub fn encode(&self, out: &mut BytesMut) -> Result<(), BmpError> {
        let mut body = BytesMut::new();
        match self {
            BmpMessage::RouteMonitoring { peer, update } => {
                peer.encode(&mut body);
                encode_pdu(&BgpMessage::Update(update.clone()), &mut body)?;
            }
            BmpMessage::StatsReport { peer, stats } => {
                peer.encode(&mut body);
                body.put_u32(stats.len() as u32);
                for s in stats {
                    body.put_u16(s.stat_type);
                    if s.wide {
                        body.put_u16(8);
                        body.put_slice(&s.value.to_be_bytes());
                    } else {
                        body.put_u16(4);
                        body.put_u32(s.value as u32);
                    }
                }
            }
            BmpMessage::PeerDown { peer, reason } => {
                peer.encode(&mut body);
                body.put_u8(reason.code());
                match reason {
                    PeerDownReason::LocalNotification(n)
                    | PeerDownReason::RemoteNotification(n) => {
                        encode_pdu(&BgpMessage::Notification(n.clone()), &mut body)?;
                    }
                    PeerDownReason::LocalFsm(code) => body.put_u16(*code),
                    PeerDownReason::RemoteNoData | PeerDownReason::PeerDeconfigured => {}
                }
            }
            BmpMessage::PeerUp(up) => {
                up.peer.encode(&mut body);
                body.put_slice(&up.local_address);
                body.put_u16(up.local_port);
                body.put_u16(up.remote_port);
                encode_pdu(&BgpMessage::Open(up.sent_open.clone()), &mut body)?;
                encode_pdu(&BgpMessage::Open(up.recv_open.clone()), &mut body)?;
                encode_tlvs(&up.info, &mut body);
            }
            BmpMessage::Initiation { info } | BmpMessage::Termination { info } => {
                encode_tlvs(info, &mut body);
            }
        }
        let len = COMMON_HEADER_LEN + body.len();
        if len > MAX_FRAME_LEN {
            return Err(BmpError::BadLength(len as u32));
        }
        out.reserve(len);
        out.put_u8(BMP_VERSION);
        out.put_u32(len as u32);
        out.put_u8(self.type_code());
        out.extend_from_slice(&body);
        Ok(())
    }

    /// Encodes into a fresh buffer.
    pub fn encode_to_vec(&self) -> Result<Vec<u8>, BmpError> {
        let mut b = BytesMut::new();
        self.encode(&mut b)?;
        Ok(b.to_vec())
    }

    /// Attempts to decode one frame from the front of `buf`.
    ///
    /// `Ok(None)` means the buffer does not yet hold a complete frame
    /// (stream decoding); success consumes exactly the frame's bytes.
    ///
    /// Route Monitoring PDUs decode with the classic (no ADD-PATH)
    /// context; peers that negotiated ADD-PATH need
    /// [`BmpMessage::decode_with`].
    pub fn decode(buf: &mut BytesMut) -> Result<Option<BmpMessage>, BmpError> {
        Self::decode_with(buf, |_| bgp_wire::DecodeCtx::default())
    }

    /// [`BmpMessage::decode`] with a per-peer decode context: `ctx_for`
    /// maps the frame's per-peer header to the UPDATE decode context that
    /// peer's OPEN exchange negotiated (RFC 7911 path ids are per-session
    /// state, and a BMP session multiplexes many monitored sessions).
    pub fn decode_with(
        buf: &mut BytesMut,
        ctx_for: impl Fn(&PeerHeader) -> bgp_wire::DecodeCtx,
    ) -> Result<Option<BmpMessage>, BmpError> {
        if buf.is_empty() {
            return Ok(None);
        }
        // version first: a wrong byte here means the stream is not BMP at
        // all, so fail fast instead of trusting a garbage length field
        if buf[0] != BMP_VERSION {
            return Err(BmpError::BadVersion(buf[0]));
        }
        if buf.len() < COMMON_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        if !(COMMON_HEADER_LEN..=MAX_FRAME_LEN).contains(&len) {
            return Err(BmpError::BadLength(len as u32));
        }
        if buf.len() < len {
            return Ok(None);
        }
        let ty = buf[5];
        let mut body = buf.split_to(len);
        body.advance(COMMON_HEADER_LEN);
        let decoded = match ty {
            msg_type::ROUTE_MONITORING => {
                let peer = PeerHeader::decode(&mut body)?;
                let ctx = ctx_for(&peer);
                let update = match decode_embedded(&mut body, "Route Monitoring PDU", &ctx)? {
                    BgpMessage::Update(u) => u,
                    other => {
                        return Err(BmpError::EmbeddedType {
                            what: "Route Monitoring",
                            found: other.type_code(),
                        })
                    }
                };
                BmpMessage::RouteMonitoring { peer, update }
            }
            msg_type::STATS_REPORT => {
                let peer = PeerHeader::decode(&mut body)?;
                if body.len() < 4 {
                    return Err(BmpError::Truncated {
                        what: "stats count",
                        needed: 4,
                        have: body.len(),
                    });
                }
                let count = body.get_u32() as usize;
                let mut stats = Vec::new();
                for _ in 0..count {
                    if body.len() < 4 {
                        return Err(BmpError::BadTlv("stat header shorter than 4 bytes"));
                    }
                    let stat_type = body.get_u16();
                    let slen = body.get_u16() as usize;
                    if body.len() < slen {
                        return Err(BmpError::BadTlv("stat value overruns frame"));
                    }
                    let stat = match slen {
                        4 => StatCounter::counter(stat_type, body.get_u32()),
                        8 => {
                            let mut v = [0u8; 8];
                            v.copy_from_slice(&body.chunk()[..8]);
                            body.advance(8);
                            StatCounter::gauge(stat_type, u64::from_be_bytes(v))
                        }
                        _ => return Err(BmpError::BadTlv("stat value is neither 4 nor 8 bytes")),
                    };
                    stats.push(stat);
                }
                BmpMessage::StatsReport { peer, stats }
            }
            msg_type::PEER_DOWN => {
                let peer = PeerHeader::decode(&mut body)?;
                if body.is_empty() {
                    return Err(BmpError::Truncated {
                        what: "Peer Down reason",
                        needed: 1,
                        have: 0,
                    });
                }
                let code = body.get_u8();
                let reason = match code {
                    1 | 3 => {
                        let n = match decode_embedded(
                            &mut body,
                            "Peer Down NOTIFICATION",
                            &bgp_wire::DecodeCtx::default(),
                        )? {
                            BgpMessage::Notification(n) => n,
                            other => {
                                return Err(BmpError::EmbeddedType {
                                    what: "Peer Down",
                                    found: other.type_code(),
                                })
                            }
                        };
                        if code == 1 {
                            PeerDownReason::LocalNotification(n)
                        } else {
                            PeerDownReason::RemoteNotification(n)
                        }
                    }
                    2 => {
                        if body.len() < 2 {
                            return Err(BmpError::Truncated {
                                what: "Peer Down FSM code",
                                needed: 2,
                                have: body.len(),
                            });
                        }
                        PeerDownReason::LocalFsm(body.get_u16())
                    }
                    4 => PeerDownReason::RemoteNoData,
                    5 => PeerDownReason::PeerDeconfigured,
                    other => return Err(BmpError::BadPeerDownReason(other)),
                };
                BmpMessage::PeerDown { peer, reason }
            }
            msg_type::PEER_UP => {
                let peer = PeerHeader::decode(&mut body)?;
                if body.len() < 20 {
                    return Err(BmpError::Truncated {
                        what: "Peer Up local address/ports",
                        needed: 20,
                        have: body.len(),
                    });
                }
                let mut local_address = [0u8; 16];
                local_address.copy_from_slice(&body.chunk()[..16]);
                body.advance(16);
                let local_port = body.get_u16();
                let remote_port = body.get_u16();
                let sent_open = match decode_embedded(
                    &mut body,
                    "Peer Up sent OPEN",
                    &bgp_wire::DecodeCtx::default(),
                )? {
                    BgpMessage::Open(o) => o,
                    other => {
                        return Err(BmpError::EmbeddedType {
                            what: "Peer Up sent OPEN",
                            found: other.type_code(),
                        })
                    }
                };
                let recv_open = match decode_embedded(
                    &mut body,
                    "Peer Up received OPEN",
                    &bgp_wire::DecodeCtx::default(),
                )? {
                    BgpMessage::Open(o) => o,
                    other => {
                        return Err(BmpError::EmbeddedType {
                            what: "Peer Up received OPEN",
                            found: other.type_code(),
                        })
                    }
                };
                let info = decode_tlvs(&mut body)?;
                body = BytesMut::new(); // decode_tlvs consumed to the end
                BmpMessage::PeerUp(PeerUpMessage {
                    peer,
                    local_address,
                    local_port,
                    remote_port,
                    sent_open,
                    recv_open,
                    info,
                })
            }
            msg_type::INITIATION => {
                let info = decode_tlvs(&mut body)?;
                body = BytesMut::new();
                BmpMessage::Initiation { info }
            }
            msg_type::TERMINATION => {
                let info = decode_tlvs(&mut body)?;
                body = BytesMut::new();
                BmpMessage::Termination { info }
            }
            other => return Err(BmpError::UnknownMessageType(other)),
        };
        if !body.is_empty() {
            return Err(BmpError::TrailingBytes {
                what: match ty {
                    msg_type::ROUTE_MONITORING => "Route Monitoring",
                    msg_type::STATS_REPORT => "Stats Report",
                    msg_type::PEER_DOWN => "Peer Down",
                    _ => "Peer Up",
                },
                extra: body.len(),
            });
        }
        Ok(Some(decoded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Asn, Prefix};

    fn peer() -> PeerHeader {
        PeerHeader::v4(65010, Ipv4Addr::new(10, 0, 0, 1), 0, 1_723_000_123_456)
    }

    fn sample_update() -> UpdateMessage {
        UpdateMessage::announce(
            Prefix::synthetic(42),
            AsPath::from_iter([Asn(65010), Asn(2), Asn(3)]),
            Ipv4Addr::new(10, 0, 0, 1),
            vec![],
        )
    }

    fn roundtrip(m: BmpMessage) -> BmpMessage {
        let bytes = m.encode_to_vec().unwrap();
        let mut buf = BytesMut::from(&bytes[..]);
        let back = BmpMessage::decode(&mut buf).unwrap().unwrap();
        assert!(buf.is_empty(), "frame fully consumed");
        back
    }

    #[test]
    fn route_monitoring_roundtrip() {
        let m = BmpMessage::RouteMonitoring {
            peer: peer(),
            update: sample_update(),
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn peer_up_roundtrip() {
        let mut local = [0u8; 16];
        local[12..].copy_from_slice(&[10, 0, 0, 254]);
        let m = BmpMessage::PeerUp(PeerUpMessage {
            peer: peer(),
            local_address: local,
            local_port: 179,
            remote_port: 40001,
            sent_open: OpenMessage::new(Asn(65535), 90, Ipv4Addr::new(10, 0, 0, 254)),
            recv_open: OpenMessage::new(Asn(65010), 180, Ipv4Addr::new(10, 0, 0, 1)),
            info: vec![InfoTlv::string(info_type::STRING, "edge peer")],
        });
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn peer_down_all_reasons_roundtrip() {
        for reason in [
            PeerDownReason::LocalNotification(Notification::cease()),
            PeerDownReason::LocalFsm(18),
            PeerDownReason::RemoteNotification(Notification::cease()),
            PeerDownReason::RemoteNoData,
            PeerDownReason::PeerDeconfigured,
        ] {
            let m = BmpMessage::PeerDown {
                peer: peer(),
                reason,
            };
            assert_eq!(roundtrip(m.clone()), m);
        }
    }

    #[test]
    fn stats_report_roundtrip_mixed_widths() {
        let m = BmpMessage::StatsReport {
            peer: peer(),
            stats: vec![
                StatCounter::counter(0, 12),
                StatCounter::gauge(7, 0x1_0000_0001),
                StatCounter::counter(11, 3),
            ],
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn initiation_and_termination_roundtrip() {
        let m = BmpMessage::Initiation {
            info: vec![
                InfoTlv::string(info_type::SYS_NAME, "r7.example"),
                InfoTlv::string(info_type::SYS_DESCR, "gill test router"),
            ],
        };
        let back = roundtrip(m.clone());
        assert_eq!(back, m);
        if let BmpMessage::Initiation { info } = &back {
            assert_eq!(tlv_text(info, info_type::SYS_NAME), Some("r7.example"));
        }
        let t = BmpMessage::Termination {
            info: vec![InfoTlv::string(info_type::STRING, "maintenance")],
        };
        assert_eq!(roundtrip(t.clone()), t);
    }

    #[test]
    fn streaming_decode_is_incremental() {
        let m = BmpMessage::RouteMonitoring {
            peer: peer(),
            update: sample_update(),
        };
        let bytes = m.encode_to_vec().unwrap();
        let mut buf = BytesMut::new();
        for (i, &b) in bytes.iter().enumerate() {
            buf.extend_from_slice(&[b]);
            let r = BmpMessage::decode(&mut buf).unwrap();
            if i + 1 < bytes.len() {
                assert!(r.is_none(), "byte {i}: incomplete frame must wait");
            } else {
                assert_eq!(r.unwrap(), m);
            }
        }
    }

    #[test]
    fn two_frames_coalesced_decode_in_order() {
        let a = BmpMessage::Initiation { info: vec![] };
        let b = BmpMessage::Termination { info: vec![] };
        let mut bytes = a.encode_to_vec().unwrap();
        bytes.extend(b.encode_to_vec().unwrap());
        let mut buf = BytesMut::from(&bytes[..]);
        assert_eq!(BmpMessage::decode(&mut buf).unwrap().unwrap(), a);
        assert_eq!(BmpMessage::decode(&mut buf).unwrap().unwrap(), b);
        assert!(BmpMessage::decode(&mut buf).unwrap().is_none());
    }

    #[test]
    fn bad_version_fails_fast() {
        let mut bytes = BmpMessage::Initiation { info: vec![] }
            .encode_to_vec()
            .unwrap();
        bytes[0] = 2;
        let mut buf = BytesMut::from(&bytes[..]);
        assert_eq!(BmpMessage::decode(&mut buf), Err(BmpError::BadVersion(2)));
    }

    #[test]
    fn absurd_length_is_rejected() {
        let mut buf = BytesMut::from(&[3u8, 0xff, 0xff, 0xff, 0xff, 0][..]);
        assert!(matches!(
            BmpMessage::decode(&mut buf),
            Err(BmpError::BadLength(_))
        ));
        let mut short = BytesMut::from(&[3u8, 0, 0, 0, 5, 0][..]);
        assert_eq!(BmpMessage::decode(&mut short), Err(BmpError::BadLength(5)));
    }

    #[test]
    fn unknown_type_is_rejected() {
        let mut bytes = BmpMessage::Initiation { info: vec![] }
            .encode_to_vec()
            .unwrap();
        bytes[5] = 9;
        let mut buf = BytesMut::from(&bytes[..]);
        assert_eq!(
            BmpMessage::decode(&mut buf),
            Err(BmpError::UnknownMessageType(9))
        );
    }

    #[test]
    fn wrong_embedded_pdu_type_is_rejected() {
        // a Route Monitoring frame whose embedded PDU is a KEEPALIVE
        let mut body = BytesMut::new();
        peer().encode(&mut body);
        BgpMessage::Keepalive.encode(&mut body).unwrap();
        let mut frame = BytesMut::new();
        frame.put_u8(BMP_VERSION);
        frame.put_u32((COMMON_HEADER_LEN + body.len()) as u32);
        frame.put_u8(msg_type::ROUTE_MONITORING);
        frame.extend_from_slice(&body);
        assert_eq!(
            BmpMessage::decode(&mut frame),
            Err(BmpError::EmbeddedType {
                what: "Route Monitoring",
                found: 4
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let m = BmpMessage::PeerDown {
            peer: peer(),
            reason: PeerDownReason::RemoteNoData,
        };
        let mut bytes = m.encode_to_vec().unwrap();
        bytes.push(0xaa);
        // fix up the length to include the junk byte
        let len = bytes.len() as u32;
        bytes[1..5].copy_from_slice(&len.to_be_bytes());
        let mut buf = BytesMut::from(&bytes[..]);
        assert!(matches!(
            BmpMessage::decode(&mut buf),
            Err(BmpError::TrailingBytes { extra: 1, .. })
        ));
    }

    #[test]
    fn peer_header_timestamp_and_address_helpers() {
        let p = peer();
        assert_eq!(p.ts_ms(), 1_723_000_123_456);
        assert_eq!(p.addr_v4(), Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(p.addr_string(), "10.0.0.1");
        let mut v6 = p;
        v6.address[0] = 0x20;
        assert_eq!(v6.addr_v4(), None);
        assert!(v6.addr_string().contains(':'));
    }

    #[test]
    fn bad_stat_width_is_typed() {
        let mut body = BytesMut::new();
        peer().encode(&mut body);
        body.put_u32(1);
        body.put_u16(0);
        body.put_u16(3); // neither 4 nor 8
        body.put_slice(&[0, 0, 0]);
        let mut frame = BytesMut::new();
        frame.put_u8(BMP_VERSION);
        frame.put_u32((COMMON_HEADER_LEN + body.len()) as u32);
        frame.put_u8(msg_type::STATS_REPORT);
        frame.extend_from_slice(&body);
        assert!(matches!(
            BmpMessage::decode(&mut frame),
            Err(BmpError::BadTlv(_))
        ));
    }
}
