//! The sans-I/O BMP session state machine.
//!
//! Like the BGP `SessionFsm`, this is a pure state machine: callers feed
//! it bytes ([`BmpFsm::handle_bytes`]), EOF ([`BmpFsm::handle_eof`]) and
//! timer ticks ([`BmpFsm::tick`]), and drain typed events
//! ([`BmpFsm::poll_event`]). It performs no I/O and reads no clocks, so
//! the same machine runs over TCP, over `SimTransport` fault schedules,
//! and inside the deterministic soak harness with bit-identical behavior.
//! BMP is one-way — the monitoring station never sends — so unlike the
//! BGP FSM there is no output buffer.
//!
//! ```text
//!                 Initiation             Termination / EOF / error
//! AwaitInitiation ----------->  Active  --------------------------> Closed
//!        |                     |      ^
//!        | any other msg       | PeerUp: demux[key] = VpId
//!        v                     | PeerDown: demux.remove(key)
//!      Closed                  | RouteMonitoring: demux lookup -> Update event
//! ```
//!
//! **Demux.** One BMP session multiplexes many monitored BGP peers. Each
//! is keyed by [`PeerKey`] — (peer address, route distinguisher, peer
//! ASN) from the per-peer header — and mapped to a [`VpId`] when its Peer
//! Up arrives. Router discriminators are allocated per ASN in Peer Up
//! arrival order (the first peer of AS x is `vp(ASx)`, the second
//! `vp(ASx#1)`, …) unless a config override pins one. Route Monitoring
//! for a peer with no live Peer Up is dropped and counted, never guessed.
//!
//! **Peer Down teardown.** Peer Down removes the demux entry: later
//! updates attributed to that key are unknown-peer drops until a fresh
//! Peer Up re-registers it (possibly with a new discriminator — a new
//! session of the same peer is a new VP epoch, not a silent resume).

use crate::codec::{info_type, tlv_text, BmpError, BmpMessage, StatCounter};
use crate::config::PeerPolicy;
use bgp_types::{Asn, FamilySet, VpId};
use bgp_wire::{OpenMessage, UpdateMessage};
use bytes::BytesMut;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Session states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BmpState {
    /// Waiting for the mandatory Initiation message.
    AwaitInitiation,
    /// Initiation seen; monitoring messages flow.
    Active,
    /// Session over (terminated, closed, or errored).
    Closed,
}

/// Why a BMP session ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmpCloseReason {
    /// The router sent a Termination message (clean shutdown).
    Terminated,
    /// EOF at a frame boundary.
    PeerClosed,
    /// EOF mid-frame.
    PeerClosedMidMessage,
    /// No bytes arrived within the configured idle timeout (half-open
    /// peer; BMP has no keepalive, so silence is the only signal).
    IdleTimeout,
    /// A frame failed to decode.
    DecodeError(BmpError),
    /// The peer broke protocol (e.g. monitoring before Initiation).
    ProtocolError(&'static str),
}

impl fmt::Display for BmpCloseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmpCloseReason::Terminated => write!(f, "terminated by router"),
            BmpCloseReason::PeerClosed => write!(f, "peer closed"),
            BmpCloseReason::PeerClosedMidMessage => write!(f, "peer closed mid-message"),
            BmpCloseReason::IdleTimeout => write!(f, "idle timeout"),
            BmpCloseReason::DecodeError(e) => write!(f, "decode error: {e}"),
            BmpCloseReason::ProtocolError(w) => write!(f, "protocol error: {w}"),
        }
    }
}

/// Identity of one monitored peer within a BMP session: the demux key.
///
/// RFC 7854 distinguishes peers by address *and* peer distinguisher (the
/// route distinguisher for RD-instance peers); the ASN is included so a
/// renumbered peer at the same address is a distinct identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerKey {
    /// Peer address from the per-peer header.
    pub address: [u8; 16],
    /// Peer distinguisher (0 outside RD instances).
    pub distinguisher: u64,
    /// Peer AS number.
    pub asn: u32,
}

impl PeerKey {
    /// The key of a per-peer header.
    pub fn of(peer: &crate::codec::PeerHeader) -> PeerKey {
        PeerKey {
            address: peer.address,
            distinguisher: peer.distinguisher,
            asn: peer.asn,
        }
    }
}

impl fmt::Debug for PeerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = crate::codec::PeerHeader {
            peer_type: 0,
            flags: 0,
            distinguisher: self.distinguisher,
            address: self.address,
            asn: self.asn,
            bgp_id: 0,
            ts_sec: 0,
            ts_usec: 0,
        };
        write!(f, "peer(AS{} {}", self.asn, p.addr_string())?;
        if self.distinguisher != 0 {
            write!(f, " rd={}", self.distinguisher)?;
        }
        write!(f, ")")
    }
}

/// Events a BMP session produces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BmpEvent {
    /// Initiation arrived; the session is active.
    SessionStarted {
        /// The router's sysName TLV, if sent.
        sys_name: Option<String>,
        /// The router's sysDescr TLV, if sent.
        sys_descr: Option<String>,
    },
    /// A monitored peer came up and was registered in the demux table.
    PeerUp {
        /// The vantage point assigned to the peer.
        vp: VpId,
        /// The peer's demux key.
        key: PeerKey,
        /// Operator-assigned name (config override, else the Peer Up's
        /// type-0 info TLV).
        name: Option<String>,
        /// Multiprotocol families both OPENs in the Peer Up advertised
        /// (empty for a legacy v4-only monitored session).
        families: bgp_types::FamilySet,
        /// Families with ADD-PATH negotiated on the monitored session;
        /// this peer's Route Monitoring NLRI carries path identifiers.
        add_paths: bgp_types::FamilySet,
    },
    /// A monitored peer went down and was removed from the demux table.
    PeerDown {
        /// The vantage point that disappeared.
        vp: VpId,
        /// The peer's demux key.
        key: PeerKey,
        /// RFC 7854 reason code (1–5).
        reason: u8,
    },
    /// A monitored peer's UPDATE, attributed to its vantage point.
    Update {
        /// The originating vantage point.
        vp: VpId,
        /// The decoded UPDATE.
        update: UpdateMessage,
        /// Reception time in ms: the per-peer header timestamp when the
        /// router supplied one, else the local receive time.
        ts_ms: u64,
    },
    /// A Stats Report for a registered peer.
    Stats {
        /// The peer the counters concern.
        vp: VpId,
        /// The counters.
        stats: Vec<StatCounter>,
    },
    /// The session ended.
    Closed(BmpCloseReason),
}

/// Per-session message counters, mirrored into the shared
/// [`crate::listener::BmpStats`] ledger by the drive loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BmpLedger {
    /// Frames decoded (all types).
    pub messages: u64,
    /// Route Monitoring frames decoded.
    pub route_monitoring: u64,
    /// Peer Up frames accepted into the demux table.
    pub peer_ups: u64,
    /// Peer Down frames that tore down a registered peer.
    pub peer_downs: u64,
    /// Stats Report frames for registered peers.
    pub stats_reports: u64,
    /// Route Monitoring / Stats / Peer Down frames for peers with no live
    /// Peer Up (dropped, never guessed).
    pub unknown_peer: u64,
    /// Peer Up frames for an already-registered key (kept the existing
    /// mapping).
    pub duplicate_peer_ups: u64,
    /// Peer Up frames rejected by the ASN allowlist.
    pub denied_peers: u64,
}

/// Per-session configuration.
#[derive(Clone, Debug, Default)]
pub struct BmpSessionConfig {
    /// Close the session when no bytes arrive for this many ms (0
    /// disables — BMP has no keepalive of its own).
    pub idle_timeout_ms: u64,
    /// Peer allowlist and per-address overrides.
    pub policy: PeerPolicy,
}

/// The sans-I/O BMP session machine. See the module docs for the state
/// graph and demux semantics.
pub struct BmpFsm {
    cfg: BmpSessionConfig,
    state: BmpState,
    buf: BytesMut,
    events: VecDeque<BmpEvent>,
    demux: HashMap<PeerKey, VpId>,
    /// Per-peer UPDATE decode context, negotiated by the OPEN pair the
    /// Peer Up carried (RFC 7911 path ids are per-monitored-session
    /// state). Peers absent here decode classic.
    ctxs: HashMap<PeerKey, bgp_wire::DecodeCtx>,
    /// Next router discriminator per ASN, advanced on every allocation so
    /// a re-registered peer gets a fresh VP identity.
    next_router: HashMap<u32, u16>,
    ledger: BmpLedger,
    last_rx_ms: u64,
}

impl BmpFsm {
    /// A fresh session in `AwaitInitiation`, with the idle timer anchored
    /// at `now_ms`.
    pub fn new(cfg: BmpSessionConfig, now_ms: u64) -> BmpFsm {
        BmpFsm {
            cfg,
            state: BmpState::AwaitInitiation,
            buf: BytesMut::new(),
            events: VecDeque::new(),
            demux: HashMap::new(),
            ctxs: HashMap::new(),
            next_router: HashMap::new(),
            ledger: BmpLedger::default(),
            last_rx_ms: now_ms,
        }
    }

    /// Current state.
    pub fn state(&self) -> BmpState {
        self.state
    }

    /// Whether the session is over.
    pub fn is_closed(&self) -> bool {
        self.state == BmpState::Closed
    }

    /// The session's message counters.
    pub fn ledger(&self) -> BmpLedger {
        self.ledger
    }

    /// Number of currently registered monitored peers.
    pub fn peer_count(&self) -> usize {
        self.demux.len()
    }

    /// The vantage point registered for `key`, if any.
    pub fn vp_for(&self, key: &PeerKey) -> Option<VpId> {
        self.demux.get(key).copied()
    }

    /// Registered (key, vp) pairs, sorted by key for deterministic output.
    pub fn peers(&self) -> Vec<(PeerKey, VpId)> {
        let mut v: Vec<_> = self.demux.iter().map(|(k, vp)| (*k, *vp)).collect();
        v.sort();
        v
    }

    /// Next event, if any.
    pub fn poll_event(&mut self) -> Option<BmpEvent> {
        self.events.pop_front()
    }

    /// When the idle timer fires next, if one is armed.
    pub fn next_deadline_ms(&self) -> Option<u64> {
        (self.cfg.idle_timeout_ms > 0 && !self.is_closed())
            .then(|| self.last_rx_ms + self.cfg.idle_timeout_ms)
    }

    /// Feeds received bytes and decodes as many complete frames as they
    /// finish.
    pub fn handle_bytes(&mut self, data: &[u8], now_ms: u64) {
        if self.is_closed() {
            return;
        }
        self.last_rx_ms = now_ms;
        self.buf.extend_from_slice(data);
        loop {
            let ctxs = &self.ctxs;
            let decoded = BmpMessage::decode_with(&mut self.buf, |hdr| {
                ctxs.get(&PeerKey::of(hdr)).copied().unwrap_or_default()
            });
            match decoded {
                Ok(Some(msg)) => {
                    self.handle_message(msg, now_ms);
                    if self.is_closed() {
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    self.close(BmpCloseReason::DecodeError(e));
                    return;
                }
            }
        }
    }

    /// Signals EOF from the transport.
    pub fn handle_eof(&mut self, _now_ms: u64) {
        if self.is_closed() {
            return;
        }
        let reason = if self.buf.is_empty() {
            BmpCloseReason::PeerClosed
        } else {
            BmpCloseReason::PeerClosedMidMessage
        };
        self.close(reason);
    }

    /// Advances the idle timer.
    pub fn tick(&mut self, now_ms: u64) {
        if self.is_closed() || self.cfg.idle_timeout_ms == 0 {
            return;
        }
        if now_ms.saturating_sub(self.last_rx_ms) >= self.cfg.idle_timeout_ms {
            self.close(BmpCloseReason::IdleTimeout);
        }
    }

    fn close(&mut self, reason: BmpCloseReason) {
        self.state = BmpState::Closed;
        self.events.push_back(BmpEvent::Closed(reason));
    }

    fn handle_message(&mut self, msg: BmpMessage, now_ms: u64) {
        self.ledger.messages += 1;
        // Initiation-first: RFC 7854 §3.3 makes Initiation the mandatory
        // opener; a router that monitors before introducing itself is
        // broken (or not a router), so the session dies loudly.
        if self.state == BmpState::AwaitInitiation {
            match &msg {
                BmpMessage::Initiation { .. } => {}
                BmpMessage::Termination { .. } => {
                    self.close(BmpCloseReason::Terminated);
                    return;
                }
                _ => {
                    self.close(BmpCloseReason::ProtocolError(
                        "monitoring message before Initiation",
                    ));
                    return;
                }
            }
        }
        match msg {
            BmpMessage::Initiation { info } => {
                self.state = BmpState::Active;
                self.events.push_back(BmpEvent::SessionStarted {
                    sys_name: tlv_text(&info, info_type::SYS_NAME).map(str::to_owned),
                    sys_descr: tlv_text(&info, info_type::SYS_DESCR).map(str::to_owned),
                });
            }
            BmpMessage::Termination { .. } => {
                self.close(BmpCloseReason::Terminated);
            }
            BmpMessage::PeerUp(up) => {
                let key = PeerKey::of(&up.peer);
                if self.demux.contains_key(&key) {
                    self.ledger.duplicate_peer_ups += 1;
                    return;
                }
                let over = self
                    .cfg
                    .policy
                    .override_for(&up.peer.addr_string())
                    .cloned();
                let asn = over.as_ref().and_then(|o| o.asn).unwrap_or(up.peer.asn);
                if !self.cfg.policy.allows(asn) {
                    self.ledger.denied_peers += 1;
                    return;
                }
                let router = match over.as_ref().and_then(|o| o.router) {
                    Some(r) => r,
                    None => {
                        let next = self.next_router.entry(asn).or_insert(0);
                        let r = *next;
                        *next += 1;
                        r
                    }
                };
                let vp = VpId::new(Asn(asn), router);
                self.demux.insert(key, vp);
                // the monitored session's capabilities are whatever both
                // OPENs agreed on — that fixes how this peer's Route
                // Monitoring NLRI decodes from now on
                let families = sets_of(&up.sent_open).intersect(sets_of(&up.recv_open));
                let add_paths = addpaths_of(&up.sent_open)
                    .intersect(addpaths_of(&up.recv_open))
                    .intersect(families);
                if !add_paths.is_empty() {
                    self.ctxs
                        .insert(key, bgp_wire::DecodeCtx::from_families(add_paths.iter()));
                }
                self.ledger.peer_ups += 1;
                let name = over
                    .and_then(|o| o.name)
                    .or_else(|| tlv_text(&up.info, info_type::STRING).map(str::to_owned));
                self.events.push_back(BmpEvent::PeerUp {
                    vp,
                    key,
                    name,
                    families,
                    add_paths,
                });
            }
            BmpMessage::PeerDown { peer, reason } => {
                let key = PeerKey::of(&peer);
                self.ctxs.remove(&key);
                match self.demux.remove(&key) {
                    Some(vp) => {
                        self.ledger.peer_downs += 1;
                        self.events.push_back(BmpEvent::PeerDown {
                            vp,
                            key,
                            reason: reason.code(),
                        });
                    }
                    None => self.ledger.unknown_peer += 1,
                }
            }
            BmpMessage::RouteMonitoring { peer, update } => {
                let key = PeerKey::of(&peer);
                match self.demux.get(&key) {
                    Some(&vp) => {
                        self.ledger.route_monitoring += 1;
                        let hdr_ts = peer.ts_ms();
                        self.events.push_back(BmpEvent::Update {
                            vp,
                            update,
                            ts_ms: if hdr_ts > 0 { hdr_ts } else { now_ms },
                        });
                    }
                    None => self.ledger.unknown_peer += 1,
                }
            }
            BmpMessage::StatsReport { peer, stats } => {
                let key = PeerKey::of(&peer);
                match self.demux.get(&key) {
                    Some(&vp) => {
                        self.ledger.stats_reports += 1;
                        self.events.push_back(BmpEvent::Stats { vp, stats });
                    }
                    None => self.ledger.unknown_peer += 1,
                }
            }
        }
    }
}

/// Multiprotocol families an OPEN advertised.
fn sets_of(open: &OpenMessage) -> FamilySet {
    open.mp_families.iter().copied().collect()
}

/// Families an OPEN offered ADD-PATH for.
fn addpaths_of(open: &OpenMessage) -> FamilySet {
    open.add_paths.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{BmpMessage, InfoTlv, PeerDownReason, PeerHeader, PeerUpMessage};
    use crate::config::PeerOverride;
    use bgp_types::Prefix;
    use bgp_wire::OpenMessage;
    use std::net::Ipv4Addr;

    fn peer_up(asn: u32, addr: Ipv4Addr) -> BmpMessage {
        let peer = PeerHeader::v4(asn, addr, 0, 0);
        let mut local = [0u8; 16];
        local[12..].copy_from_slice(&[10, 255, 0, 1]);
        BmpMessage::PeerUp(PeerUpMessage {
            peer,
            local_address: local,
            local_port: 179,
            remote_port: 40000,
            sent_open: OpenMessage::new(Asn(65535), 90, Ipv4Addr::new(10, 255, 0, 1)),
            recv_open: OpenMessage::new(Asn(asn), 90, addr),
            info: vec![],
        })
    }

    fn route(asn: u32, addr: Ipv4Addr, prefix: u32, ts_ms: u64) -> BmpMessage {
        BmpMessage::RouteMonitoring {
            peer: PeerHeader::v4(asn, addr, 0, ts_ms),
            update: UpdateMessage::announce(
                Prefix::synthetic(prefix),
                [Asn(asn), Asn(2)].into_iter().collect(),
                Ipv4Addr::new(10, 0, 0, 9),
                vec![],
            ),
        }
    }

    fn initiation() -> BmpMessage {
        BmpMessage::Initiation {
            info: vec![InfoTlv::string(info_type::SYS_NAME, "r1")],
        }
    }

    fn pump(fsm: &mut BmpFsm, msg: &BmpMessage, now: u64) {
        fsm.handle_bytes(&msg.encode_to_vec().unwrap(), now);
    }

    fn drain(fsm: &mut BmpFsm) -> Vec<BmpEvent> {
        std::iter::from_fn(|| fsm.poll_event()).collect()
    }

    #[test]
    fn add_path_peer_decodes_route_monitoring_with_negotiated_ctx() {
        use bgp_types::AddressFamily;
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        // a Peer Up whose OPEN pair negotiated dual-stack + v6 ADD-PATH
        let peer = PeerHeader::v4(65010, addr, 0, 0);
        let mut local = [0u8; 16];
        local[12..].copy_from_slice(&[10, 255, 0, 1]);
        let caps = |asn: u32, router: Ipv4Addr| {
            OpenMessage::new(Asn(asn), 90, router)
                .with_families(AddressFamily::ALL)
                .with_add_paths([AddressFamily::Ipv6Unicast])
        };
        let up = BmpMessage::PeerUp(PeerUpMessage {
            peer,
            local_address: local,
            local_port: 179,
            remote_port: 40000,
            sent_open: caps(65535, Ipv4Addr::new(10, 255, 0, 1)),
            recv_open: caps(65010, addr),
            info: vec![],
        });
        // a v6 ADD-PATH route from that peer
        let mut u = UpdateMessage::announce_v6(
            "2001:db8::/32".parse().unwrap(),
            [Asn(65010), Asn(2)].into_iter().collect(),
            std::net::Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 9),
            vec![],
        );
        for n in &mut u.announced {
            n.path_id = Some(11);
        }
        let rm = BmpMessage::RouteMonitoring {
            peer: PeerHeader::v4(65010, addr, 0, 5),
            update: u.clone(),
        };

        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        pump(&mut fsm, &initiation(), 0);
        pump(&mut fsm, &up, 1);
        pump(&mut fsm, &rm, 2);
        assert!(!fsm.is_closed());
        let evs = drain(&mut fsm);
        assert!(evs.iter().any(|e| matches!(
            e,
            BmpEvent::PeerUp { families, add_paths, .. }
                if *families == FamilySet::ALL
                    && *add_paths == FamilySet::only(AddressFamily::Ipv6Unicast)
        )));
        assert!(evs
            .iter()
            .any(|e| matches!(e, BmpEvent::Update { update, .. } if *update == u)));
    }

    #[test]
    fn initiation_first_is_enforced() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        pump(&mut fsm, &peer_up(65010, Ipv4Addr::new(10, 0, 0, 1)), 0);
        assert!(fsm.is_closed());
        assert!(matches!(
            drain(&mut fsm).last(),
            Some(BmpEvent::Closed(BmpCloseReason::ProtocolError(_)))
        ));
    }

    #[test]
    fn demux_maps_peers_to_distinct_vps() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        pump(&mut fsm, &initiation(), 0);
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        pump(&mut fsm, &peer_up(65010, a), 1);
        pump(&mut fsm, &peer_up(65010, b), 2); // same AS, second router
        pump(&mut fsm, &peer_up(65020, a), 3); // same addr, different AS
        pump(&mut fsm, &route(65010, a, 1, 100), 4);
        pump(&mut fsm, &route(65010, b, 2, 200), 5);
        pump(&mut fsm, &route(65020, a, 3, 300), 6);
        let events = drain(&mut fsm);
        let vps: Vec<VpId> = events
            .iter()
            .filter_map(|e| match e {
                BmpEvent::Update { vp, .. } => Some(*vp),
                _ => None,
            })
            .collect();
        assert_eq!(
            vps,
            vec![
                VpId::new(Asn(65010), 0),
                VpId::new(Asn(65010), 1),
                VpId::new(Asn(65020), 0),
            ]
        );
        assert_eq!(fsm.peer_count(), 3);
        assert_eq!(fsm.ledger().route_monitoring, 3);
    }

    #[test]
    fn update_before_peer_up_is_dropped_and_counted() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        pump(&mut fsm, &initiation(), 0);
        pump(&mut fsm, &route(65010, Ipv4Addr::new(10, 0, 0, 1), 1, 0), 1);
        assert!(!fsm.is_closed(), "unknown peer is a drop, not a close");
        assert_eq!(fsm.ledger().unknown_peer, 1);
        assert!(drain(&mut fsm)
            .iter()
            .all(|e| !matches!(e, BmpEvent::Update { .. })));
    }

    #[test]
    fn peer_down_tears_down_and_reregistration_gets_fresh_vp() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        pump(&mut fsm, &initiation(), 0);
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        pump(&mut fsm, &peer_up(65010, addr), 1);
        pump(
            &mut fsm,
            &BmpMessage::PeerDown {
                peer: PeerHeader::v4(65010, addr, 0, 0),
                reason: PeerDownReason::RemoteNoData,
            },
            2,
        );
        // post-teardown updates are unknown-peer drops
        pump(&mut fsm, &route(65010, addr, 1, 0), 3);
        assert_eq!(fsm.ledger().unknown_peer, 1);
        assert_eq!(fsm.peer_count(), 0);
        // a fresh Peer Up re-registers with the *next* discriminator
        pump(&mut fsm, &peer_up(65010, addr), 4);
        assert_eq!(
            fsm.vp_for(&PeerKey::of(&PeerHeader::v4(65010, addr, 0, 0))),
            Some(VpId::new(Asn(65010), 1))
        );
        let events = drain(&mut fsm);
        assert!(events
            .iter()
            .any(|e| matches!(e, BmpEvent::PeerDown { reason: 4, .. })));
    }

    #[test]
    fn duplicate_peer_up_keeps_existing_mapping() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        pump(&mut fsm, &initiation(), 0);
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        pump(&mut fsm, &peer_up(65010, addr), 1);
        pump(&mut fsm, &peer_up(65010, addr), 2);
        assert_eq!(fsm.ledger().duplicate_peer_ups, 1);
        assert_eq!(fsm.peer_count(), 1);
    }

    #[test]
    fn allowlist_denies_unlisted_asns() {
        let policy = PeerPolicy {
            allow: Some([65010u32].into_iter().collect()),
            ..PeerPolicy::default()
        };
        let mut fsm = BmpFsm::new(
            BmpSessionConfig {
                idle_timeout_ms: 0,
                policy,
            },
            0,
        );
        pump(&mut fsm, &initiation(), 0);
        pump(&mut fsm, &peer_up(65010, Ipv4Addr::new(10, 0, 0, 1)), 1);
        pump(&mut fsm, &peer_up(65099, Ipv4Addr::new(10, 0, 0, 2)), 2);
        pump(&mut fsm, &route(65099, Ipv4Addr::new(10, 0, 0, 2), 1, 0), 3);
        assert_eq!(fsm.ledger().denied_peers, 1);
        assert_eq!(fsm.ledger().unknown_peer, 1, "denied peer stays unknown");
        assert_eq!(fsm.peer_count(), 1);
    }

    #[test]
    fn overrides_pin_asn_router_and_name() {
        let mut policy = PeerPolicy::default();
        policy.overrides.insert(
            "10.0.0.1".to_string(),
            PeerOverride {
                name: Some("fra1-r7".to_string()),
                asn: Some(64512),
                router: Some(7),
            },
        );
        let mut fsm = BmpFsm::new(
            BmpSessionConfig {
                idle_timeout_ms: 0,
                policy,
            },
            0,
        );
        pump(&mut fsm, &initiation(), 0);
        pump(&mut fsm, &peer_up(65010, Ipv4Addr::new(10, 0, 0, 1)), 1);
        let events = drain(&mut fsm);
        assert!(events.iter().any(|e| matches!(
            e,
            BmpEvent::PeerUp { vp, name: Some(n), .. }
                if *vp == VpId::new(Asn(64512), 7) && n == "fra1-r7"
        )));
    }

    #[test]
    fn update_timestamps_prefer_peer_header_time() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        pump(&mut fsm, &initiation(), 0);
        let addr = Ipv4Addr::new(10, 0, 0, 1);
        pump(&mut fsm, &peer_up(65010, addr), 1);
        pump(&mut fsm, &route(65010, addr, 1, 5_000), 9_000);
        pump(&mut fsm, &route(65010, addr, 2, 0), 9_500); // no router ts
        let ts: Vec<u64> = drain(&mut fsm)
            .iter()
            .filter_map(|e| match e {
                BmpEvent::Update { ts_ms, .. } => Some(*ts_ms),
                _ => None,
            })
            .collect();
        assert_eq!(ts, vec![5_000, 9_500]);
    }

    #[test]
    fn termination_closes_cleanly() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        pump(&mut fsm, &initiation(), 0);
        pump(&mut fsm, &BmpMessage::Termination { info: vec![] }, 1);
        assert!(fsm.is_closed());
        assert!(drain(&mut fsm)
            .iter()
            .any(|e| matches!(e, BmpEvent::Closed(BmpCloseReason::Terminated))));
        // further bytes are ignored
        pump(&mut fsm, &initiation(), 2);
        assert!(drain(&mut fsm).is_empty());
    }

    #[test]
    fn eof_mid_frame_is_distinguished() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        let bytes = initiation().encode_to_vec().unwrap();
        fsm.handle_bytes(&bytes[..3], 0);
        fsm.handle_eof(1);
        assert!(matches!(
            drain(&mut fsm).last(),
            Some(BmpEvent::Closed(BmpCloseReason::PeerClosedMidMessage))
        ));
    }

    #[test]
    fn idle_timeout_fires_and_rearms_on_traffic() {
        let mut fsm = BmpFsm::new(
            BmpSessionConfig {
                idle_timeout_ms: 1_000,
                ..BmpSessionConfig::default()
            },
            0,
        );
        pump(&mut fsm, &initiation(), 0);
        assert_eq!(fsm.next_deadline_ms(), Some(1_000));
        fsm.tick(999);
        assert!(!fsm.is_closed());
        pump(&mut fsm, &BmpMessage::Termination { info: vec![] }, 999);
        // timer is moot once closed
        let mut idle = BmpFsm::new(
            BmpSessionConfig {
                idle_timeout_ms: 1_000,
                ..BmpSessionConfig::default()
            },
            0,
        );
        idle.tick(1_000);
        assert!(idle.is_closed());
        assert!(matches!(
            drain(&mut idle).last(),
            Some(BmpEvent::Closed(BmpCloseReason::IdleTimeout))
        ));
    }

    #[test]
    fn garbage_bytes_close_with_decode_error() {
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        fsm.handle_bytes(b"GET / HTTP/1.1\r\n", 0);
        assert!(fsm.is_closed());
        assert!(matches!(
            drain(&mut fsm).last(),
            Some(BmpEvent::Closed(BmpCloseReason::DecodeError(_)))
        ));
    }
}
