//! The BMP runtime: accept loops, the per-session drive loop, and the
//! shared counter ledger.
//!
//! [`run_bmp_session`] is generic over [`Transport`], so the exact loop
//! that serves TCP routers also runs over `SimTransport` in tests, the
//! soak harness, and `bench_bmp`. Accepted routes are handed to
//! [`SessionCtx::offer`] — the same mirror → validate → filter → sink →
//! bounded-queue pipeline BGP sessions feed — so BMP inherits every
//! downstream accounting invariant for free.

use crate::config::BmpConfig;
use crate::fsm::{BmpCloseReason, BmpEvent, BmpFsm, BmpSessionConfig};
use bgp_types::Timestamp;
use gill_collector::daemon::SessionCtx;
use gill_collector::transport::{Clock, SystemClock, Transport};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared counters for the BMP subsystem, in the style of
/// `gill_collector::daemon::DaemonStats`. Message-level counters are
/// incremented live by the drive loop (so `/health`-style probes see
/// progress mid-session), session counters at open/close.
#[derive(Default, Debug)]
pub struct BmpStats {
    /// BMP sessions that sent a valid Initiation.
    pub sessions_opened: AtomicUsize,
    /// BMP sessions that ended (any reason).
    pub sessions_closed: AtomicUsize,
    /// Sessions that died before Initiation (garbage, wrong protocol).
    pub initiation_failures: AtomicUsize,
    /// Monitored peers registered via Peer Up, across all sessions.
    pub peers_up: AtomicUsize,
    /// Monitored peers torn down via Peer Down.
    pub peers_down: AtomicUsize,
    /// Route Monitoring UPDATEs delivered into the pipeline.
    pub updates: AtomicUsize,
    /// Stats Reports received for registered peers.
    pub stats_reports: AtomicUsize,
    /// Frames for unregistered peers (dropped, counted, never guessed).
    pub unknown_peer: AtomicUsize,
    /// Peer Ups rejected by the ASN allowlist.
    pub peers_denied: AtomicUsize,
    /// Duplicate Peer Ups (existing demux entry kept).
    pub duplicate_peer_ups: AtomicUsize,
    /// Sessions closed by the idle timer.
    pub idle_timeouts: AtomicUsize,
    /// Sessions closed by decode or protocol errors.
    pub protocol_errors: AtomicUsize,
    /// Sessions closed by a clean Termination message.
    pub terminations: AtomicUsize,
    /// Connections closed at accept because the pool-wide session cap
    /// (`BmpConfig::max_sessions`) was reached.
    pub accept_rejected: AtomicUsize,
}

/// Upper bound on one blocking read so idle-timer ticks stay responsive.
const MAX_READ_SLICE_MS: u64 = 500;

/// Drives one BMP session over `transport` until it closes, feeding every
/// accepted UPDATE through `ctx` attributed to its demuxed [`bgp_types::VpId`].
/// Returns the close reason (an `Err` only for unexpected transport
/// failures; session-level failures are reasons).
pub fn run_bmp_session<T: Transport>(
    mut transport: T,
    cfg: BmpSessionConfig,
    ctx: &SessionCtx,
    stats: &BmpStats,
    clock: &dyn Clock,
) -> io::Result<BmpCloseReason> {
    let mut fsm = BmpFsm::new(cfg, clock.now_ms());
    let mut chunk = vec![0u8; 16 * 1024];
    let mut started = false;
    let mut closing = false;
    loop {
        if !closing && ctx.shutdown.load(Ordering::Relaxed) {
            // cooperative shutdown: BMP has no message we owe the peer,
            // so close the transport and let the FSM wind down as EOF
            closing = true;
            transport.shutdown();
            fsm.handle_eof(clock.now_ms());
        }
        while let Some(event) = fsm.poll_event() {
            match event {
                BmpEvent::SessionStarted { .. } => {
                    started = true;
                    stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
                }
                BmpEvent::PeerUp { .. } => {
                    stats.peers_up.fetch_add(1, Ordering::Relaxed);
                }
                BmpEvent::PeerDown { .. } => {
                    stats.peers_down.fetch_add(1, Ordering::Relaxed);
                }
                BmpEvent::Update { vp, update, ts_ms } => {
                    stats.updates.fetch_add(1, Ordering::Relaxed);
                    ctx.offer(vp, update, Timestamp::from_millis(ts_ms));
                }
                BmpEvent::Stats { .. } => {
                    stats.stats_reports.fetch_add(1, Ordering::Relaxed);
                }
                BmpEvent::Closed(reason) => {
                    let ledger = fsm.ledger();
                    stats
                        .unknown_peer
                        .fetch_add(ledger.unknown_peer as usize, Ordering::Relaxed);
                    stats
                        .peers_denied
                        .fetch_add(ledger.denied_peers as usize, Ordering::Relaxed);
                    stats
                        .duplicate_peer_ups
                        .fetch_add(ledger.duplicate_peer_ups as usize, Ordering::Relaxed);
                    if started {
                        stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        stats.initiation_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    match &reason {
                        BmpCloseReason::Terminated => {
                            stats.terminations.fetch_add(1, Ordering::Relaxed);
                        }
                        BmpCloseReason::IdleTimeout => {
                            stats.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        BmpCloseReason::DecodeError(_) | BmpCloseReason::ProtocolError(_) => {
                            stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                    transport.shutdown();
                    return Ok(reason);
                }
            }
        }
        let now = clock.now_ms();
        let timeout = fsm
            .next_deadline_ms()
            .map(|d| d.saturating_sub(now).clamp(1, MAX_READ_SLICE_MS))
            .unwrap_or(MAX_READ_SLICE_MS);
        transport.set_read_timeout(Some(Duration::from_millis(timeout)))?;
        match transport.read(&mut chunk[..]) {
            Ok(0) => fsm.handle_eof(clock.now_ms()),
            Ok(n) => fsm.handle_bytes(&chunk[..n], clock.now_ms()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                fsm.tick(clock.now_ms());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// A pool of BMP listeners: one accept thread per configured listener,
/// one session thread per connected router, all sharing one
/// [`SessionCtx`] pipeline and one [`BmpStats`] ledger.
pub struct BmpPool {
    stats: Arc<BmpStats>,
    stop: Arc<AtomicBool>,
    accept_threads: Vec<std::thread::JoinHandle<()>>,
    session_threads: Arc<parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>>,
    local_addrs: Vec<SocketAddr>,
}

impl BmpPool {
    /// Binds every configured listener and starts accepting routers.
    /// Sessions publish through `ctx` — typically
    /// `DaemonPool::session_ctx()`, so BGP and BMP share one pipeline.
    /// The pool replaces the ctx's shutdown signal with its own, so
    /// [`BmpPool::stop`] winds down exactly this pool's sessions.
    pub fn start(cfg: &BmpConfig, mut ctx: SessionCtx) -> io::Result<BmpPool> {
        let stats = Arc::new(BmpStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        ctx.shutdown = stop.clone();
        let session_threads: Arc<parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let mut accept_threads = Vec::new();
        let mut local_addrs = Vec::new();
        for lst in &cfg.listeners {
            let listener = TcpListener::bind(&lst.bind)?;
            local_addrs.push(listener.local_addr()?);
            listener.set_nonblocking(true)?;
            let session_cfg = BmpSessionConfig {
                idle_timeout_ms: lst.idle_timeout_ms,
                policy: cfg.policy.clone(),
            };
            let max_sessions = cfg.max_sessions;
            let stats = stats.clone();
            let stop = stop.clone();
            let ctx = ctx.clone();
            let threads = session_threads.clone();
            let active = active.clone();
            accept_threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            if max_sessions > 0 && active.load(Ordering::Relaxed) >= max_sessions {
                                // 503-style shed: BMP has no reject
                                // message, so the close *is* the signal
                                stats.accept_rejected.fetch_add(1, Ordering::Relaxed);
                                Transport::shutdown(&mut stream);
                                continue;
                            }
                            active.fetch_add(1, Ordering::Relaxed);
                            stream.set_nonblocking(false).ok();
                            let ctx = ctx.clone();
                            let stats = stats.clone();
                            let session_cfg = session_cfg.clone();
                            let active = active.clone();
                            let handle = std::thread::spawn(move || {
                                let clock = SystemClock::new();
                                let _ = run_bmp_session(stream, session_cfg, &ctx, &stats, &clock);
                                active.fetch_sub(1, Ordering::Relaxed);
                            });
                            let mut v = threads.lock();
                            v.retain(|h| !h.is_finished());
                            v.push(handle);
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                // listener drops here: the socket closes with the loop
            }));
        }
        Ok(BmpPool {
            stats,
            stop,
            accept_threads,
            session_threads,
            local_addrs,
        })
    }

    /// Addresses routers should connect to, one per listener.
    pub fn local_addrs(&self) -> &[SocketAddr] {
        &self.local_addrs
    }

    /// Live counters (shared with every session).
    pub fn stats(&self) -> &Arc<BmpStats> {
        &self.stats
    }

    /// Signals shutdown without joining (usable through a shared
    /// reference from inside a thread scope).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stops the pool: closes listeners, signals every session (their
    /// transports are shut down mid-read-slice), and joins session
    /// threads with a bounded deadline.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        let handles: Vec<_> = self.session_threads.lock().drain(..).collect();
        let _stragglers =
            gill_collector::daemon::join_with_deadline(handles, Duration::from_secs(3));
    }
}

impl Drop for BmpPool {
    fn drop(&mut self) {
        self.stop();
    }
}
