//! BMP (RFC 7854) ingestion for the GILL collection platform.
//!
//! BGP peers with one router per session; BMP multiplexes a router's view
//! of *many* monitored BGP peers over one TCP session, which is why modern
//! deployments treat it as the preferred on-ramp for contributing a feed:
//! the operator points an existing monitoring knob at the collector instead
//! of configuring a full BGP session per peer. This crate adds BMP as a
//! second first-class ingest protocol, feeding the exact same
//! filter → store → stream → query pipeline as the BGP daemon.
//!
//! The subsystem is layered like the BGP side:
//!
//! * [`codec`] — wire codec for the BMP common header, per-peer header and
//!   the six v3 message types; embedded BGP PDUs (the UPDATE inside Route
//!   Monitoring, the OPENs inside Peer Up, the NOTIFICATION inside Peer
//!   Down) are decoded by the existing `bgp-wire` codec.
//! * [`fsm`] — a sans-I/O session state machine: Initiation-first
//!   enforcement, a per-(peer address, route distinguisher, ASN) demux
//!   table mapping monitored peers to [`bgp_types::VpId`]s, Peer Down
//!   teardown, and a per-session counter ledger. Pure — it runs unchanged
//!   over TCP, [`gill_collector::transport::SimTransport`] fault schedules
//!   and the deterministic soak harness.
//! * [`config`] — TOML-ish per-peer configuration: listener instances,
//!   ASN allowlists, and per-peer-address ASN/router/name overrides.
//! * [`listener`] — the runtime: accept loops, a per-connection drive
//!   loop, and [`listener::BmpStats`], the `DaemonStats`-style atomic
//!   ledger shared by all BMP sessions.
//!
//! Accepted routes enter the pipeline through
//! [`gill_collector::daemon::SessionCtx::offer`], so every downstream
//! invariant (compiled≡reference filter verdicts, exact shed/gap
//! accounting, crash-restart byte-equivalence) covers BMP-ingested
//! updates too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod config;
pub mod fsm;
pub mod listener;

pub use codec::{
    BmpError, BmpMessage, InfoTlv, PeerDownReason, PeerHeader, PeerUpMessage, StatCounter,
};
pub use config::{BmpConfig, ListenerConfig, PeerOverride, PeerPolicy};
pub use fsm::{BmpCloseReason, BmpEvent, BmpFsm, BmpLedger, BmpSessionConfig, PeerKey};
pub use listener::{run_bmp_session, BmpPool, BmpStats};
