//! TOML-ish BMP configuration: listener instances, peer allowlists and
//! per-peer-address overrides.
//!
//! The grammar is the small TOML subset the rest of the workspace already
//! favors — sections, `key = value` pairs, `"quoted strings"` and bare
//! integers — parsed by hand so the offline build needs no TOML crate:
//!
//! ```text
//! # optional top-level keys come before any section
//! max-sessions = 4096             # concurrent-session cap, 0 = unlimited
//!
//! # one section per listener socket
//! [[listener]]
//! bind = "0.0.0.0:11019"
//! idle-timeout-ms = 60000
//!
//! [[listener]]
//! bind = "127.0.0.1:11020"
//!
//! # session-wide peer policy
//! [peers]
//! allow = "65010 65011 65012"     # space-separated ASNs, or omit for any
//!
//! # per-peer-address overrides (keyed by the per-peer header address)
//! [peer."10.0.0.1"]
//! name = "fra1-r7"
//! asn = 64512
//! router = 7
//! ```

use std::collections::{BTreeMap, BTreeSet};

/// One listening socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ListenerConfig {
    /// Bind address, `host:port` (port 0 for ephemeral).
    pub bind: String,
    /// Per-session idle timeout in ms (0 disables).
    pub idle_timeout_ms: u64,
}

/// Per-address identity overrides applied at Peer Up.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerOverride {
    /// Operator-assigned peer name.
    pub name: Option<String>,
    /// Pin the VP's ASN (overriding the per-peer header's).
    pub asn: Option<u32>,
    /// Pin the VP's router discriminator (overriding arrival-order
    /// allocation).
    pub router: Option<u16>,
}

/// Session-wide peer policy: who may register, and under what identity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerPolicy {
    /// ASNs allowed to register via Peer Up; `None` allows any.
    pub allow: Option<BTreeSet<u32>>,
    /// Overrides keyed by the rendered peer address (dotted quad for
    /// IPv4).
    pub overrides: BTreeMap<String, PeerOverride>,
}

impl PeerPolicy {
    /// Whether a peer with this (post-override) ASN may register.
    pub fn allows(&self, asn: u32) -> bool {
        self.allow.as_ref().is_none_or(|set| set.contains(&asn))
    }

    /// The override for a peer address, if configured.
    pub fn override_for(&self, addr: &str) -> Option<&PeerOverride> {
        self.overrides.get(addr)
    }
}

/// The full BMP subsystem configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BmpConfig {
    /// Listener instances (at least one for a running pool).
    pub listeners: Vec<ListenerConfig>,
    /// Peer policy shared by every session.
    pub policy: PeerPolicy,
    /// Pool-wide cap on concurrent BMP sessions (0 = unlimited).
    /// Connections beyond it are closed at accept and counted in
    /// `BmpStats::accept_rejected`.
    pub max_sessions: usize,
}

impl BmpConfig {
    /// A config with a single allow-all listener on `bind`.
    pub fn single(bind: &str) -> BmpConfig {
        BmpConfig {
            listeners: vec![ListenerConfig {
                bind: bind.to_string(),
                idle_timeout_ms: 0,
            }],
            policy: PeerPolicy::default(),
            max_sessions: 0,
        }
    }

    /// Parses the config grammar documented at the module level.
    pub fn parse(text: &str) -> Result<BmpConfig, String> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Listener(usize),
            Peers,
            Peer(String),
        }
        let mut cfg = BmpConfig::default();
        let mut section = Section::None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[listener]]" {
                cfg.listeners.push(ListenerConfig {
                    bind: String::new(),
                    idle_timeout_ms: 0,
                });
                section = Section::Listener(cfg.listeners.len() - 1);
                continue;
            }
            if line == "[peers]" {
                section = Section::Peers;
                continue;
            }
            if let Some(inner) = line
                .strip_prefix("[peer.")
                .and_then(|s| s.strip_suffix(']'))
            {
                let addr = inner
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| err("expected [peer.\"ADDR\"]"))?;
                cfg.policy
                    .overrides
                    .entry(addr.to_string())
                    .or_insert_with(PeerOverride::default);
                section = Section::Peer(addr.to_string());
                continue;
            }
            if line.starts_with('[') {
                return Err(err("unknown section"));
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| err("expected key = value"))?;
            let as_str = || -> Result<&str, String> {
                value
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| err("expected a quoted string"))
            };
            let as_u64 = || -> Result<u64, String> {
                value.parse::<u64>().map_err(|_| err("expected an integer"))
            };
            match (&mut section, key) {
                (Section::Listener(i), "bind") => cfg.listeners[*i].bind = as_str()?.to_string(),
                (Section::Listener(i), "idle-timeout-ms") => {
                    cfg.listeners[*i].idle_timeout_ms = as_u64()?;
                }
                (Section::Peers, "allow") => {
                    let mut set = BTreeSet::new();
                    for tok in as_str()?.split_whitespace() {
                        if tok == "any" {
                            cfg.policy.allow = None;
                            set.clear();
                            break;
                        }
                        set.insert(
                            tok.parse::<u32>()
                                .map_err(|_| err("allow: expected ASN or `any`"))?,
                        );
                    }
                    if !set.is_empty() {
                        cfg.policy.allow = Some(set);
                    }
                }
                (Section::Peer(addr), "name") => {
                    cfg.policy.overrides.get_mut(addr.as_str()).unwrap().name =
                        Some(as_str()?.to_string());
                }
                (Section::Peer(addr), "asn") => {
                    cfg.policy.overrides.get_mut(addr.as_str()).unwrap().asn =
                        Some(as_u64()? as u32);
                }
                (Section::Peer(addr), "router") => {
                    cfg.policy.overrides.get_mut(addr.as_str()).unwrap().router =
                        Some(as_u64()? as u16);
                }
                (Section::None, "max-sessions") => cfg.max_sessions = as_u64()? as usize,
                (Section::None, _) => return Err(err("key outside any section")),
                _ => return Err(err("unknown key for this section")),
            }
        }
        for (i, l) in cfg.listeners.iter().enumerate() {
            if l.bind.is_empty() {
                return Err(format!("listener {} has no bind address", i + 1));
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# gill-bmp example
[[listener]]
bind = "127.0.0.1:11019"
idle-timeout-ms = 60000

[[listener]]
bind = "127.0.0.1:0"

[peers]
allow = "65010 65011"

[peer."10.0.0.1"]
name = "fra1-r7"
asn = 64512
router = 7

[peer."10.0.0.2"]
name = "ams2-r1"
"#;

    #[test]
    fn parses_the_full_grammar() {
        let cfg = BmpConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.listeners.len(), 2);
        assert_eq!(cfg.listeners[0].bind, "127.0.0.1:11019");
        assert_eq!(cfg.listeners[0].idle_timeout_ms, 60_000);
        assert_eq!(cfg.listeners[1].idle_timeout_ms, 0);
        assert!(cfg.policy.allows(65010));
        assert!(!cfg.policy.allows(65012));
        let o = cfg.policy.override_for("10.0.0.1").unwrap();
        assert_eq!(o.name.as_deref(), Some("fra1-r7"));
        assert_eq!(o.asn, Some(64512));
        assert_eq!(o.router, Some(7));
        assert_eq!(
            cfg.policy.override_for("10.0.0.2").unwrap().router,
            None,
            "partial overrides leave the rest defaulted"
        );
    }

    #[test]
    fn allow_any_clears_the_allowlist() {
        let cfg = BmpConfig::parse("[peers]\nallow = \"any\"\n").unwrap();
        assert!(cfg.policy.allows(1));
        assert!(cfg.policy.allow.is_none());
    }

    #[test]
    fn default_policy_allows_everyone() {
        assert!(PeerPolicy::default().allows(4_200_000_000));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = BmpConfig::parse("[[listener]]\nbind 127.0.0.1\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        assert!(BmpConfig::parse("[[listener]]\n").is_err(), "missing bind");
        assert!(BmpConfig::parse("bind = \"x\"\n").is_err(), "no section");
        assert!(BmpConfig::parse("[wat]\n").is_err());
        assert!(BmpConfig::parse("[peer.10.0.0.1]\n").is_err(), "unquoted");
        assert!(BmpConfig::parse("[[listener]]\nidle-timeout-ms = \"x\"\n").is_err());
    }

    #[test]
    fn single_is_allow_all() {
        let cfg = BmpConfig::single("127.0.0.1:0");
        assert_eq!(cfg.listeners.len(), 1);
        assert!(cfg.policy.allows(12345));
    }
}
