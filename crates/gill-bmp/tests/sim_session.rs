//! BMP sessions over `SimTransport` fault schedules: the same sans-I/O
//! FSM that serves TCP routers, driven deterministically on a virtual
//! clock through corruption, disconnects, half-open peers and seeded
//! random fault mixes — with bit-identical replays and exact pipeline
//! accounting through a real `SessionCtx`.

use bgp_types::{AsPath, Asn, Prefix, Timestamp, UpdateBuilder, VpId};
use bgp_wire::{OpenMessage, UpdateMessage};
use crossbeam::channel::{bounded, Receiver};
use gill_bmp::codec::{
    info_type, BmpMessage, InfoTlv, PeerDownReason, PeerHeader, PeerUpMessage, StatCounter,
};
use gill_bmp::fsm::{BmpCloseReason, BmpEvent, BmpFsm, BmpLedger, BmpSessionConfig};
use gill_collector::daemon::{DaemonStats, SessionCtx};
use gill_collector::storage::StoredUpdate;
use gill_collector::transport::{
    sim_pair, Clock, FaultSchedule, SimTransport, Transport, VirtualClock,
};
use gill_core::{FilterGranularity, FilterHandle, FilterSet};
use std::io;
use std::net::Ipv4Addr;
use std::sync::atomic::Ordering;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Frame script builders
// ---------------------------------------------------------------------------

fn initiation() -> BmpMessage {
    BmpMessage::Initiation {
        info: vec![InfoTlv::string(info_type::SYS_NAME, "sim-router")],
    }
}

fn peer_up(asn: u32, addr: Ipv4Addr) -> BmpMessage {
    let mut local = [0u8; 16];
    local[12..].copy_from_slice(&[10, 255, 0, 1]);
    BmpMessage::PeerUp(PeerUpMessage {
        peer: PeerHeader::v4(asn, addr, 0, 0),
        local_address: local,
        local_port: 179,
        remote_port: 40000,
        sent_open: OpenMessage::new(Asn(65535), 90, Ipv4Addr::new(10, 255, 0, 1)),
        recv_open: OpenMessage::new(Asn(asn), 90, addr),
        info: vec![],
    })
}

fn route(asn: u32, addr: Ipv4Addr, prefix: u32, ts_ms: u64) -> BmpMessage {
    BmpMessage::RouteMonitoring {
        peer: PeerHeader::v4(asn, addr, 0, ts_ms),
        update: UpdateMessage::announce(
            Prefix::synthetic(prefix),
            AsPath::from_u32s([asn, 174, 3356]),
            Ipv4Addr::new(10, 0, 0, 9),
            vec![],
        ),
    }
}

/// A full day for one router: Initiation, two peers up, interleaved
/// updates, stats, one peer down, Termination.
fn script() -> Vec<BmpMessage> {
    let a = Ipv4Addr::new(10, 0, 0, 1);
    let b = Ipv4Addr::new(10, 0, 0, 2);
    vec![
        initiation(),
        peer_up(65010, a),
        peer_up(65020, b),
        route(65010, a, 1, 1_000),
        route(65020, b, 2, 1_100),
        route(65010, a, 3, 1_200),
        BmpMessage::StatsReport {
            peer: PeerHeader::v4(65010, a, 0, 1_300),
            stats: vec![StatCounter::counter(0, 5), StatCounter::gauge(7, 12)],
        },
        BmpMessage::PeerDown {
            peer: PeerHeader::v4(65020, b, 0, 1_400),
            reason: PeerDownReason::RemoteNoData,
        },
        route(65010, a, 4, 1_500),
        BmpMessage::Termination { info: vec![] },
    ]
}

fn encode_script(frames: &[BmpMessage]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for f in frames {
        bytes.extend(f.encode_to_vec().unwrap());
    }
    bytes
}

// ---------------------------------------------------------------------------
// Deterministic drive loop
// ---------------------------------------------------------------------------

/// Everything one deterministic run produces, for replay comparison.
#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    reason: Option<BmpCloseReason>,
    ledger: BmpLedger,
    stored: Vec<(VpId, Prefix, Timestamp)>,
    received: usize,
    filtered: usize,
    retained: usize,
}

/// Drives a BMP server endpoint over `transport` on a virtual clock in
/// fixed 10 ms steps, feeding accepted updates through a real
/// `SessionCtx`. Single-threaded and allocation-order-free: identical
/// inputs produce identical outcomes, bit for bit.
fn drive(
    mut transport: SimTransport,
    clock: &VirtualClock,
    cfg: BmpSessionConfig,
    ctx: &SessionCtx,
    queue_rx: &Receiver<StoredUpdate>,
    max_ms: u64,
) -> RunOutcome {
    let mut fsm = BmpFsm::new(cfg, clock.now_ms());
    let mut chunk = [0u8; 4096];
    let mut reason = None;
    let start = clock.now_ms();
    'outer: while clock.now_ms() - start < max_ms {
        loop {
            match transport.read(&mut chunk) {
                Ok(0) => {
                    fsm.handle_eof(clock.now_ms());
                    break;
                }
                Ok(n) => fsm.handle_bytes(&chunk[..n], clock.now_ms()),
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("unexpected transport error: {e}"),
            }
        }
        fsm.tick(clock.now_ms());
        while let Some(event) = fsm.poll_event() {
            match event {
                BmpEvent::Update { vp, update, ts_ms } => {
                    ctx.offer(vp, update, Timestamp::from_millis(ts_ms));
                }
                BmpEvent::Closed(r) => {
                    reason = Some(r);
                    break 'outer;
                }
                _ => {}
            }
        }
        clock.advance_ms(10);
    }
    let stored: Vec<_> = queue_rx
        .try_iter()
        .map(|s| (s.update.vp, s.update.prefix, s.update.time))
        .collect();
    RunOutcome {
        reason,
        ledger: fsm.ledger(),
        stored,
        received: ctx.stats.received.load(Ordering::Relaxed),
        filtered: ctx.stats.filtered.load(Ordering::Relaxed),
        retained: ctx.stats.retained.load(Ordering::Relaxed),
    }
}

fn pipeline(filters: &Arc<FilterHandle>) -> (SessionCtx, Receiver<StoredUpdate>) {
    let (tx, rx) = bounded(1024);
    let ctx = SessionCtx::new(filters.view(), tx, Arc::new(DaemonStats::default()));
    (ctx, rx)
}

fn run_with_faults(faults: FaultSchedule, cfg: BmpSessionConfig) -> RunOutcome {
    let clock = VirtualClock::new();
    let (mut client, server) = sim_pair(&clock, faults, FaultSchedule::none());
    // the writer keeps its socket open: a stalled run stays half-open
    // (only the idle timer can reclaim it), a severed run sees EOF, a
    // clean run closes on the script's Termination frame
    let _ = client.write_all(&encode_script(&script()));
    let filters = FilterHandle::empty();
    let (ctx, rx) = pipeline(&filters);
    drive(server, &clock, cfg, &ctx, &rx, 60_000)
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

#[test]
fn clean_session_demuxes_into_the_pipeline() {
    let out = run_with_faults(FaultSchedule::none(), BmpSessionConfig::default());
    assert_eq!(out.reason, Some(BmpCloseReason::Terminated));
    // 4 updates from 2 peers, attributed and timestamped from the
    // per-peer headers
    assert_eq!(
        out.stored,
        vec![
            (
                VpId::new(Asn(65010), 0),
                Prefix::synthetic(1),
                Timestamp::from_millis(1_000)
            ),
            (
                VpId::new(Asn(65020), 0),
                Prefix::synthetic(2),
                Timestamp::from_millis(1_100)
            ),
            (
                VpId::new(Asn(65010), 0),
                Prefix::synthetic(3),
                Timestamp::from_millis(1_200)
            ),
            (
                VpId::new(Asn(65010), 0),
                Prefix::synthetic(4),
                Timestamp::from_millis(1_500)
            ),
        ]
    );
    assert_eq!(out.received, 4);
    assert_eq!(out.retained, 4);
    assert_eq!(out.ledger.peer_ups, 2);
    assert_eq!(out.ledger.peer_downs, 1);
    assert_eq!(out.ledger.stats_reports, 1);
    assert_eq!(out.ledger.unknown_peer, 0);
}

#[test]
fn filters_judge_bmp_updates_like_bgp_ones() {
    let clock = VirtualClock::new();
    let (mut client, server) = sim_pair(&clock, FaultSchedule::none(), FaultSchedule::none());
    let _ = client.write_all(&encode_script(&script()));
    let filters = FilterHandle::empty();
    // drop (vp(65010), prefix 1) — exactly one of the four updates
    let template = UpdateBuilder::announce(VpId::new(Asn(65010), 0), Prefix::synthetic(1))
        .path([65010, 174, 3356])
        .build();
    let compiled = filters.compile_next(&FilterSet::generate(
        [],
        [&template],
        FilterGranularity::VpPrefix,
    ));
    filters.publish(compiled);
    let (ctx, rx) = pipeline(&filters);
    let out = drive(
        server,
        &clock,
        BmpSessionConfig::default(),
        &ctx,
        &rx,
        60_000,
    );
    assert_eq!(out.received, 4);
    assert_eq!(out.filtered, 1);
    assert_eq!(out.retained, 3);
    assert!(out
        .stored
        .iter()
        .all(|(vp, p, _)| !(*vp == VpId::new(Asn(65010), 0) && *p == Prefix::synthetic(1))));
}

#[test]
fn corrupt_version_byte_closes_with_decode_error() {
    // offset 0 is the first frame's version byte
    let out = run_with_faults(
        FaultSchedule::parse("corrupt@0.1").unwrap(),
        BmpSessionConfig::default(),
    );
    assert!(
        matches!(out.reason, Some(BmpCloseReason::DecodeError(_))),
        "{:?}",
        out.reason
    );
    assert!(out.stored.is_empty());
}

#[test]
fn sever_mid_frame_is_distinguished_and_keeps_earlier_updates() {
    let frames = script();
    let bytes = encode_script(&frames);
    // cut inside the last Route Monitoring frame: everything before it
    // still delivers
    let cut = bytes.len() as u64 - 20;
    let out = run_with_faults(
        FaultSchedule::parse(&format!("sever@{cut}")).unwrap(),
        BmpSessionConfig::default(),
    );
    assert_eq!(out.reason, Some(BmpCloseReason::PeerClosedMidMessage));
    assert_eq!(out.stored.len(), 3, "updates before the cut survive");
}

#[test]
fn stall_trips_the_idle_timeout() {
    // half-open after the third frame: no EOF ever arrives, so only the
    // idle timer can reclaim the session
    let out = run_with_faults(
        FaultSchedule::parse("stall@200").unwrap(),
        BmpSessionConfig {
            idle_timeout_ms: 2_000,
            ..BmpSessionConfig::default()
        },
    );
    assert_eq!(out.reason, Some(BmpCloseReason::IdleTimeout));
}

/// Seeded random fault mixes: whatever happens, the run must be
/// deterministic — same seed, same outcome, bit for bit — and the
/// pipeline accounting must stay exact (received == filtered + retained,
/// queue never lied to).
#[test]
fn random_fault_schedules_replay_bit_identically() {
    for seed in 0..24u64 {
        let sched = FaultSchedule::random(seed, 700);
        let cfg = BmpSessionConfig {
            idle_timeout_ms: 3_000,
            ..BmpSessionConfig::default()
        };
        let a = run_with_faults(sched.clone(), cfg.clone());
        let b = run_with_faults(sched.clone(), cfg);
        assert_eq!(
            a, b,
            "seed {seed} schedule `{sched}` must replay identically"
        );
        assert_eq!(
            a.received,
            a.filtered + a.retained,
            "seed {seed}: exact ingest accounting"
        );
        assert_eq!(a.stored.len(), a.retained, "seed {seed}");
        assert!(a.reason.is_some(), "seed {seed}: session must terminate");
    }
}
