//! Soak-derived regression: gap-marker exactness under a withdrawal
//! avalanche fanned out to a stalled subscriber. The avalanche bursts far
//! past the ring, so the stalled consumer must lose frames — and every
//! lost frame must surface in a gap marker: `delivered + Σ missed ==
//! published`, exactly, plus a clean EOS.

use gill_scenario::{generate_campaign, CampaignConfig, CampaignKind, World};
use gill_stream::{BrokerConfig, Delivery, FramePayload, SlowPolicy, StreamBroker, StreamFilter};

fn avalanche(seed: u64) -> Vec<bgp_types::BgpUpdate> {
    let world = World {
        n_vps: 6,
        n_prefixes: 96,
        seed: seed ^ 0xde1,
        dual_stack: false,
    };
    let cfg = CampaignConfig {
        kind: CampaignKind::WithdrawalAvalanche,
        start_ms: 10_000,
        duration_ms: 40_000,
        n_targets: 48,
        repeats: 4,
        actor: 64_200,
        seed,
    };
    let (updates, truth) = generate_campaign(&world, &cfg, 0);
    assert_eq!(truth.emitted, updates.len());
    updates
}

/// Drains a subscription to quiescence, separating real updates from
/// gap-marker losses. Returns (updates_seen, frames_missed, eos_seen).
fn drain(sub: &mut gill_stream::Subscription) -> (u64, u64, bool) {
    let (mut seen, mut missed, mut eos) = (0u64, 0u64, false);
    loop {
        match sub.poll_next() {
            Delivery::Frame(f) => match &f.payload {
                FramePayload::Update(_) => seen += 1,
                FramePayload::Gap { missed: m } => missed += m,
                FramePayload::Eos { .. } => eos = true,
            },
            Delivery::Gap(f) => {
                if let FramePayload::Gap { missed: m } = &f.payload {
                    missed += m;
                }
            }
            Delivery::Overrun { missed: m } => missed += m,
            Delivery::Pending | Delivery::Closed => return (seen, missed, eos),
        }
    }
}

#[test]
fn stalled_subscriber_gaps_account_for_every_frame() {
    let updates = avalanche(17);
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: 64,
        max_subscribers: 4,
    });
    let mut live = broker
        .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
        .unwrap();
    let mut stalled = broker
        .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
        .unwrap();

    let mut published = 0u64;
    let (mut live_seen, mut live_missed) = (0u64, 0u64);
    for u in &updates {
        broker.publish_always(u);
        published += 1;
        // the live consumer keeps up frame-by-frame; the stalled one
        // never polls during the avalanche
        let (s, m, _) = drain(&mut live);
        live_seen += s;
        live_missed += m;
    }
    assert!(
        published > 64,
        "avalanche must overrun the ring ({published} published)"
    );
    broker.close();

    let (s, m, live_eos) = drain(&mut live);
    live_seen += s;
    live_missed += m;
    assert_eq!(live_seen, published, "live consumer sees every frame");
    assert_eq!(live_missed, 0);
    assert!(live_eos, "close must deliver EOS to the live consumer");

    let (stalled_seen, stalled_missed, stalled_eos) = drain(&mut stalled);
    assert!(stalled_missed > 0, "stall must have cost frames");
    assert_eq!(
        stalled_seen + stalled_missed,
        published,
        "every lost frame must be counted in a gap marker"
    );
    assert!(stalled_eos, "EOS survives the gap");
}

#[test]
fn gap_accounting_is_deterministic_across_reruns() {
    let run = || {
        let updates = avalanche(29);
        let broker = StreamBroker::new(BrokerConfig {
            ring_capacity: 32,
            max_subscribers: 2,
        });
        let mut stalled = broker
            .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
            .unwrap();
        for u in &updates {
            broker.publish_always(u);
        }
        broker.close();
        let (seen, missed, eos) = drain(&mut stalled);
        assert!(eos);
        assert_eq!(seen + missed, updates.len() as u64);
        (seen, missed, stalled.gaps())
    };
    assert_eq!(run(), run(), "loss pattern must replay identically");
}
