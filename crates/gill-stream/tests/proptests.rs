//! Property tests for the stream wire formats and the delivery invariant.
//!
//! Updates are drawn from `bgp_types::testgen` — the same generators the
//! BGP wire-codec proptests use — so both codecs are exercised over one
//! distribution.

// the proptest! body below is large; the macro expands recursively per test
#![recursion_limit = "512"]

use bgp_types::testgen::arb_update;
use gill_stream::{
    BrokerConfig, Delivery, Frame, FramePayload, SlowPolicy, StreamBroker, StreamFilter,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Binary framing: encode → decode is the identity on (seq, payload),
    // and the decoder consumes exactly the encoded bytes.
    #[test]
    fn binary_frame_roundtrip(u in arb_update(), seq in any::<u64>()) {
        let f = Frame::update(seq, &u);
        let buf = f.encode_binary();
        let (g, consumed) = Frame::decode_binary(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(g.seq, seq);
        prop_assert_eq!(g.payload, FramePayload::Update(u));
    }

    // The decoder is incremental: a concatenation of frames decodes back
    // one by one, and any strict prefix of a frame yields `Ok(None)`.
    #[test]
    fn binary_decoder_is_incremental(us in proptest::collection::vec(arb_update(), 1..6)) {
        let mut wire = Vec::new();
        for (i, u) in us.iter().enumerate() {
            wire.extend_from_slice(Frame::update(i as u64, u).binary());
        }
        // every strict prefix of the first frame is "need more bytes"
        let first_len = Frame::update(0, &us[0]).binary().len();
        for cut in 0..first_len {
            prop_assert!(Frame::decode_binary(&wire[..cut]).unwrap().is_none());
        }
        let mut off = 0;
        for (i, u) in us.iter().enumerate() {
            let (f, n) = Frame::decode_binary(&wire[off..]).unwrap().expect("frame");
            prop_assert_eq!(f.seq, i as u64);
            prop_assert_eq!(&f.payload, &FramePayload::Update(u.clone()));
            off += n;
        }
        prop_assert_eq!(off, wire.len());
    }

    // JSON frames parse back to the same sequence number and fields.
    #[test]
    fn json_frame_parses_back(u in arb_update(), seq in any::<u64>()) {
        let f = Frame::update(seq, &u);
        let (got_seq, payload) = Frame::from_json(f.json()).unwrap();
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(payload, FramePayload::Update(u));
    }

    // The delivery invariant behind the slow-consumer contract: whatever
    // the ring capacity and poll interleave, the sequence numbers a
    // subscriber sees form a strictly increasing subsequence of the
    // published ones, and every hole is announced by a gap marker whose
    // `missed` count covers it exactly.
    #[test]
    fn delivered_is_a_gap_accounted_subsequence(
        us in proptest::collection::vec(arb_update(), 1..40),
        cap in 2usize..16,
        polls in proptest::collection::vec(0usize..3, 1..40),
    ) {
        let broker = StreamBroker::new(BrokerConfig {
            ring_capacity: cap,
            max_subscribers: 4,
        });
        let mut sub = broker
            .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
            .unwrap();
        // scripted interleave: after publish #i, poll polls[i % len] times
        let mut events = Vec::new();
        let mut drain = |sub: &mut gill_stream::Subscription, n: usize| {
            for _ in 0..n {
                match sub.poll_next() {
                    Delivery::Frame(f) => events.push((f.seq, f.payload.clone())),
                    Delivery::Gap(g) => events.push((g.seq, g.payload.clone())),
                    Delivery::Pending | Delivery::Closed => break,
                    Delivery::Overrun { .. } => unreachable!("skip policy"),
                }
            }
        };
        for (i, u) in us.iter().enumerate() {
            broker.publish(u).expect("one subscriber attached");
            drain(&mut sub, polls[i % polls.len()]);
        }
        broker.close();
        loop {
            match sub.poll_next() {
                Delivery::Frame(f) => events.push((f.seq, f.payload.clone())),
                Delivery::Gap(g) => events.push((g.seq, g.payload.clone())),
                Delivery::Closed => break,
                Delivery::Pending => prop_assert!(false, "pending after close"),
                Delivery::Overrun { .. } => unreachable!("skip policy"),
            }
        }
        // replay the event stream against a model cursor
        let mut cursor = 0u64;
        let mut delivered_updates = 0u64;
        let mut missed_total = 0u64;
        let mut saw_eos = false;
        for (seq, payload) in &events {
            prop_assert!(!saw_eos, "nothing may follow eos");
            match payload {
                FramePayload::Gap { missed } => {
                    prop_assert!(*missed >= 1);
                    // the marker's seq is the resume point; it must sit
                    // exactly `missed` past the model cursor
                    prop_assert_eq!(*seq, cursor + missed);
                    cursor = *seq;
                    missed_total += missed;
                }
                FramePayload::Update(_) => {
                    prop_assert_eq!(*seq, cursor, "strictly in-order delivery");
                    cursor += 1;
                    delivered_updates += 1;
                }
                FramePayload::Eos { published } => {
                    prop_assert_eq!(*published, us.len() as u64);
                    saw_eos = true;
                }
            }
        }
        prop_assert!(saw_eos, "close must deliver eos");
        // every published update is either delivered or gap-accounted
        prop_assert_eq!(delivered_updates + missed_total, us.len() as u64);
    }
}
