//! End-to-end tests of the collector → broker → subscriber pipeline.
//!
//! The determinism tests drive the PR-2 session harness (virtual clock,
//! seeded stall faults) to produce a *reproducible* delivered-update
//! sequence, feed it through the broker with a scripted subscriber
//! interleave, and assert that three independent runs produce bit-identical
//! per-subscriber frame sequences — overload behaviour included.
//!
//! The live test runs the real thing: a TCP BGP session into a
//! `DaemonPool` with a `StreamPublisher` sink, fanned out over the chunked
//! HTTP streaming endpoint.

use bgp_types::{Asn, BgpUpdate, Prefix, Timestamp, UpdateBuilder, VpId};
use bgp_wire::{BgpMessage, Notification, UpdateMessage};
use gill_collector::{
    handshake_client, run_scenario, DaemonConfig, DaemonPool, FaultSchedule, MessageStream,
    Scenario, UpdateSink,
};
use gill_query::{RouteStore, ServerConfig};
use gill_stream::{
    serve_streaming, BrokerConfig, Delivery, Frame, FramePayload, SlowPolicy, StreamBroker,
    StreamFilter,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// FNV-1a over a rendered frame sequence: equal digests ⇒ the subscriber
/// saw the exact same bytes in the exact same order.
fn fnv1a(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// One deterministic harness run: a stalled-then-reconnected session
/// delivers its script, which is published through a small ring against
/// one fast and one deliberately lagging subscriber. Returns the two
/// subscribers' rendered frame sequences.
fn harness_run(seed: u64) -> (Vec<String>, Vec<String>) {
    let updates: Vec<UpdateMessage> = (0..24)
        .map(|i| UpdateMessage::withdraw(Prefix::synthetic(i)))
        .collect();
    let mut scenario = Scenario {
        seed,
        updates,
        // the first attempt stalls mid-stream; the retry completes
        client_faults: vec![FaultSchedule::parse("stall@600").unwrap()],
        max_attempts: 3,
        ..Scenario::default()
    };
    scenario.server.hold_time = 5;
    scenario.client.hold_time = 5;
    let out = run_scenario(&scenario);
    assert!(out.completed, "scripted session must deliver");

    // convert the delivered wire messages to domain updates at a virtual
    // timestamp derived from their position (no wall clock anywhere)
    let vp = VpId::from_asn(Asn(scenario.client.local_asn));
    let domain: Vec<BgpUpdate> = out
        .delivered
        .iter()
        .enumerate()
        .flat_map(|(i, w)| w.to_domain(vp, Timestamp::from_millis(i as u64 * 10)))
        .collect();

    // a ring smaller than the update count, so the lagging subscriber
    // must overrun and emit gap markers
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: 8,
        max_subscribers: 4,
    });
    let mut fast = broker
        .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
        .unwrap();
    let mut slow = broker
        .subscribe(StreamFilter::any(), SlowPolicy::SkipWithGapMarker)
        .unwrap();
    let mut fast_lines = Vec::new();
    let mut slow_lines = Vec::new();
    let drain = |sub: &mut gill_stream::Subscription, lines: &mut Vec<String>| loop {
        match sub.poll_next() {
            Delivery::Frame(f) => lines.push(f.json().to_string()),
            Delivery::Gap(g) => lines.push(g.json().to_string()),
            Delivery::Pending | Delivery::Closed => break,
            Delivery::Overrun { .. } => unreachable!("skip policy"),
        }
    };
    for (i, u) in domain.iter().enumerate() {
        broker.publish(u).expect("subscribers attached");
        // scripted interleave: fast keeps up, slow wakes rarely
        drain(&mut fast, &mut fast_lines);
        if i % 13 == 12 {
            drain(&mut slow, &mut slow_lines);
        }
    }
    broker.close();
    drain(&mut fast, &mut fast_lines);
    drain(&mut slow, &mut slow_lines);
    (fast_lines, slow_lines)
}

#[test]
fn stalled_session_replays_bit_identically_through_the_broker() {
    let runs: Vec<(Vec<String>, Vec<String>)> = (0..3).map(|_| harness_run(42)).collect();
    let fast_digests: Vec<u64> = runs.iter().map(|(f, _)| fnv1a(f)).collect();
    let slow_digests: Vec<u64> = runs.iter().map(|(_, s)| fnv1a(s)).collect();
    assert_eq!(fast_digests[0], fast_digests[1]);
    assert_eq!(fast_digests[1], fast_digests[2]);
    assert_eq!(slow_digests[0], slow_digests[1]);
    assert_eq!(slow_digests[1], slow_digests[2]);
    // and the overload behaviour itself is part of what replayed: the
    // lagging subscriber saw at least one gap marker, the fast one none
    let (fast, slow) = &runs[0];
    assert!(
        slow.iter().any(|l| l.contains("\"type\":\"gap\"")),
        "lagging subscriber must be gapped: {slow:?}"
    );
    assert!(
        fast.iter().all(|l| !l.contains("\"type\":\"gap\"")),
        "fast subscriber must see every frame: {fast:?}"
    );
    // fast subscriber got every update frame in sequence
    let n_updates = fast
        .iter()
        .filter(|l| l.contains("\"type\":\"update\""))
        .count();
    assert!(
        n_updates >= 24,
        "all delivered updates streamed: {n_updates}"
    );
}

#[test]
fn different_seeds_may_reorder_but_still_account_for_every_frame() {
    let (fast, _) = harness_run(7);
    // whatever the backoff jitter did, the fast subscriber's stream is a
    // clean prefix-free sequence ending in eos
    let last = fast.last().expect("nonempty");
    let (_, payload) = Frame::from_json(last).unwrap();
    assert!(matches!(payload, FramePayload::Eos { .. }));
    let mut prev = None;
    for l in &fast {
        let (seq, payload) = Frame::from_json(l).unwrap();
        if matches!(payload, FramePayload::Update(_)) {
            if let Some(p) = prev {
                assert!(seq > p, "monotone seqs: {seq} after {p}");
            }
            prev = Some(seq);
        }
    }
}

/// Reads one chunked HTTP response head, asserting 200 + chunked.
fn open_stream(addr: std::net::SocketAddr, target: &str) -> BufReader<TcpStream> {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut r = BufReader::new(s);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.starts_with("HTTP/1.1 200"), "got {line:?}");
    loop {
        let mut l = String::new();
        r.read_line(&mut l).unwrap();
        if l == "\r\n" {
            return r;
        }
    }
}

/// Reads chunked body lines until the terminating zero-length chunk.
fn read_chunked_lines(r: &mut BufReader<TcpStream>) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut size_line = String::new();
        r.read_line(&mut size_line).unwrap();
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
        if size == 0 {
            let mut fin = String::new();
            r.read_line(&mut fin).unwrap();
            return lines;
        }
        let mut payload = vec![0u8; size + 2];
        r.read_exact(&mut payload).unwrap();
        payload.truncate(size);
        for l in String::from_utf8(payload).unwrap().lines() {
            lines.push(l.to_string());
        }
    }
}

#[test]
fn live_tcp_session_fans_out_to_http_subscribers() {
    // collector with a stream sink + combined query/stream HTTP server
    let broker = StreamBroker::new(BrokerConfig {
        ring_capacity: 64,
        max_subscribers: 8,
    });
    let sink: Arc<dyn UpdateSink> = Arc::new(broker.publisher());
    let mut pool =
        DaemonPool::start_with_sink("127.0.0.1:0", DaemonConfig::default(), Some(sink)).unwrap();
    let store = Arc::new(parking_lot::RwLock::new(RouteStore::default()));
    let mut srv = serve_streaming(
        "127.0.0.1:0",
        ServerConfig::default(),
        store,
        None,
        broker.clone(),
    )
    .unwrap();

    // subscribe BEFORE the session sends: zero-subscriber publishes shed
    let mut r = open_stream(srv.local_addr(), "/stream/updates");
    for _ in 0..200 {
        if broker.subscribers() == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(broker.subscribers(), 1);

    // a real BGP session over TCP delivers three announcements
    let peer = pool.local_addr();
    std::thread::spawn(move || {
        let stream = TcpStream::connect(peer).unwrap();
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, 65001).unwrap();
        for i in 0..3u32 {
            let u = UpdateBuilder::announce(VpId::from_asn(Asn(65001)), Prefix::synthetic(i))
                .path([65001, 2, 3])
                .build();
            let wire = UpdateMessage::from_domain(&u).unwrap();
            ms.write_message(&BgpMessage::Update(wire)).unwrap();
        }
        ms.write_message(&BgpMessage::Notification(Notification::cease()))
            .unwrap();
    })
    .join()
    .unwrap();

    // the sink tees post-filter: wait for the publishes to land
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while broker.stats().published < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "published={} ",
            broker.stats().published
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    broker.close();

    let lines = read_chunked_lines(&mut r);
    assert_eq!(lines.len(), 4, "3 updates + eos: {lines:?}");
    let mut seqs = Vec::new();
    for l in &lines[..3] {
        let (seq, payload) = Frame::from_json(l).unwrap();
        match payload {
            FramePayload::Update(u) => {
                assert_eq!(u.vp, VpId::from_asn(Asn(65001)));
                seqs.push(seq);
            }
            other => panic!("expected update, got {other:?}"),
        }
    }
    assert_eq!(seqs, vec![0, 1, 2]);
    let (_, last) = Frame::from_json(&lines[3]).unwrap();
    assert!(matches!(last, FramePayload::Eos { published: 3 }));

    // the collector counted the tee
    let stats = pool.stats();
    let load = |c: &std::sync::atomic::AtomicUsize| c.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(load(&stats.stream_published), 3);
    assert_eq!(load(&stats.stream_shed), 0);
    assert_eq!(load(&stats.stream_subscribers), 1);

    pool.stop();
    srv.stop();
}
