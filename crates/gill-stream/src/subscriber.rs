//! Per-subscriber state: a ring cursor, a server-side filter expression,
//! and an explicit slow-consumer policy.
//!
//! Filtering happens server-side so a subscriber interested in one prefix
//! does not pay for the full firehose on the wire (RIS-Live's `path` /
//! `prefix` subscription parameters). The filter expression reuses the
//! collection side's key types — [`VpId`], [`Prefix`] with
//! [`PrefixTrie`]-backed longest-prefix matching, and origin [`Asn`] — the
//! same attributes GILL's drop rules are keyed on
//! ([`gill_core::DropRule`]).
//!
//! The slow-consumer policy makes overload behaviour *explicit and
//! deterministic*: a stalled client either gets disconnected
//! ([`SlowPolicy::Disconnect`]) or skips forward with a
//! `{"type":"gap","missed":N}` marker ([`SlowPolicy::SkipWithGapMarker`]).
//! Either way the producer never blocks and the ring never wedges.

use crate::frame::{Frame, FramePayload};
use crate::ring::{Poll, Ring};
use bgp_types::{Asn, BgpUpdate, Prefix, PrefixTrie, VpId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do with a subscriber that falls more than a ring's capacity
/// behind the producer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SlowPolicy {
    /// Skip the lost frames and deliver a gap marker stating how many.
    #[default]
    SkipWithGapMarker,
    /// Terminate the subscription (the client must reconnect).
    Disconnect,
}

impl SlowPolicy {
    /// Parses the `policy=` query parameter (`skip` / `disconnect`).
    pub fn parse(s: &str) -> Option<SlowPolicy> {
        match s {
            "skip" | "gap" => Some(SlowPolicy::SkipWithGapMarker),
            "disconnect" | "drop" => Some(SlowPolicy::Disconnect),
            _ => None,
        }
    }
}

/// A server-side filter expression: all present criteria must match
/// (conjunction); an empty expression matches everything.
#[derive(Clone, Debug, Default)]
pub struct StreamFilter {
    /// Deliver only updates observed by this VP.
    pub vp: Option<VpId>,
    /// Deliver only updates whose prefix is covered by one of these
    /// (longest-prefix matching over a [`PrefixTrie`], so `10.0.0.0/8`
    /// subscribes to every more-specific announcement under it).
    prefixes: Option<PrefixTrie<()>>,
    /// Deliver only updates originated by this AS.
    pub origin: Option<Asn>,
}

impl StreamFilter {
    /// The match-everything filter.
    pub fn any() -> StreamFilter {
        StreamFilter::default()
    }

    /// Restricts to one VP.
    pub fn with_vp(mut self, vp: VpId) -> StreamFilter {
        self.vp = Some(vp);
        self
    }

    /// Adds a subscribed prefix (repeatable; any cover matches).
    pub fn with_prefix(mut self, p: Prefix) -> StreamFilter {
        self.prefixes
            .get_or_insert_with(PrefixTrie::new)
            .insert(p, ());
        self
    }

    /// Restricts to one origin AS.
    pub fn with_origin(mut self, asn: Asn) -> StreamFilter {
        self.origin = Some(asn);
        self
    }

    /// Whether the expression has no criteria (firehose subscription).
    pub fn is_any(&self) -> bool {
        self.vp.is_none() && self.prefixes.is_none() && self.origin.is_none()
    }

    /// Whether `u` matches the expression.
    pub fn matches(&self, u: &BgpUpdate) -> bool {
        if let Some(vp) = self.vp {
            if u.vp != vp {
                return false;
            }
        }
        if let Some(trie) = &self.prefixes {
            if trie.longest_match(&u.prefix).is_none() {
                return false;
            }
        }
        if let Some(origin) = self.origin {
            if u.path.origin() != Some(origin) {
                // withdrawals carry no path; an origin subscription still
                // sees withdrawals of prefixes it saw announced? No — the
                // expression is attribute-based and withdrawals have no
                // origin, so they only flow on origin-free subscriptions.
                return false;
            }
        }
        true
    }
}

/// What one subscription poll step yields.
#[derive(Clone, Debug)]
pub enum Delivery {
    /// A frame to forward to the client.
    Frame(Arc<Frame>),
    /// A synthesized gap marker ([`SlowPolicy::SkipWithGapMarker`]).
    Gap(Arc<Frame>),
    /// The subscription fell behind under [`SlowPolicy::Disconnect`];
    /// `missed` frames were lost and the subscription is dead.
    Overrun {
        /// Frames lost at disconnect time.
        missed: u64,
    },
    /// Nothing to deliver yet.
    Pending,
    /// The stream closed and every matching frame has been delivered.
    Closed,
}

/// Counters shared between a subscription and its broker.
#[derive(Debug, Default)]
pub(crate) struct SubscriberShared {
    pub(crate) active: AtomicUsize,
    pub(crate) gaps_emitted: AtomicUsize,
    pub(crate) disconnects: AtomicUsize,
    pub(crate) frames_delivered: AtomicUsize,
    pub(crate) frames_filtered: AtomicUsize,
}

/// A live subscription: owns a cursor over the shared ring.
pub struct Subscription {
    ring: Arc<Ring<Frame>>,
    shared: Arc<SubscriberShared>,
    cursor: u64,
    filter: StreamFilter,
    policy: SlowPolicy,
    dead: bool,
    delivered: u64,
    gaps: u64,
}

impl Subscription {
    pub(crate) fn new(
        ring: Arc<Ring<Frame>>,
        shared: Arc<SubscriberShared>,
        filter: StreamFilter,
        policy: SlowPolicy,
        start: u64,
    ) -> Subscription {
        Subscription {
            ring,
            shared,
            cursor: start,
            filter,
            policy,
            dead: false,
            delivered: 0,
            gaps: 0,
        }
    }

    /// The next sequence number this subscription will look at.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Frames delivered (post-filter) so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Gap markers emitted so far.
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// The subscription's slow-consumer policy.
    pub fn policy(&self) -> SlowPolicy {
        self.policy
    }

    /// One non-blocking poll step.
    pub fn poll_next(&mut self) -> Delivery {
        self.step(|ring, cursor| ring.poll(cursor))
    }

    /// One poll step that blocks up to `timeout` waiting for a frame.
    pub fn next_timeout(&mut self, timeout: Duration) -> Delivery {
        self.step(|ring, cursor| ring.poll_wait(cursor, timeout))
    }

    fn step(&mut self, poll: impl Fn(&Ring<Frame>, u64) -> Poll<Frame>) -> Delivery {
        if self.dead {
            return Delivery::Closed;
        }
        loop {
            match poll(&self.ring, self.cursor) {
                Poll::Frame(f) => {
                    self.cursor += 1;
                    let matched = match &f.payload {
                        FramePayload::Update(u) => self.filter.matches(u),
                        // control frames always flow
                        FramePayload::Gap { .. } | FramePayload::Eos { .. } => true,
                    };
                    if matched {
                        self.delivered += 1;
                        self.shared.frames_delivered.fetch_add(1, Ordering::Relaxed);
                        return Delivery::Frame(f);
                    }
                    self.shared.frames_filtered.fetch_add(1, Ordering::Relaxed);
                    // filtered out: keep scanning without yielding
                }
                Poll::Gap { missed, resume } => {
                    self.cursor = resume;
                    return match self.policy {
                        SlowPolicy::SkipWithGapMarker => {
                            self.gaps += 1;
                            self.shared.gaps_emitted.fetch_add(1, Ordering::Relaxed);
                            Delivery::Gap(Arc::new(Frame::gap(resume, missed)))
                        }
                        SlowPolicy::Disconnect => {
                            self.dead = true;
                            self.shared.disconnects.fetch_add(1, Ordering::Relaxed);
                            Delivery::Overrun { missed }
                        }
                    };
                }
                Poll::Empty => return Delivery::Pending,
                Poll::Closed => {
                    self.dead = true;
                    return Delivery::Closed;
                }
            }
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Timestamp, UpdateBuilder};

    fn upd(vp: u32, pfx: &str, path: &[u32]) -> BgpUpdate {
        UpdateBuilder::announce(VpId::from_asn(Asn(vp)), pfx.parse().unwrap())
            .at(Timestamp::from_millis(1))
            .path(path.iter().copied())
            .build()
    }

    #[test]
    fn filter_criteria_are_conjunctive() {
        let u = upd(65001, "10.1.2.0/24", &[65001, 2, 3]);
        assert!(StreamFilter::any().matches(&u));
        assert!(StreamFilter::any()
            .with_vp(VpId::from_asn(Asn(65001)))
            .matches(&u));
        assert!(!StreamFilter::any()
            .with_vp(VpId::from_asn(Asn(65002)))
            .matches(&u));
        // prefix subscription is cover-based (LPM over the trie)
        let cover = StreamFilter::any().with_prefix("10.0.0.0/8".parse().unwrap());
        assert!(cover.matches(&u));
        let other = StreamFilter::any().with_prefix("192.0.0.0/8".parse().unwrap());
        assert!(!other.matches(&u));
        assert!(StreamFilter::any().with_origin(Asn(3)).matches(&u));
        assert!(!StreamFilter::any().with_origin(Asn(2)).matches(&u));
        // conjunction: right vp, wrong origin
        assert!(!StreamFilter::any()
            .with_vp(VpId::from_asn(Asn(65001)))
            .with_origin(Asn(9))
            .matches(&u));
    }

    fn ring_with(n: u64, cap: usize) -> Arc<Ring<Frame>> {
        let ring = Arc::new(Ring::new(cap));
        for i in 0..n {
            let u = upd(65001, "10.1.0.0/16", &[65001, 2, 3]);
            ring.publish(Arc::new(Frame::update(i, &u)));
        }
        ring
    }

    fn sub(ring: &Arc<Ring<Frame>>, policy: SlowPolicy) -> Subscription {
        let shared = Arc::new(SubscriberShared::default());
        shared.active.fetch_add(1, Ordering::AcqRel);
        Subscription::new(ring.clone(), shared, StreamFilter::any(), policy, 0)
    }

    #[test]
    fn skip_policy_emits_one_gap_then_resumes_in_order() {
        let ring = ring_with(10, 4);
        let mut s = sub(&ring, SlowPolicy::SkipWithGapMarker);
        match s.poll_next() {
            Delivery::Gap(g) => match g.payload {
                FramePayload::Gap { missed } => assert_eq!(missed, 6),
                _ => unreachable!(),
            },
            other => panic!("expected gap, got {other:?}"),
        }
        let mut seqs = Vec::new();
        while let Delivery::Frame(f) = s.poll_next() {
            seqs.push(f.seq);
        }
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(s.gaps(), 1);
        assert_eq!(s.delivered(), 4);
    }

    #[test]
    fn disconnect_policy_kills_the_subscription() {
        let ring = ring_with(10, 4);
        let mut s = sub(&ring, SlowPolicy::Disconnect);
        match s.poll_next() {
            Delivery::Overrun { missed } => assert_eq!(missed, 6),
            other => panic!("expected overrun, got {other:?}"),
        }
        assert!(matches!(s.poll_next(), Delivery::Closed));
    }

    #[test]
    fn filtered_frames_are_skipped_silently() {
        let ring = Arc::new(Ring::new(16));
        for i in 0..6u64 {
            let vp = if i % 2 == 0 { 65001 } else { 65002 };
            ring.publish(Arc::new(Frame::update(
                i,
                &upd(vp, "10.1.0.0/16", &[vp, 2, 3]),
            )));
        }
        let shared = Arc::new(SubscriberShared::default());
        shared.active.fetch_add(1, Ordering::AcqRel);
        let mut s = Subscription::new(
            ring.clone(),
            shared.clone(),
            StreamFilter::any().with_vp(VpId::from_asn(Asn(65002))),
            SlowPolicy::SkipWithGapMarker,
            0,
        );
        let mut seqs = Vec::new();
        while let Delivery::Frame(f) = s.poll_next() {
            seqs.push(f.seq);
        }
        assert_eq!(seqs, vec![1, 3, 5]);
        assert_eq!(shared.frames_filtered.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn closed_ring_drains_then_closes() {
        let ring = ring_with(3, 8);
        ring.close();
        let mut s = sub(&ring, SlowPolicy::SkipWithGapMarker);
        let mut n = 0;
        loop {
            match s.poll_next() {
                Delivery::Frame(_) => n += 1,
                Delivery::Closed => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(n, 3);
    }
}
