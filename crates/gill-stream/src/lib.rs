//! gill-stream: a RIS-Live-style real-time update broker.
//!
//! The paper's platform (§9) serves its archive through query APIs; this
//! crate adds the *live* distribution half — the equivalent of RIPE RIS's
//! RIS-Live firehose — with two properties the collection side demands:
//!
//! * **bounded fan-out cost**: frames are encoded once at publish
//!   ([`frame`]), distribution is a pre-rendered byte copy per subscriber,
//!   and an idle broker (zero subscribers) costs the collector one atomic
//!   load per update;
//! * **deterministic slow-consumer handling**: the sequenced broadcast
//!   [`ring`] never applies backpressure to the producer. A subscriber
//!   that falls more than a ring's capacity behind *loses* frames and
//!   observes the loss explicitly — either as a `{"type":"gap"}` marker or
//!   as a disconnect, per its declared [`SlowPolicy`]. A stalled client
//!   can never wedge the collector.
//!
//! The [`broker`] ties these together and implements the collector's
//! [`gill_collector::daemon::UpdateSink`] so accepted updates tee into the
//! stream strictly after filter-accept; [`serve`] exposes
//! `/stream/updates` and `/stream/stats` on the blocking HTTP server,
//! moving each live connection onto a dedicated streamer thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod frame;
pub mod ring;
pub mod serve;
pub mod subscriber;

pub use broker::{BrokerConfig, BrokerStats, StreamBroker, StreamPublisher, SubscribeError};
pub use frame::{Frame, FramePayload};
pub use ring::{Poll, Ring};
pub use serve::{route_streaming, serve_streaming, stats_response};
pub use subscriber::{Delivery, SlowPolicy, StreamFilter, Subscription};
