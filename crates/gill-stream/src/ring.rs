//! The sequenced broadcast ring.
//!
//! A fixed-capacity slab of [`Arc`]'d frames with monotonically increasing
//! sequence numbers. One producer publishes; any number of reader cursors
//! follow at their own pace and **never block the producer**: a reader that
//! falls more than `capacity` frames behind does not apply backpressure —
//! it *loses* the overwritten frames and observes the loss explicitly as a
//! [`Poll::Gap`]. This is the overshoot-and-discard philosophy applied to
//! distribution: the collector hot path is sacred, slow consumers pay.
//!
//! Readers take a per-slot read lock for the duration of one `Arc` clone;
//! the producer write-locks exactly one slot per publish. Sequence numbers
//! double as validity stamps, so a reader that raced an overwrite detects
//! it (`slot.seq != cursor`) and reports the gap instead of delivering a
//! torn frame.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What one cursor poll observed.
#[derive(Clone, Debug)]
pub enum Poll<T> {
    /// The frame at the cursor; advance the cursor by one.
    Frame(Arc<T>),
    /// The cursor fell behind the ring: `missed` frames were overwritten
    /// before this reader consumed them. Resume from `resume`.
    Gap {
        /// Number of frames irrecoverably lost to this reader.
        missed: u64,
        /// The oldest sequence number still available.
        resume: u64,
    },
    /// Nothing published at or beyond the cursor yet.
    Empty,
    /// The producer closed the ring and the cursor has consumed every
    /// published frame.
    Closed,
}

struct Slot<T> {
    seq: u64,
    frame: Option<Arc<T>>,
}

/// The broadcast ring. `T` is the frame payload (the broker publishes
/// pre-encoded [`crate::frame::Frame`]s so the encode cost is paid once,
/// not per subscriber).
pub struct Ring<T> {
    slots: Box<[RwLock<Slot<T>>]>,
    /// Next sequence number to publish == total frames published.
    head: AtomicU64,
    closed: AtomicBool,
    /// Readers parked waiting for the next publish. The producer only
    /// touches the condvar when this is non-zero, so an all-busy reader
    /// population costs the publish path nothing.
    waiters: AtomicUsize,
    wait_lock: Mutex<()>,
    wait_cv: Condvar,
}

impl<T> Ring<T> {
    /// A ring holding the most recent `capacity` frames (rounded up to 1).
    pub fn new(capacity: usize) -> Ring<T> {
        let cap = capacity.max(1);
        let slots = (0..cap)
            .map(|_| {
                RwLock::new(Slot {
                    seq: u64::MAX,
                    frame: None,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            slots,
            head: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            waiters: AtomicUsize::new(0),
            wait_lock: Mutex::new(()),
            wait_cv: Condvar::new(),
        }
    }

    /// Ring capacity in frames.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total frames published so far (== the next sequence number).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// The oldest sequence number still resident, given the current head.
    pub fn oldest(&self) -> u64 {
        self.head().saturating_sub(self.slots.len() as u64)
    }

    /// Whether [`Ring::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Publishes one frame, returning its sequence number. Single-producer:
    /// callers must serialize publishes (the broker holds a producer lock).
    pub fn publish(&self, frame: Arc<T>) -> u64 {
        let seq = self.head.load(Ordering::Relaxed);
        {
            let mut slot = self.slots[(seq % self.slots.len() as u64) as usize].write();
            slot.seq = seq;
            slot.frame = Some(frame);
        }
        self.head.store(seq + 1, Ordering::Release);
        self.wake_waiters();
        seq
    }

    /// Marks the stream finished. Readers drain what remains, then observe
    /// [`Poll::Closed`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.wake_waiters();
    }

    fn wake_waiters(&self) {
        if self.waiters.load(Ordering::Acquire) > 0 {
            let _guard = self.wait_lock.lock().unwrap();
            self.wait_cv.notify_all();
        }
    }

    /// Non-blocking read of the frame at `cursor`.
    pub fn poll(&self, cursor: u64) -> Poll<T> {
        let head = self.head.load(Ordering::Acquire);
        if cursor >= head {
            return if self.is_closed() {
                Poll::Closed
            } else {
                Poll::Empty
            };
        }
        let oldest = head.saturating_sub(self.slots.len() as u64);
        if cursor < oldest {
            return Poll::Gap {
                missed: oldest - cursor,
                resume: oldest,
            };
        }
        let slot = self.slots[(cursor % self.slots.len() as u64) as usize].read();
        if slot.seq == cursor {
            if let Some(f) = &slot.frame {
                return Poll::Frame(f.clone());
            }
        }
        // The producer lapped us between the head load and the slot read;
        // recompute the loss against the fresh head.
        drop(slot);
        let oldest = self
            .head
            .load(Ordering::Acquire)
            .saturating_sub(self.slots.len() as u64);
        Poll::Gap {
            missed: oldest.saturating_sub(cursor).max(1),
            resume: oldest.max(cursor + 1),
        }
    }

    /// Blocking poll: waits up to `timeout` for a frame at `cursor` before
    /// returning [`Poll::Empty`]. Gap/Closed are returned immediately.
    pub fn poll_wait(&self, cursor: u64, timeout: Duration) -> Poll<T> {
        match self.poll(cursor) {
            Poll::Empty => {}
            other => return other,
        }
        self.waiters.fetch_add(1, Ordering::AcqRel);
        let guard = self.wait_lock.lock().unwrap();
        // Re-check under the lock: a publish may have raced the registration.
        let result = match self.poll(cursor) {
            Poll::Empty => {
                let (_guard, _timeout) = self.wait_cv.wait_timeout(guard, timeout).unwrap();
                self.poll(cursor)
            }
            other => other,
        };
        self.waiters.fetch_sub(1, Ordering::AcqRel);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_publish_and_read() {
        let ring: Ring<u32> = Ring::new(4);
        for i in 0..3 {
            assert_eq!(ring.publish(Arc::new(i)), i as u64);
        }
        for i in 0..3u64 {
            match ring.poll(i) {
                Poll::Frame(f) => assert_eq!(*f, i as u32),
                other => panic!("expected frame at {i}, got {other:?}"),
            }
        }
        assert!(matches!(ring.poll(3), Poll::Empty));
    }

    #[test]
    fn lapped_cursor_reports_exact_gap() {
        let ring: Ring<u32> = Ring::new(4);
        for i in 0..10 {
            ring.publish(Arc::new(i));
        }
        // oldest resident is 10 - 4 = 6
        match ring.poll(0) {
            Poll::Gap { missed, resume } => {
                assert_eq!(missed, 6);
                assert_eq!(resume, 6);
            }
            other => panic!("expected gap, got {other:?}"),
        }
        // resuming at the gap boundary delivers the oldest resident frame
        match ring.poll(6) {
            Poll::Frame(f) => assert_eq!(*f, 6),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_signals() {
        let ring: Ring<u32> = Ring::new(4);
        ring.publish(Arc::new(7));
        ring.close();
        assert!(matches!(ring.poll(0), Poll::Frame(_)));
        assert!(matches!(ring.poll(1), Poll::Closed));
    }

    #[test]
    fn poll_wait_times_out_empty() {
        let ring: Ring<u32> = Ring::new(4);
        let start = std::time::Instant::now();
        assert!(matches!(
            ring.poll_wait(0, Duration::from_millis(30)),
            Poll::Empty
        ));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn poll_wait_wakes_on_publish() {
        let ring: Arc<Ring<u32>> = Arc::new(Ring::new(4));
        let r = ring.clone();
        let t = std::thread::spawn(move || r.poll_wait(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        ring.publish(Arc::new(42));
        match t.join().unwrap() {
            Poll::Frame(f) => assert_eq!(*f, 42),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_readers_never_block_producer() {
        let ring: Arc<Ring<u64>> = Arc::new(Ring::new(64));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let r = ring.clone();
                std::thread::spawn(move || {
                    let mut cursor = 0u64;
                    let mut seen = Vec::new();
                    loop {
                        match r.poll_wait(cursor, Duration::from_millis(200)) {
                            Poll::Frame(f) => {
                                seen.push(*f);
                                cursor += 1;
                            }
                            Poll::Gap { missed, resume } => {
                                seen.push(u64::MAX - missed);
                                cursor = resume;
                            }
                            Poll::Empty | Poll::Closed => break,
                        }
                    }
                    seen
                })
            })
            .collect();
        for i in 0..1000u64 {
            ring.publish(Arc::new(i));
        }
        ring.close();
        for t in readers {
            let seen = t.join().unwrap();
            assert!(!seen.is_empty());
            // delivered values are strictly increasing (ignoring gap marks)
            let vals: Vec<u64> = seen.iter().copied().filter(|v| *v < 1000).collect();
            assert!(vals.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
