//! The streaming HTTP endpoints.
//!
//! * `GET /stream/updates?vp=&prefix=&origin=&policy=&format=&pace_ms=` —
//!   a live chunked-Transfer-Encoding stream of frames. JSON format is one
//!   frame per line (`curl -N` friendly); `format=binary` streams the
//!   length-prefixed framing instead.
//! * `GET /stream/stats` — broker counters as JSON.
//!
//! Everything else falls through to the ordinary looking-glass router
//! ([`gill_query::server::route_with`]), so one server exposes both the
//! query API and the live stream. Streaming connections leave the bounded
//! worker pool via [`Handled::Takeover`] onto dedicated streamer threads:
//! a thousand-update query and a day-long stream must not compete for the
//! same four workers.

use crate::broker::{StreamBroker, SubscribeError};
use crate::subscriber::{Delivery, SlowPolicy, StreamFilter, Subscription};
use bgp_types::{Asn, Prefix};
use gill_core::FilterHandle;
use gill_query::http::{Handled, HttpServer, Request, Response, ServerConfig};
use gill_query::server::parse_vp;
use gill_query::{Json, SharedStore};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long one blocking poll waits before re-checking the stop flag.
const POLL_SLICE: Duration = Duration::from_millis(250);

/// Starts a combined looking-glass + streaming server: `/stream/*` is
/// served from `broker`, everything else from `store` (and `filters`, when
/// given, for `/filters`).
pub fn serve_streaming(
    addr: &str,
    cfg: ServerConfig,
    store: SharedStore,
    filters: Option<Arc<FilterHandle>>,
    broker: StreamBroker,
) -> std::io::Result<HttpServer> {
    HttpServer::start_with(addr, cfg, move |req| {
        route_streaming(req, &broker).unwrap_or_else(|| {
            Handled::Response(gill_query::server::route_with(
                req,
                &store,
                filters.as_deref(),
            ))
        })
    })
}

/// Routes one request against the streaming endpoints. Returns `None` for
/// paths this layer does not own (callers fall through to their own
/// router).
pub fn route_streaming(req: &Request, broker: &StreamBroker) -> Option<Handled> {
    match req.path.as_str() {
        "/stream/updates" => Some(stream_updates(req, broker)),
        "/stream/stats" => Some(Handled::Response(stats_response(broker))),
        _ => None,
    }
}

/// The `/stream/stats` JSON body.
pub fn stats_response(broker: &StreamBroker) -> Response {
    let s = broker.stats();
    let body = Json::obj([
        ("published", Json::U64(s.published as u64)),
        ("shed", Json::U64(s.shed as u64)),
        ("subscribers", Json::U64(s.subscribers as u64)),
        ("max_subscribers", Json::U64(s.max_subscribers as u64)),
        ("ring_capacity", Json::U64(s.ring_capacity as u64)),
        ("gaps_emitted", Json::U64(s.gaps_emitted as u64)),
        ("disconnects", Json::U64(s.disconnects as u64)),
        ("frames_delivered", Json::U64(s.frames_delivered as u64)),
        ("frames_filtered", Json::U64(s.frames_filtered as u64)),
        ("closed", Json::Bool(broker.is_closed())),
    ])
    .encode()
    .expect("stats contain no floats");
    Response::json(body)
}

/// Wire format of one subscription.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StreamFormat {
    /// One JSON frame per line.
    Ndjson,
    /// Length-prefixed binary frames.
    Binary,
}

fn stream_updates(req: &Request, broker: &StreamBroker) -> Handled {
    let mut filter = StreamFilter::any();
    if let Some(v) = req.param("vp") {
        match parse_vp(v) {
            Some(vp) => filter = filter.with_vp(vp),
            None => return bad_request("malformed vp"),
        }
    }
    // prefix is repeatable: any cover matches
    for (k, v) in &req.params {
        if k == "prefix" {
            match v.parse::<Prefix>() {
                Ok(p) => filter = filter.with_prefix(p),
                Err(_) => return bad_request("malformed prefix"),
            }
        }
    }
    if let Some(o) = req.param("origin") {
        let raw = o.strip_prefix("AS").unwrap_or(o);
        match raw.parse::<u32>() {
            Ok(asn) => filter = filter.with_origin(Asn(asn)),
            Err(_) => return bad_request("malformed origin"),
        }
    }
    let policy = match req.param("policy") {
        None => SlowPolicy::default(),
        Some(p) => match SlowPolicy::parse(p) {
            Some(policy) => policy,
            None => return bad_request("policy must be skip or disconnect"),
        },
    };
    let format = match req.param("format") {
        None | Some("json") | Some("ndjson") => StreamFormat::Ndjson,
        Some("binary") => StreamFormat::Binary,
        Some(_) => return bad_request("format must be json or binary"),
    };
    // Server-side delivery throttle (ms per frame). Primarily a test
    // lever: a paced subscriber falls behind *deterministically*, without
    // depending on TCP socket buffer sizes.
    let pace = match req.param("pace_ms") {
        None => None,
        Some(ms) => match ms.parse::<u64>() {
            Ok(ms) if ms > 0 => Some(Duration::from_millis(ms)),
            _ => return bad_request("malformed pace_ms"),
        },
    };
    let sub = match broker.subscribe(filter, policy) {
        Ok(sub) => sub,
        Err(SubscribeError::Full { max }) => {
            return Handled::Response(Response::error(
                503,
                &format!("subscriber limit reached ({max})"),
            ))
        }
        Err(SubscribeError::Closed) => {
            return Handled::Response(Response::error(503, "stream closed"))
        }
    };
    Handled::Takeover(Box::new(move |stream, stop| {
        run_stream(stream, stop, sub, format, pace);
    }))
}

fn bad_request(msg: &str) -> Handled {
    Handled::Response(Response::error(400, msg))
}

/// The streamer-thread loop: chunked response head, then frames until the
/// stream closes, the client vanishes, or the server stops.
fn run_stream(
    mut stream: TcpStream,
    stop: Arc<AtomicBool>,
    mut sub: Subscription,
    format: StreamFormat,
    pace: Option<Duration>,
) {
    // long-lived stream: the per-request read deadline does not apply,
    // but writes must still fail out if the client wedges the socket
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let content_type = match format {
        StreamFormat::Ndjson => "application/x-ndjson",
        StreamFormat::Binary => "application/octet-stream",
    };
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let delivery = sub.next_timeout(POLL_SLICE);
        let frame = match &delivery {
            Delivery::Frame(f) => Some(f.as_ref().clone()),
            Delivery::Gap(g) => Some(g.as_ref().clone()),
            Delivery::Pending => continue,
            // Disconnect policy: terminate without a marker — the missing
            // chunked terminator tells the client the stream died
            Delivery::Overrun { .. } => break,
            Delivery::Closed => {
                // clean end: write the final zero-length chunk
                let _ = stream.write_all(b"0\r\n\r\n");
                break;
            }
        };
        if let Some(f) = frame {
            let payload: Vec<u8> = match format {
                StreamFormat::Ndjson => {
                    let mut line = f.json().as_bytes().to_vec();
                    line.push(b'\n');
                    line
                }
                StreamFormat::Binary => f.binary().to_vec(),
            };
            if write_chunk(&mut stream, &payload).is_err() {
                break; // client went away
            }
            if let Some(d) = pace {
                std::thread::sleep(d);
            }
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn write_chunk(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(payload.len() + 16);
    buf.extend_from_slice(format!("{:x}\r\n", payload.len()).as_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(b"\r\n");
    stream.write_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use crate::frame::FramePayload;
    use bgp_types::{Timestamp, UpdateBuilder, VpId};
    use gill_query::RouteStore;
    use parking_lot::RwLock;
    use std::io::{BufRead, BufReader, Read};

    fn empty_store() -> SharedStore {
        Arc::new(RwLock::new(RouteStore::new(Default::default())))
    }

    fn upd(i: u32) -> bgp_types::BgpUpdate {
        UpdateBuilder::announce(VpId::from_asn(Asn(65001)), Prefix::synthetic(i))
            .at(Timestamp::from_millis(i as u64))
            .path([65001, 2, 3])
            .build()
    }

    /// Connects, requests `target`, returns the reader after the response
    /// head (asserting the head is a chunked 200).
    fn open_stream(addr: std::net::SocketAddr, target: &str) -> BufReader<TcpStream> {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut r = BufReader::new(s);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.starts_with("HTTP/1.1 200"), "got {line:?}");
        loop {
            let mut l = String::new();
            r.read_line(&mut l).unwrap();
            if l == "\r\n" {
                return r;
            }
            if l.to_ascii_lowercase().starts_with("transfer-encoding") {
                assert!(l.to_ascii_lowercase().contains("chunked"));
            }
        }
    }

    /// Reads chunked body lines until the terminating zero chunk.
    fn read_chunked_lines(r: &mut BufReader<TcpStream>) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut size_line = String::new();
            r.read_line(&mut size_line).unwrap();
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
            if size == 0 {
                let mut fin = String::new();
                r.read_line(&mut fin).unwrap();
                return lines;
            }
            let mut payload = vec![0u8; size + 2]; // chunk + trailing CRLF
            r.read_exact(&mut payload).unwrap();
            payload.truncate(size);
            let text = String::from_utf8(payload).unwrap();
            for l in text.lines() {
                lines.push(l.to_string());
            }
        }
    }

    #[test]
    fn streams_frames_over_chunked_http() {
        let broker = StreamBroker::new(BrokerConfig::default());
        let mut srv = serve_streaming(
            "127.0.0.1:0",
            ServerConfig::default(),
            empty_store(),
            None,
            broker.clone(),
        )
        .unwrap();
        let mut r = open_stream(srv.local_addr(), "/stream/updates");
        // wait for the subscriber to attach, then publish and close
        for _ in 0..200 {
            if broker.subscribers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(broker.subscribers(), 1);
        for i in 0..3 {
            assert!(broker.publish(&upd(i)).is_some());
        }
        broker.close();
        let lines = read_chunked_lines(&mut r);
        assert_eq!(lines.len(), 4, "3 updates + eos: {lines:?}");
        for (i, l) in lines.iter().take(3).enumerate() {
            let (seq, payload) = crate::frame::Frame::from_json(l).unwrap();
            assert_eq!(seq, i as u64);
            assert!(matches!(payload, FramePayload::Update(_)));
        }
        let (_, last) = crate::frame::Frame::from_json(&lines[3]).unwrap();
        assert_eq!(last, FramePayload::Eos { published: 3 });
        srv.stop();
    }

    #[test]
    fn stream_stats_and_fallthrough_to_query_api() {
        let broker = StreamBroker::new(BrokerConfig {
            ring_capacity: 32,
            max_subscribers: 7,
        });
        let mut srv = serve_streaming(
            "127.0.0.1:0",
            ServerConfig::default(),
            empty_store(),
            None,
            broker.clone(),
        )
        .unwrap();
        let get = |target: &str| -> (u16, String) {
            let mut s = TcpStream::connect(srv.local_addr()).unwrap();
            write!(
                s,
                "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )
            .unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            let code = buf.split(' ').nth(1).unwrap().parse().unwrap();
            let body = buf.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
            (code, body)
        };
        let (code, body) = get("/stream/stats");
        assert_eq!(code, 200);
        assert!(body.contains("\"max_subscribers\":7"), "{body}");
        assert!(body.contains("\"ring_capacity\":32"), "{body}");
        // non-stream paths reach the looking-glass router
        let (code, body) = get("/health");
        assert_eq!(code, 200, "{body}");
        let (code, _) = get("/definitely-not-an-endpoint");
        assert_eq!(code, 404);
        srv.stop();
    }

    #[test]
    fn subscriber_cap_returns_503_json() {
        let broker = StreamBroker::new(BrokerConfig {
            ring_capacity: 8,
            max_subscribers: 1,
        });
        let mut srv = serve_streaming(
            "127.0.0.1:0",
            ServerConfig::default(),
            empty_store(),
            None,
            broker.clone(),
        )
        .unwrap();
        let _held = open_stream(srv.local_addr(), "/stream/updates");
        for _ in 0..200 {
            if broker.subscribers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        write!(
            s,
            "GET /stream/updates HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 503"), "{buf}");
        assert!(buf.contains("subscriber limit reached (1)"), "{buf}");
        broker.close();
        srv.stop();
    }

    #[test]
    fn bad_stream_params_are_rejected() {
        let broker = StreamBroker::new(BrokerConfig::default());
        let mut srv = serve_streaming(
            "127.0.0.1:0",
            ServerConfig::default(),
            empty_store(),
            None,
            broker.clone(),
        )
        .unwrap();
        for target in [
            "/stream/updates?vp=notanumber",
            "/stream/updates?prefix=999.0.0.0%2F8",
            "/stream/updates?origin=xyz",
            "/stream/updates?policy=whatever",
            "/stream/updates?format=xml",
            "/stream/updates?pace_ms=-3",
        ] {
            let mut s = TcpStream::connect(srv.local_addr()).unwrap();
            write!(
                s,
                "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
            )
            .unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            assert!(buf.starts_with("HTTP/1.1 400"), "{target} -> {buf}");
        }
        assert_eq!(broker.subscribers(), 0);
        srv.stop();
    }

    #[test]
    fn filtered_stream_only_delivers_matches() {
        let broker = StreamBroker::new(BrokerConfig::default());
        let mut srv = serve_streaming(
            "127.0.0.1:0",
            ServerConfig::default(),
            empty_store(),
            None,
            broker.clone(),
        )
        .unwrap();
        // subscribe to one VP only
        let mut r = open_stream(srv.local_addr(), "/stream/updates?vp=65002");
        for _ in 0..200 {
            if broker.subscribers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mk = |asn: u32, i: u32| {
            UpdateBuilder::announce(VpId::from_asn(Asn(asn)), Prefix::synthetic(i))
                .at(Timestamp::from_millis(i as u64))
                .path([asn, 2, 3])
                .build()
        };
        broker.publish(&mk(65001, 0));
        broker.publish(&mk(65002, 1));
        broker.publish(&mk(65001, 2));
        broker.publish(&mk(65002, 3));
        broker.close();
        let lines = read_chunked_lines(&mut r);
        // 2 matching updates + eos
        assert_eq!(lines.len(), 3, "{lines:?}");
        for l in &lines[..2] {
            assert!(l.contains("\"vp\":\"65002\""), "{l}");
        }
        srv.stop();
    }
}
