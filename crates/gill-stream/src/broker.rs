//! The broker: owns the ring, admits subscribers up to a configured cap,
//! and hands the collector a [`StreamPublisher`] implementing
//! [`gill_collector::daemon::UpdateSink`] so accepted updates tee into the
//! live stream without the collector crate depending on this one.

use crate::frame::Frame;
use crate::ring::Ring;
use crate::subscriber::{SlowPolicy, StreamFilter, SubscriberShared, Subscription};
use bgp_types::BgpUpdate;
use gill_collector::daemon::UpdateSink;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Broker construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct BrokerConfig {
    /// Frames retained for laggards before they observe a gap.
    pub ring_capacity: usize,
    /// Concurrent subscription cap; further subscribes get
    /// [`SubscribeError::Full`] (the HTTP layer maps it to 503).
    pub max_subscribers: usize,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            ring_capacity: 4096,
            max_subscribers: 256,
        }
    }
}

/// Why a subscription was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubscribeError {
    /// The broker is at its `max_subscribers` cap.
    Full {
        /// The configured cap.
        max: usize,
    },
    /// The broker's stream has already closed.
    Closed,
}

struct Inner {
    ring: Arc<Ring<Frame>>,
    shared: Arc<SubscriberShared>,
    max_subscribers: usize,
    /// Serializes producers: the ring itself is single-producer.
    producer: Mutex<()>,
    published: AtomicUsize,
    shed: AtomicUsize,
}

/// A handle to the live update broker. Cheap to clone.
#[derive(Clone)]
pub struct StreamBroker {
    inner: Arc<Inner>,
}

/// Point-in-time broker counters (served at `/stream/stats`).
#[derive(Clone, Copy, Debug, Default)]
pub struct BrokerStats {
    /// Frames published into the ring.
    pub published: usize,
    /// Updates offered while no subscriber was attached (not encoded).
    pub shed: usize,
    /// Live subscriptions.
    pub subscribers: usize,
    /// Gap markers emitted across all subscriptions, ever.
    pub gaps_emitted: usize,
    /// Subscriptions killed by [`SlowPolicy::Disconnect`] overruns.
    pub disconnects: usize,
    /// Frames delivered post-filter across all subscriptions.
    pub frames_delivered: usize,
    /// Frames suppressed by server-side filters.
    pub frames_filtered: usize,
    /// Ring capacity in frames.
    pub ring_capacity: usize,
    /// Subscription cap.
    pub max_subscribers: usize,
}

impl StreamBroker {
    /// A broker with the given ring capacity and subscriber cap.
    pub fn new(cfg: BrokerConfig) -> StreamBroker {
        StreamBroker {
            inner: Arc::new(Inner {
                ring: Arc::new(Ring::new(cfg.ring_capacity)),
                shared: Arc::new(SubscriberShared::default()),
                max_subscribers: cfg.max_subscribers.max(1),
                producer: Mutex::new(()),
                published: AtomicUsize::new(0),
                shed: AtomicUsize::new(0),
            }),
        }
    }

    /// Current live subscription count.
    pub fn subscribers(&self) -> usize {
        self.inner.shared.active.load(Ordering::Acquire)
    }

    /// Whether the stream has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.ring.is_closed()
    }

    /// Attaches a new subscription starting at the *current* head (live
    /// tail semantics: subscribers see updates published after they join).
    pub fn subscribe(
        &self,
        filter: StreamFilter,
        policy: SlowPolicy,
    ) -> Result<Subscription, SubscribeError> {
        if self.inner.ring.is_closed() {
            return Err(SubscribeError::Closed);
        }
        // Optimistic admission: bump, then back out if we overshot the cap.
        let prev = self.inner.shared.active.fetch_add(1, Ordering::AcqRel);
        if prev >= self.inner.max_subscribers {
            self.inner.shared.active.fetch_sub(1, Ordering::AcqRel);
            return Err(SubscribeError::Full {
                max: self.inner.max_subscribers,
            });
        }
        Ok(Subscription::new(
            self.inner.ring.clone(),
            self.inner.shared.clone(),
            filter,
            policy,
            self.inner.ring.head(),
        ))
    }

    /// Publishes one update as a pre-encoded frame. Returns its sequence
    /// number, or `None` if it was shed (no subscribers attached — the
    /// encode cost is skipped entirely).
    pub fn publish(&self, update: &BgpUpdate) -> Option<u64> {
        if self.subscribers() == 0 {
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let guard = self.inner.producer.lock();
        let seq = self.inner.ring.head();
        let frame = Arc::new(Frame::update(seq, update));
        let seq = self.inner.ring.publish(frame);
        drop(guard);
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        Some(seq)
    }

    /// Publishes unconditionally (used by replay/bench drivers that want
    /// frames in the ring regardless of subscriber count).
    pub fn publish_always(&self, update: &BgpUpdate) -> u64 {
        let guard = self.inner.producer.lock();
        let seq = self.inner.ring.head();
        let frame = Arc::new(Frame::update(seq, update));
        let seq = self.inner.ring.publish(frame);
        drop(guard);
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        seq
    }

    /// Closes the stream: publishes a final end-of-stream frame and marks
    /// the ring closed so subscribers drain and terminate.
    pub fn close(&self) {
        let guard = self.inner.producer.lock();
        if !self.inner.ring.is_closed() {
            let published = self.inner.ring.head();
            self.inner.ring.publish(Arc::new(Frame::eos(published)));
            self.inner.ring.close();
        }
        drop(guard);
    }

    /// Snapshot of the broker counters.
    pub fn stats(&self) -> BrokerStats {
        let s = &self.inner.shared;
        BrokerStats {
            published: self.inner.published.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            subscribers: s.active.load(Ordering::Acquire),
            gaps_emitted: s.gaps_emitted.load(Ordering::Relaxed),
            disconnects: s.disconnects.load(Ordering::Relaxed),
            frames_delivered: s.frames_delivered.load(Ordering::Relaxed),
            frames_filtered: s.frames_filtered.load(Ordering::Relaxed),
            ring_capacity: self.inner.ring.capacity(),
            max_subscribers: self.inner.max_subscribers,
        }
    }

    /// A collector-facing publisher handle (see [`UpdateSink`]).
    pub fn publisher(&self) -> StreamPublisher {
        StreamPublisher {
            broker: self.clone(),
        }
    }
}

/// The collector-side tee: implements [`UpdateSink`] so
/// `gill-collector` can publish accepted updates without depending on
/// this crate.
#[derive(Clone)]
pub struct StreamPublisher {
    broker: StreamBroker,
}

impl StreamPublisher {
    /// The broker this publisher feeds.
    pub fn broker(&self) -> &StreamBroker {
        &self.broker
    }
}

impl UpdateSink for StreamPublisher {
    fn offer(&self, update: &BgpUpdate) -> bool {
        self.broker.publish(update).is_some()
    }

    fn subscribers(&self) -> usize {
        self.broker.subscribers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscriber::Delivery;
    use bgp_types::{Asn, Timestamp, UpdateBuilder, VpId};

    fn upd(i: u64) -> BgpUpdate {
        UpdateBuilder::announce(
            VpId::from_asn(Asn(65001)),
            bgp_types::Prefix::synthetic(i as u32),
        )
        .at(Timestamp::from_millis(i))
        .path([65001, 2, 3])
        .build()
    }

    #[test]
    fn subscriber_cap_yields_full() {
        let broker = StreamBroker::new(BrokerConfig {
            ring_capacity: 8,
            max_subscribers: 2,
        });
        let a = broker.subscribe(StreamFilter::any(), SlowPolicy::default());
        let b = broker.subscribe(StreamFilter::any(), SlowPolicy::default());
        assert!(a.is_ok() && b.is_ok());
        match broker.subscribe(StreamFilter::any(), SlowPolicy::default()) {
            Err(SubscribeError::Full { max }) => assert_eq!(max, 2),
            other => panic!("expected Full, got {:?}", other.err()),
        }
        drop(a);
        assert!(broker
            .subscribe(StreamFilter::any(), SlowPolicy::default())
            .is_ok());
    }

    #[test]
    fn publish_sheds_with_no_subscribers() {
        let broker = StreamBroker::new(BrokerConfig::default());
        assert_eq!(broker.publish(&upd(0)), None);
        let _s = broker
            .subscribe(StreamFilter::any(), SlowPolicy::default())
            .unwrap();
        assert_eq!(broker.publish(&upd(1)), Some(0));
        let stats = broker.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.published, 1);
    }

    #[test]
    fn close_delivers_eos_then_terminates() {
        let broker = StreamBroker::new(BrokerConfig::default());
        let mut s = broker
            .subscribe(StreamFilter::any(), SlowPolicy::default())
            .unwrap();
        broker.publish(&upd(0));
        broker.close();
        assert!(broker
            .subscribe(StreamFilter::any(), SlowPolicy::default())
            .is_err());
        let mut kinds = Vec::new();
        loop {
            match s.poll_next() {
                Delivery::Frame(f) => kinds.push(match f.payload {
                    crate::frame::FramePayload::Update(_) => "update",
                    crate::frame::FramePayload::Gap { .. } => "gap",
                    crate::frame::FramePayload::Eos { .. } => "eos",
                }),
                Delivery::Closed => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(kinds, vec!["update", "eos"]);
    }

    #[test]
    fn late_subscriber_starts_at_live_head() {
        let broker = StreamBroker::new(BrokerConfig::default());
        let _early = broker
            .subscribe(StreamFilter::any(), SlowPolicy::default())
            .unwrap();
        for i in 0..5 {
            broker.publish(&upd(i));
        }
        let mut late = broker
            .subscribe(StreamFilter::any(), SlowPolicy::default())
            .unwrap();
        assert!(matches!(late.poll_next(), Delivery::Pending));
        broker.publish(&upd(5));
        match late.poll_next() {
            Delivery::Frame(f) => assert_eq!(f.seq, 5),
            other => panic!("expected frame, got {other:?}"),
        }
    }
}
