//! Wire format of the stream: RIS-Live-shaped JSON messages and a
//! length-prefixed binary framing for machine consumers.
//!
//! A [`Frame`] is encoded **once**, at publish time, in both formats; the
//! fan-out layer then writes the pre-rendered bytes to every subscriber.
//! Three frame types exist on the wire:
//!
//! ```text
//! {"type":"update","seq":7,"vp":"65001","time":1000,"prefix":"10.0.0.0/24",
//!  "kind":"announce","path":[65001,2,3],"communities":["65001:100"]}
//! {"type":"gap","missed":12}
//! {"type":"eos","published":50000}
//! ```
//!
//! `update` carries the observable attributes of a stored update (§4.2's
//! `u(v,t,p,L,C)`; the derived withdrawn sets are downstream state and are
//! not streamed). Routes from RFC 7911 ADD-PATH sessions add a `path_id`
//! field — omitted entirely on classic routes, so pre-ADD-PATH consumers
//! see byte-identical JSON. `gap` is synthesized per subscriber by the
//! slow-consumer policy; `eos` ends a replayed stream. The binary framing
//! is `u32_be length ‖ payload` with a one-byte magic/version/kind header —
//! see [`Frame::encode_binary`] / [`Frame::decode_binary`].

use bgp_types::{AsPath, Asn, BgpUpdate, Community, Prefix, Timestamp, UpdateKind, VpId};
use gill_query::Json;
use std::collections::BTreeSet;

/// Binary frame magic byte (`'G'`).
pub const MAGIC: u8 = b'G';
/// Binary framing version.
pub const VERSION: u8 = 1;

/// What a frame carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramePayload {
    /// A post-filter accepted update.
    Update(BgpUpdate),
    /// `missed` frames were lost to this subscriber (slow-consumer skip).
    Gap {
        /// Frames overwritten before the subscriber consumed them.
        missed: u64,
    },
    /// End of a replayed stream; `published` is the total frame count.
    Eos {
        /// Frames published before the stream closed.
        published: u64,
    },
}

/// One stream frame: a sequence number, the payload, and both wire
/// renderings (pre-encoded so fan-out is a byte copy per subscriber).
#[derive(Clone, Debug)]
pub struct Frame {
    /// Sequence number (`update` frames: the ring sequence; `gap`/`eos`
    /// frames: the cursor position they were synthesized at).
    pub seq: u64,
    /// The decoded payload.
    pub payload: FramePayload,
    json: String,
    binary: Vec<u8>,
}

/// Renders a VP id in the query-parameter form `65001` / `65001#2`
/// ([`gill_query::server::parse_vp`] accepts it back).
fn vp_str(vp: VpId) -> String {
    if vp.router == 0 {
        format!("{}", vp.asn.value())
    } else {
        format!("{}#{}", vp.asn.value(), vp.router)
    }
}

impl Frame {
    /// Builds (and pre-encodes) an update frame.
    pub fn update(seq: u64, u: &BgpUpdate) -> Frame {
        let payload = FramePayload::Update(u.clone());
        let json = payload_json(seq, &payload)
            .encode()
            .expect("update frames contain no non-finite floats");
        let binary = encode_binary_payload(seq, &payload);
        Frame {
            seq,
            payload,
            json,
            binary,
        }
    }

    /// Builds a gap marker frame (synthesized per subscriber).
    pub fn gap(at: u64, missed: u64) -> Frame {
        let payload = FramePayload::Gap { missed };
        let json = payload_json(at, &payload).encode().expect("gap is static");
        let binary = encode_binary_payload(at, &payload);
        Frame {
            seq: at,
            payload,
            json,
            binary,
        }
    }

    /// Builds an end-of-stream frame.
    pub fn eos(published: u64) -> Frame {
        let payload = FramePayload::Eos { published };
        let json = payload_json(published, &payload)
            .encode()
            .expect("eos is static");
        let binary = encode_binary_payload(published, &payload);
        Frame {
            seq: published,
            payload,
            json,
            binary,
        }
    }

    /// The RIS-Live-shaped JSON rendering (no trailing newline).
    pub fn json(&self) -> &str {
        &self.json
    }

    /// The length-prefixed binary rendering.
    pub fn binary(&self) -> &[u8] {
        &self.binary
    }

    /// Encodes the binary framing: `u32_be length ‖ payload`.
    pub fn encode_binary(&self) -> Vec<u8> {
        self.binary.clone()
    }

    /// Decodes one binary frame from the front of `buf`. Returns the frame
    /// and the number of bytes consumed; `Ok(None)` means `buf` does not
    /// yet hold a complete frame.
    pub fn decode_binary(buf: &[u8]) -> Result<Option<(Frame, usize)>, String> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let p = &buf[4..4 + len];
        let mut r = Reader { buf: p, off: 0 };
        if r.u8()? != MAGIC {
            return Err("bad magic".into());
        }
        if r.u8()? != VERSION {
            return Err("unsupported version".into());
        }
        let kind = r.u8()?;
        let seq = r.u64()?;
        let payload = match kind {
            0 => {
                let asn = Asn(r.u32()?);
                let router = r.u16()?;
                let time = Timestamp::from_millis(r.u64()?);
                let upd_kind = match r.u8()? {
                    0 => UpdateKind::Announce,
                    1 => UpdateKind::Withdraw,
                    k => return Err(format!("bad update kind {k}")),
                };
                // flags byte: bit 0 = v6 prefix, bit 1 = ADD-PATH id
                // present (classic v4 frames keep their historic 0/1 byte)
                let flags = r.u8()?;
                if flags & !0b11 != 0 {
                    return Err(format!("bad prefix flags {flags:#x}"));
                }
                let v6 = flags & 1 != 0;
                let plen = r.u8()?;
                let bits = r.u128()?;
                let prefix = prefix_from_parts(bits, plen, v6)?;
                let n_hops = r.u16()? as usize;
                let mut hops = Vec::with_capacity(n_hops);
                for _ in 0..n_hops {
                    hops.push(r.u32()?);
                }
                let n_comms = r.u16()? as usize;
                let mut communities = BTreeSet::new();
                for _ in 0..n_comms {
                    communities.insert(Community(r.u32()?));
                }
                let path_id = if flags & 2 != 0 { Some(r.u32()?) } else { None };
                FramePayload::Update(BgpUpdate {
                    vp: VpId::new(asn, router),
                    time,
                    prefix,
                    path_id,
                    kind: upd_kind,
                    path: AsPath::from_u32s(hops),
                    communities,
                    withdrawn_links: BTreeSet::new(),
                    withdrawn_communities: BTreeSet::new(),
                })
            }
            1 => FramePayload::Gap { missed: r.u64()? },
            2 => FramePayload::Eos {
                published: r.u64()?,
            },
            k => return Err(format!("bad frame kind {k}")),
        };
        if r.off != p.len() {
            return Err(format!("{} trailing bytes", p.len() - r.off));
        }
        let frame = match &payload {
            FramePayload::Update(u) => Frame::update(seq, u),
            FramePayload::Gap { missed } => Frame::gap(seq, *missed),
            FramePayload::Eos { published } => Frame::eos(*published),
        };
        Ok(Some((frame, 4 + len)))
    }

    /// Parses a JSON frame line back into its payload (strict: unknown
    /// `type` values and malformed shapes are errors, matching the strict
    /// encoder on the way out).
    pub fn from_json(text: &str) -> Result<(u64, FramePayload), String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let obj = as_obj(&v)?;
        let ty = get_str(obj, "type")?;
        match ty {
            "update" => {
                let seq = get_u64(obj, "seq")?;
                let vp = gill_query::server::parse_vp(get_str(obj, "vp")?)
                    .ok_or_else(|| "bad vp".to_string())?;
                let time = Timestamp::from_millis(get_u64(obj, "time")?);
                let prefix: Prefix = get_str(obj, "prefix")?
                    .parse()
                    .map_err(|e| format!("bad prefix: {e}"))?;
                let kind = match get_str(obj, "kind")? {
                    "announce" => UpdateKind::Announce,
                    "withdraw" => UpdateKind::Withdraw,
                    other => return Err(format!("bad kind {other:?}")),
                };
                let path_id = match obj.iter().find(|(k, _)| k == "path_id") {
                    None => None,
                    Some((_, Json::U64(n))) if *n <= u32::MAX as u64 => Some(*n as u32),
                    Some(_) => return Err("bad path_id".into()),
                };
                let path = match get(obj, "path")? {
                    Json::Arr(items) => {
                        let mut hops = Vec::with_capacity(items.len());
                        for item in items {
                            match item {
                                Json::U64(n) => hops.push(*n as u32),
                                _ => return Err("non-integer path hop".into()),
                            }
                        }
                        AsPath::from_u32s(hops)
                    }
                    _ => return Err("path is not an array".into()),
                };
                let mut communities = BTreeSet::new();
                match get(obj, "communities")? {
                    Json::Arr(items) => {
                        for item in items {
                            match item {
                                Json::Str(s) => {
                                    communities.insert(
                                        s.parse::<Community>()
                                            .map_err(|e| format!("bad community: {e}"))?,
                                    );
                                }
                                _ => return Err("non-string community".into()),
                            }
                        }
                    }
                    _ => return Err("communities is not an array".into()),
                }
                Ok((
                    seq,
                    FramePayload::Update(BgpUpdate {
                        vp,
                        time,
                        prefix,
                        path_id,
                        kind,
                        path,
                        communities,
                        withdrawn_links: BTreeSet::new(),
                        withdrawn_communities: BTreeSet::new(),
                    }),
                ))
            }
            "gap" => Ok((
                0,
                FramePayload::Gap {
                    missed: get_u64(obj, "missed")?,
                },
            )),
            "eos" => Ok((
                0,
                FramePayload::Eos {
                    published: get_u64(obj, "published")?,
                },
            )),
            other => Err(format!("unknown frame type {other:?}")),
        }
    }
}

fn payload_json(seq: u64, p: &FramePayload) -> Json {
    match p {
        FramePayload::Update(u) => {
            let mut pairs = vec![
                ("type", Json::str("update")),
                ("seq", Json::U64(seq)),
                ("vp", Json::str(vp_str(u.vp))),
                ("time", Json::U64(u.time.as_millis())),
                ("prefix", Json::str(u.prefix.to_string())),
            ];
            // present only on ADD-PATH routes so classic frames stay
            // byte-identical to the pre-RFC7911 stream format
            if let Some(id) = u.path_id {
                pairs.push(("path_id", Json::U64(id as u64)));
            }
            pairs.extend([
                (
                    "kind",
                    Json::str(match u.kind {
                        UpdateKind::Announce => "announce",
                        UpdateKind::Withdraw => "withdraw",
                    }),
                ),
                (
                    "path",
                    Json::Arr(
                        u.path
                            .hops()
                            .iter()
                            .map(|a| Json::U64(a.value() as u64))
                            .collect(),
                    ),
                ),
                (
                    "communities",
                    Json::Arr(
                        u.communities
                            .iter()
                            .map(|c| Json::str(c.to_string()))
                            .collect(),
                    ),
                ),
            ]);
            Json::obj(pairs)
        }
        FramePayload::Gap { missed } => {
            Json::obj([("type", Json::str("gap")), ("missed", Json::U64(*missed))])
        }
        FramePayload::Eos { published } => Json::obj([
            ("type", Json::str("eos")),
            ("published", Json::U64(*published)),
        ]),
    }
}

fn prefix_from_parts(bits: u128, len: u8, v6: bool) -> Result<Prefix, String> {
    if v6 {
        if len > 128 {
            return Err(format!("bad v6 prefix length {len}"));
        }
        Ok(Prefix::v6(std::net::Ipv6Addr::from(bits), len))
    } else {
        if len > 32 || bits > u32::MAX as u128 {
            return Err("bad v4 prefix".into());
        }
        Ok(Prefix::v4(std::net::Ipv4Addr::from(bits as u32), len))
    }
}

fn encode_binary_payload(seq: u64, p: &FramePayload) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.push(MAGIC);
    body.push(VERSION);
    match p {
        FramePayload::Update(u) => {
            body.push(0);
            body.extend_from_slice(&seq.to_be_bytes());
            body.extend_from_slice(&u.vp.asn.value().to_be_bytes());
            body.extend_from_slice(&u.vp.router.to_be_bytes());
            body.extend_from_slice(&u.time.as_millis().to_be_bytes());
            body.push(match u.kind {
                UpdateKind::Announce => 0,
                UpdateKind::Withdraw => 1,
            });
            let (bits, len, v6) = prefix_parts(&u.prefix);
            let mut flags = v6 as u8;
            if u.path_id.is_some() {
                flags |= 2;
            }
            body.push(flags);
            body.push(len);
            body.extend_from_slice(&bits.to_be_bytes());
            let hops = u.path.hops();
            body.extend_from_slice(&(hops.len() as u16).to_be_bytes());
            for h in hops {
                body.extend_from_slice(&h.value().to_be_bytes());
            }
            body.extend_from_slice(&(u.communities.len() as u16).to_be_bytes());
            for c in &u.communities {
                body.extend_from_slice(&c.0.to_be_bytes());
            }
            if let Some(id) = u.path_id {
                body.extend_from_slice(&id.to_be_bytes());
            }
        }
        FramePayload::Gap { missed } => {
            body.push(1);
            body.extend_from_slice(&seq.to_be_bytes());
            body.extend_from_slice(&missed.to_be_bytes());
        }
        FramePayload::Eos { published } => {
            body.push(2);
            body.extend_from_slice(&seq.to_be_bytes());
            body.extend_from_slice(&published.to_be_bytes());
        }
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

fn prefix_parts(p: &Prefix) -> (u128, u8, bool) {
    match p.addr() {
        std::net::IpAddr::V4(a) => (u32::from(a) as u128, p.len(), false),
        std::net::IpAddr::V6(a) => (u128::from(a), p.len(), true),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.off + n > self.buf.len() {
            return Err("truncated frame".into());
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }
}

fn as_obj(v: &Json) -> Result<&[(String, Json)], String> {
    match v {
        Json::Obj(pairs) => Ok(pairs),
        _ => Err("frame is not an object".into()),
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a str, String> {
    match get(obj, key)? {
        Json::Str(s) => Ok(s),
        _ => Err(format!("field {key:?} is not a string")),
    }
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        Json::U64(n) => Ok(*n),
        _ => Err(format!("field {key:?} is not an unsigned integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::UpdateBuilder;

    fn sample() -> BgpUpdate {
        UpdateBuilder::announce(VpId::new(Asn(65001), 2), "10.1.0.0/16".parse().unwrap())
            .at(Timestamp::from_millis(1234))
            .path([65001, 2, 3])
            .community(65001, 100)
            .build()
    }

    #[test]
    fn golden_update_json() {
        let f = Frame::update(7, &sample());
        assert_eq!(
            f.json(),
            "{\"type\":\"update\",\"seq\":7,\"vp\":\"65001#2\",\"time\":1234,\
             \"prefix\":\"10.1.0.0/16\",\"kind\":\"announce\",\"path\":[65001,2,3],\
             \"communities\":[\"65001:100\"]}"
        );
    }

    #[test]
    fn add_path_v6_frames_roundtrip_both_formats() {
        let u = UpdateBuilder::announce(
            VpId::from_asn(Asn(65001)),
            "2001:db8:7::/48".parse().unwrap(),
        )
        .at(Timestamp::from_millis(99))
        .path([65001, 8])
        .path_id(42)
        .build();
        let f = Frame::update(3, &u);
        // JSON carries path_id and parses back exactly
        assert!(f.json().contains("\"path_id\":42"), "{}", f.json());
        let (seq, payload) = Frame::from_json(f.json()).unwrap();
        assert_eq!(seq, 3);
        assert_eq!(payload, FramePayload::Update(u.clone()));
        // binary framing roundtrips too
        let (g, used) = Frame::decode_binary(&f.encode_binary()).unwrap().unwrap();
        assert_eq!(used, f.encode_binary().len());
        assert_eq!(g.payload, FramePayload::Update(u));
    }

    #[test]
    fn classic_frames_omit_path_id() {
        let f = Frame::update(7, &sample());
        assert!(!f.json().contains("path_id"), "{}", f.json());
        // binary flags byte stays the historic 0/1 value
        let bytes = f.encode_binary();
        // header: len(4) magic version kind seq(8) asn(4) router(2)
        // time(8) upd_kind(1) → flags at offset 4+3+8+4+2+8+1
        assert_eq!(bytes[4 + 3 + 8 + 4 + 2 + 8 + 1], 0);
    }

    #[test]
    fn golden_gap_and_eos_json() {
        assert_eq!(Frame::gap(3, 12).json(), "{\"type\":\"gap\",\"missed\":12}");
        assert_eq!(Frame::eos(50).json(), "{\"type\":\"eos\",\"published\":50}");
    }

    #[test]
    fn binary_roundtrip_update() {
        let f = Frame::update(9, &sample());
        let bytes = f.encode_binary();
        let (g, used) = Frame::decode_binary(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(g.seq, 9);
        assert_eq!(g.payload, f.payload);
        // re-encoding is byte-identical (codec is canonical)
        assert_eq!(g.encode_binary(), bytes);
    }

    #[test]
    fn binary_roundtrip_gap_eos() {
        for f in [Frame::gap(5, 99), Frame::eos(123)] {
            let bytes = f.encode_binary();
            let (g, used) = Frame::decode_binary(&bytes).unwrap().unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(g.payload, f.payload);
        }
    }

    #[test]
    fn binary_decode_is_incremental_and_strict() {
        let f = Frame::update(0, &sample());
        let bytes = f.encode_binary();
        // every strict prefix is "incomplete", not an error
        for cut in 0..bytes.len() {
            assert!(Frame::decode_binary(&bytes[..cut]).unwrap().is_none());
        }
        // corrupting the magic is an error
        let mut bad = bytes.clone();
        bad[4] ^= 0xff;
        assert!(Frame::decode_binary(&bad).is_err());
        // two frames back to back decode one at a time
        let mut two = bytes.clone();
        two.extend_from_slice(&Frame::gap(1, 3).encode_binary());
        let (first, used) = Frame::decode_binary(&two).unwrap().unwrap();
        assert!(matches!(first.payload, FramePayload::Update(_)));
        let (second, _) = Frame::decode_binary(&two[used..]).unwrap().unwrap();
        assert!(matches!(second.payload, FramePayload::Gap { missed: 3 }));
    }

    #[test]
    fn json_parses_back_to_same_fields() {
        let u = sample();
        let f = Frame::update(4, &u);
        let (seq, payload) = Frame::from_json(f.json()).unwrap();
        assert_eq!(seq, 4);
        assert_eq!(payload, FramePayload::Update(u));
        let (_, gap) = Frame::from_json(Frame::gap(0, 7).json()).unwrap();
        assert_eq!(gap, FramePayload::Gap { missed: 7 });
    }

    #[test]
    fn withdraw_frames_roundtrip() {
        let u = UpdateBuilder::withdraw(VpId::from_asn(Asn(65009)), "10.2.0.0/24".parse().unwrap())
            .at(Timestamp::from_millis(5))
            .build();
        let f = Frame::update(1, &u);
        let (g, _) = Frame::decode_binary(&f.encode_binary()).unwrap().unwrap();
        assert_eq!(g.payload, FramePayload::Update(u.clone()));
        let (_, p) = Frame::from_json(f.json()).unwrap();
        assert_eq!(p, FramePayload::Update(u));
    }
}
