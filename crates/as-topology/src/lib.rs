//! AS-level topology substrate for the GILL reproduction.
//!
//! The paper runs its controlled experiments (§3, §11) on two kinds of
//! topologies:
//!
//! 1. a **pruned known AS topology** derived from CAIDA's AS-relationship
//!    dataset, leaf-pruned to 6k (or 1k) ASes, and
//! 2. **artificial topologies** from the Hyperbolic Graph Generator with a
//!    power-law degree distribution (exponent 2.1) and average degree 6.1,
//!    with Tier-1s fully meshed, levels assigned by distance from the
//!    Tier-1 clique, p2p between same-level ASes and c2p otherwise.
//!
//! CAIDA's dataset cannot ship with this repository, so
//! [`TopologyBuilder::caida_like`] grows a statistically matched synthetic
//! graph (preferential attachment, explicit hierarchy) and supports the same
//! leaf pruning; [`TopologyBuilder::artificial`] implements a Chung–Lu
//! construction matching the Hyperbolic Graph Generator's two published
//! parameters (degree exponent 2.1, average degree 6.1). See DESIGN.md for
//! why these substitutions preserve the paper's behaviour.
//!
//! The crate also provides the AS categories of Table 5
//! ([`categories::AsCategory`]), customer cones (§12, [`cone`]), and the
//! weighted graph features of Table 6 ([`features`]) used by anchor-VP
//! selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod categories;
pub mod cone;
pub mod features;
pub mod graph;

pub use builder::TopologyBuilder;
pub use categories::AsCategory;
pub use cone::customer_cone_sizes;
pub use features::WeightedDigraph;
pub use graph::{Relationship, TopoLink, Topology};
