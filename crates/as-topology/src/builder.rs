//! Topology generation (§3: "Used AS topologies").

use crate::graph::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Which generation recipe to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    /// Chung–Lu power-law graph matching the Hyperbolic Graph Generator's
    /// published parameters (degree exponent, average degree).
    Artificial,
    /// Preferential-attachment growth with extra peering, the stand-in for
    /// CAIDA's inferred AS topology; supports leaf pruning like §3.
    CaidaLike,
}

/// Builder for the experiment topologies of §3 and §11.
///
/// ```
/// use as_topology::TopologyBuilder;
///
/// let topo = TopologyBuilder::artificial(500, 42).build();
/// assert_eq!(topo.num_ases(), 500);
/// assert!(topo.is_connected());
/// ```
#[derive(Clone, Debug)]
pub struct TopologyBuilder {
    kind: Kind,
    n: usize,
    seed: u64,
    avg_degree: f64,
    exponent: f64,
    prune_to: Option<usize>,
    tier1_count: usize,
}

impl TopologyBuilder {
    /// An artificial topology with `n` ASes (power law exponent 2.1, average
    /// degree 6.1 — the paper's parameters), deterministic in `seed`.
    pub fn artificial(n: usize, seed: u64) -> Self {
        TopologyBuilder {
            kind: Kind::Artificial,
            n,
            seed,
            avg_degree: 6.1,
            exponent: 2.1,
            prune_to: None,
            tier1_count: 3,
        }
    }

    /// A CAIDA-like topology grown to `n` ASes by preferential attachment
    /// (prune with [`TopologyBuilder::prune_to`] to mimic §3's leaf
    /// pruning).
    pub fn caida_like(n: usize, seed: u64) -> Self {
        TopologyBuilder {
            kind: Kind::CaidaLike,
            n,
            seed,
            avg_degree: 6.1,
            exponent: 2.1,
            prune_to: None,
            tier1_count: 3,
        }
    }

    /// Overrides the target average degree (default 6.1).
    pub fn avg_degree(mut self, d: f64) -> Self {
        self.avg_degree = d;
        self
    }

    /// Overrides the power-law exponent (default 2.1).
    pub fn exponent(mut self, g: f64) -> Self {
        self.exponent = g;
        self
    }

    /// Number of fully meshed Tier-1 ASes (default 3, per §3).
    pub fn tier1_count(mut self, k: usize) -> Self {
        self.tier1_count = k.max(1);
        self
    }

    /// Iteratively removes leaf (degree-1, then lowest-degree stub) nodes
    /// until `target` ASes remain, like §3's pruning of the CAIDA graph.
    pub fn prune_to(mut self, target: usize) -> Self {
        self.prune_to = Some(target);
        self
    }

    /// Generates the topology.
    pub fn build(self) -> Topology {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut edges = match self.kind {
            Kind::Artificial => chung_lu_edges(self.n, self.exponent, self.avg_degree, &mut rng),
            Kind::CaidaLike => preferential_edges(self.n, self.avg_degree, &mut rng),
        };
        let mut n = self.n;
        connect_components(n, &mut edges, &mut rng);
        if let Some(target) = self.prune_to {
            let (pruned_edges, new_n) = prune_leaves(n, edges, target);
            edges = pruned_edges;
            n = new_n;
            connect_components(n, &mut edges, &mut rng);
        }
        assemble(n, edges, self.tier1_count)
    }
}

/// Chung–Lu: node `i` gets weight `~ (i + i0)^(-1/(γ-1))`, scaled so the mean
/// weight equals the target average degree; each pair is linked with
/// probability `w_i w_j / S` (capped at 1).
fn chung_lu_edges(
    n: usize,
    gamma: f64,
    avg_degree: f64,
    rng: &mut SmallRng,
) -> BTreeSet<(u32, u32)> {
    assert!(n >= 4, "need at least 4 ASes");
    let alpha = 1.0 / (gamma - 1.0);
    let i0 = 1.0;
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();
    let mean: f64 = w.iter().sum::<f64>() / n as f64;
    let scale = avg_degree / mean;
    for wi in &mut w {
        *wi *= scale;
    }
    let s: f64 = w.iter().sum();
    let cap = s.sqrt();
    for wi in &mut w {
        if *wi > cap {
            *wi = cap;
        }
    }
    let mut edges = BTreeSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let p = (w[i] * w[j] / s).min(1.0);
            if rng.gen::<f64>() < p {
                edges.insert((i as u32, j as u32));
            }
        }
    }
    edges
}

/// Preferential attachment with a heavy-tailed per-node stub count plus a
/// sprinkle of extra lateral (peering-flavoured) edges. Produces the broad
/// degree distribution and dense core of inferred AS graphs.
fn preferential_edges(n: usize, avg_degree: f64, rng: &mut SmallRng) -> BTreeSet<(u32, u32)> {
    assert!(n >= 4, "need at least 4 ASes");
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    // Degree-weighted endpoint pool; seeded with a small clique.
    let mut pool: Vec<u32> = Vec::with_capacity(n * 4);
    let seed_core = 4.min(n);
    for i in 0..seed_core as u32 {
        for j in (i + 1)..seed_core as u32 {
            edges.insert((i, j));
            pool.push(i);
            pool.push(j);
        }
    }
    // Each newcomer attaches with m edges, m heavy-tailed in {1, 2, 3, 5}.
    for v in seed_core as u32..n as u32 {
        let r: f64 = rng.gen();
        let m = if r < 0.55 {
            1
        } else if r < 0.85 {
            2
        } else if r < 0.97 {
            3
        } else {
            5
        };
        let mut attached = BTreeSet::new();
        let mut guard = 0;
        while attached.len() < m && guard < 50 {
            guard += 1;
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v && attached.insert(t) {
                edges.insert(key(v, t));
                pool.push(t);
                pool.push(v);
            }
        }
        if attached.is_empty() {
            // always connect the newcomer somewhere
            let t = v - 1;
            edges.insert(key(v, t));
            pool.push(t);
            pool.push(v);
        }
    }
    // Lateral edges up to the degree budget (models IXP-style peering).
    let target_edges = (n as f64 * avg_degree / 2.0) as usize;
    let mut guard = 0;
    while edges.len() < target_edges && guard < target_edges * 20 {
        guard += 1;
        let a = pool[rng.gen_range(0..pool.len())];
        let b = rng.gen_range(0..n as u32);
        if a != b {
            edges.insert(key(a, b));
        }
    }
    edges
}

#[inline]
fn key(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Joins all connected components to the largest one by linking each
/// component's highest-degree node to a high-degree node of the giant.
fn connect_components(n: usize, edges: &mut BTreeSet<(u32, u32)>, rng: &mut SmallRng) {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges.iter() {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    let mut comp = vec![u32::MAX; n];
    let mut comps: Vec<Vec<u32>> = Vec::new();
    for start in 0..n as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        let id = comps.len() as u32;
        let mut nodes = vec![start];
        comp[start as usize] = id;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for &v in &adj[u as usize] {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = id;
                    nodes.push(v);
                    stack.push(v);
                }
            }
        }
        comps.push(nodes);
    }
    if comps.len() <= 1 {
        return;
    }
    let giant = comps
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.len())
        .map(|(i, _)| i)
        .unwrap();
    // Candidates inside the giant, degree-weighted via repeated sampling.
    let giant_nodes = comps[giant].clone();
    for (i, nodes) in comps.iter().enumerate() {
        if i == giant {
            continue;
        }
        let best = *nodes
            .iter()
            .max_by_key(|&&u| adj[u as usize].len())
            .unwrap();
        // pick the higher-degree of two random giant nodes
        let g1 = giant_nodes[rng.gen_range(0..giant_nodes.len())];
        let g2 = giant_nodes[rng.gen_range(0..giant_nodes.len())];
        let g = if adj[g1 as usize].len() >= adj[g2 as usize].len() {
            g1
        } else {
            g2
        };
        edges.insert(key(best, g));
    }
}

/// Iteratively removes leaves (degree ≤ 1), then lowest-degree nodes, until
/// `target` nodes remain; compacts indices. Returns the new edge set and
/// node count.
fn prune_leaves(
    n: usize,
    edges: BTreeSet<(u32, u32)>,
    target: usize,
) -> (BTreeSet<(u32, u32)>, usize) {
    if target >= n {
        return (edges, n);
    }
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for &(a, b) in &edges {
        adj[a as usize].insert(b);
        adj[b as usize].insert(a);
    }
    let mut alive = vec![true; n];
    let mut alive_count = n;
    while alive_count > target {
        // pick the minimum-degree alive node (leaves first)
        let u = (0..n)
            .filter(|&u| alive[u])
            .min_by_key(|&u| adj[u].len())
            .unwrap();
        alive[u] = false;
        alive_count -= 1;
        let neighbors: Vec<u32> = adj[u].iter().copied().collect();
        for v in neighbors {
            adj[v as usize].remove(&(u as u32));
        }
        adj[u].clear();
    }
    // compact indices
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n {
        if alive[u] {
            remap[u] = next;
            next += 1;
        }
    }
    let mut out = BTreeSet::new();
    for (u, nbrs) in adj.iter().enumerate() {
        if !alive[u] {
            continue;
        }
        for &v in nbrs {
            if alive[v as usize] {
                out.insert(key(remap[u], remap[v as usize]));
            }
        }
    }
    (out, alive_count)
}

/// Turns an undirected edge set into a relationship-annotated [`Topology`]:
/// the `tier1_count` highest-degree nodes become a fully meshed Tier-1
/// clique; levels are BFS distance from the clique; same-level links are
/// p2p, cross-level links are c2p with the lower level as provider (§3).
fn assemble(n: usize, mut edges: BTreeSet<(u32, u32)>, tier1_count: usize) -> Topology {
    let mut degree = vec![0usize; n];
    for &(a, b) in &edges {
        degree[a as usize] += 1;
        degree[b as usize] += 1;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(degree[u as usize]));
    let tier1: Vec<u32> = order.iter().take(tier1_count.min(n)).copied().collect();
    for (i, &a) in tier1.iter().enumerate() {
        for &b in tier1.iter().skip(i + 1) {
            edges.insert(key(a, b));
        }
    }
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    // BFS levels from the Tier-1 set.
    let mut levels = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for &t in &tier1 {
        levels[t as usize] = 0;
        queue.push_back(t);
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if levels[v as usize] == u8::MAX {
                levels[v as usize] = levels[u as usize].saturating_add(1);
                queue.push_back(v);
            }
        }
    }
    // Disconnected leftovers (shouldn't happen after connect_components):
    for l in levels.iter_mut() {
        if *l == u8::MAX {
            *l = 1;
        }
    }
    let mut providers = vec![Vec::new(); n];
    let mut customers = vec![Vec::new(); n];
    let mut peers = vec![Vec::new(); n];
    for &(a, b) in &edges {
        let (la, lb) = (levels[a as usize], levels[b as usize]);
        match la.cmp(&lb) {
            std::cmp::Ordering::Equal => {
                peers[a as usize].push(b);
                peers[b as usize].push(a);
            }
            std::cmp::Ordering::Less => {
                // a is closer to the core: a provides transit to b
                providers[b as usize].push(a);
                customers[a as usize].push(b);
            }
            std::cmp::Ordering::Greater => {
                providers[a as usize].push(b);
                customers[b as usize].push(a);
            }
        }
    }
    for lists in [&mut providers, &mut customers, &mut peers] {
        for l in lists.iter_mut() {
            l.sort_unstable();
        }
    }
    Topology::from_parts(providers, customers, peers, levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artificial_matches_target_shape() {
        let t = TopologyBuilder::artificial(2000, 1).build();
        assert_eq!(t.num_ases(), 2000);
        assert!(t.is_connected());
        t.validate().unwrap();
        let d = t.avg_degree();
        assert!(
            (4.0..9.0).contains(&d),
            "avg degree {d} too far from 6.1 target"
        );
    }

    #[test]
    fn artificial_is_deterministic_in_seed() {
        let a = TopologyBuilder::artificial(300, 9).build();
        let b = TopologyBuilder::artificial(300, 9).build();
        assert_eq!(a.links().len(), b.links().len());
        assert_eq!(a.links(), b.links());
        let c = TopologyBuilder::artificial(300, 10).build();
        assert_ne!(a.links(), c.links());
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let t = TopologyBuilder::artificial(3000, 3).build();
        let mut degrees: Vec<usize> = (0..t.num_ases() as u32).map(|u| t.degree(u)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // A power-law-ish graph has a hub much larger than the median.
        let median = degrees[degrees.len() / 2];
        assert!(
            degrees[0] >= median * 10,
            "max degree {} vs median {median} — not heavy-tailed",
            degrees[0]
        );
        // and most nodes are small-degree
        let small = degrees.iter().filter(|&&d| d <= 3).count();
        assert!(small * 2 > degrees.len(), "small-degree fraction too low");
    }

    #[test]
    fn tier1_clique_is_meshed_at_level_zero() {
        let t = TopologyBuilder::artificial(500, 5).build();
        let tier1: Vec<u32> = (0..t.num_ases() as u32)
            .filter(|&u| t.level(u) == 0)
            .collect();
        assert_eq!(tier1.len(), 3);
        for (i, &a) in tier1.iter().enumerate() {
            for &b in tier1.iter().skip(i + 1) {
                assert!(t.peers(a).contains(&b), "tier1 {a},{b} not peered");
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let t = TopologyBuilder::artificial(800, 6).build();
        for u in 0..t.num_ases() as u32 {
            if t.level(u) > 0 {
                assert!(
                    !t.providers(u).is_empty(),
                    "node {u} at level {} has no provider",
                    t.level(u)
                );
            }
        }
    }

    #[test]
    fn c2p_spans_one_level_p2p_same_level() {
        let t = TopologyBuilder::artificial(600, 7).build();
        for l in t.links() {
            match l.rel {
                crate::Relationship::P2p => assert_eq!(t.level(l.a), t.level(l.b)),
                crate::Relationship::C2p => {
                    assert_eq!(t.level(l.a), t.level(l.b) + 1, "c2p must span one level")
                }
            }
        }
    }

    #[test]
    fn caida_like_prunes_to_target() {
        let t = TopologyBuilder::caida_like(1200, 2).prune_to(600).build();
        assert_eq!(t.num_ases(), 600);
        assert!(t.is_connected());
        t.validate().unwrap();
        // Pruning removes leaves, raising the average degree.
        assert!(t.avg_degree() > 3.0);
    }

    #[test]
    fn caida_like_without_pruning() {
        let t = TopologyBuilder::caida_like(1000, 4).build();
        assert_eq!(t.num_ases(), 1000);
        assert!(t.is_connected());
        t.validate().unwrap();
    }

    #[test]
    fn custom_tier1_count() {
        let t = TopologyBuilder::artificial(400, 8).tier1_count(5).build();
        let tier1 = (0..t.num_ases() as u32)
            .filter(|&u| t.level(u) == 0)
            .count();
        assert_eq!(tier1, 5);
    }
}
