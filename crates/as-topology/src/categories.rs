//! AS categories (Table 5, §18.1).
//!
//! Anchor-VP selection stratifies its event sample across five AS
//! categories so core and edge ASes are equally represented. An AS matching
//! several definitions is classified in the category with the highest ID —
//! exactly the paper's rule.

use crate::cone::customer_cone_sizes;
use crate::Topology;
use std::fmt;

/// The five AS categories of Table 5, ordered by ID (1–5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AsCategory {
    /// ID 1 — AS without customers.
    Stub,
    /// ID 2 — transit AS with a customer cone smaller than the average.
    Transit1,
    /// ID 3 — transit AS not in Transit-1.
    Transit2,
    /// ID 4 — hypergiant (top 15 by degree, following \[10\]).
    Hypergiant,
    /// ID 5 — Tier-1 (fully meshed clique at the core).
    Tier1,
}

impl AsCategory {
    /// The numeric ID (1–5) used by the tie-break rule.
    pub fn id(self) -> u8 {
        match self {
            AsCategory::Stub => 1,
            AsCategory::Transit1 => 2,
            AsCategory::Transit2 => 3,
            AsCategory::Hypergiant => 4,
            AsCategory::Tier1 => 5,
        }
    }

    /// All categories in ID order.
    pub const ALL: [AsCategory; 5] = [
        AsCategory::Stub,
        AsCategory::Transit1,
        AsCategory::Transit2,
        AsCategory::Hypergiant,
        AsCategory::Tier1,
    ];
}

impl fmt::Display for AsCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AsCategory::Stub => "Stub",
            AsCategory::Transit1 => "Transit-1",
            AsCategory::Transit2 => "Transit-2",
            AsCategory::Hypergiant => "Hypergiant",
            AsCategory::Tier1 => "Tier-1",
        };
        f.write_str(s)
    }
}

/// Number of hypergiants (Table 5 uses the top 15 of \[10\]).
pub const HYPERGIANT_COUNT: usize = 15;

/// Classifies every AS of `topo` into its Table-5 category.
///
/// * Tier-1: level-0 clique members (highest priority).
/// * Hypergiant: top-[`HYPERGIANT_COUNT`] by degree (excluding Tier-1s by
///   the higher-ID rule).
/// * Transit-2: transit AS with customer cone ≥ average cone of transit ASes.
/// * Transit-1: any other transit AS.
/// * Stub: no customers.
pub fn classify(topo: &Topology) -> Vec<AsCategory> {
    let n = topo.num_ases();
    let cones = customer_cone_sizes(topo);
    // Average cone size over transit ASes (the "average" that splits
    // Transit-1 from Transit-2).
    let transit: Vec<u32> = (0..n as u32).filter(|&u| topo.is_transit(u)).collect();
    let avg_cone = if transit.is_empty() {
        0.0
    } else {
        transit
            .iter()
            .map(|&u| cones[u as usize] as f64)
            .sum::<f64>()
            / transit.len() as f64
    };
    // Hypergiants: top-k by degree.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(topo.degree(u)));
    let mut is_hyper = vec![false; n];
    for &u in by_degree.iter().take(HYPERGIANT_COUNT.min(n)) {
        is_hyper[u as usize] = true;
    }
    (0..n as u32)
        .map(|u| {
            if topo.level(u) == 0 {
                AsCategory::Tier1
            } else if is_hyper[u as usize] {
                AsCategory::Hypergiant
            } else if topo.is_transit(u) {
                if (cones[u as usize] as f64) < avg_cone {
                    AsCategory::Transit1
                } else {
                    AsCategory::Transit2
                }
            } else {
                AsCategory::Stub
            }
        })
        .collect()
}

/// Per-category census: `(category, count, avg_degree)` rows of Table 5.
pub fn census(topo: &Topology) -> Vec<(AsCategory, usize, f64)> {
    let cats = classify(topo);
    AsCategory::ALL
        .iter()
        .map(|&cat| {
            let members: Vec<u32> = (0..topo.num_ases() as u32)
                .filter(|&u| cats[u as usize] == cat)
                .collect();
            let avg_deg = if members.is_empty() {
                0.0
            } else {
                members.iter().map(|&u| topo.degree(u) as f64).sum::<f64>() / members.len() as f64
            };
            (cat, members.len(), avg_deg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn classification_covers_all_ases_once() {
        let t = TopologyBuilder::artificial(1000, 21).build();
        let cats = classify(&t);
        assert_eq!(cats.len(), 1000);
        let total: usize = census(&t).iter().map(|&(_, c, _)| c).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn tier1_wins_over_hypergiant() {
        let t = TopologyBuilder::artificial(1000, 22).build();
        let cats = classify(&t);
        for u in 0..t.num_ases() as u32 {
            if t.level(u) == 0 {
                assert_eq!(cats[u as usize], AsCategory::Tier1);
            }
        }
        // Tier-1s are the top-degree nodes, so they'd all be hypergiants
        // without the priority rule; verify hypergiants exist separately.
        let hypers = cats
            .iter()
            .filter(|&&c| c == AsCategory::Hypergiant)
            .count();
        assert!(hypers > 0 && hypers <= HYPERGIANT_COUNT);
    }

    #[test]
    fn stubs_are_stub_category() {
        let t = TopologyBuilder::artificial(1000, 23).build();
        let cats = classify(&t);
        for u in t.stubs() {
            let c = cats[u as usize];
            // a stub can still be a hypergiant by degree (many peers);
            // otherwise it must be Stub
            assert!(
                c == AsCategory::Stub || c == AsCategory::Hypergiant,
                "stub {u} classified {c}"
            );
        }
    }

    #[test]
    fn census_degrees_increase_with_id() {
        // Table 5: higher-ID categories have higher average degree.
        let t = TopologyBuilder::artificial(3000, 24).build();
        let rows = census(&t);
        let stub = rows[0].2;
        let tier1 = rows[4].2;
        assert!(
            tier1 > stub * 5.0,
            "tier1 avg degree {tier1} vs stub {stub}: hierarchy broken"
        );
    }

    #[test]
    fn transit_split_uses_average_cone() {
        let t = TopologyBuilder::artificial(2000, 25).build();
        let cats = classify(&t);
        let cones = customer_cone_sizes(&t);
        let t1_max: Option<usize> = (0..t.num_ases())
            .filter(|&u| cats[u] == AsCategory::Transit1)
            .map(|u| cones[u])
            .max();
        let t2_min: Option<usize> = (0..t.num_ases())
            .filter(|&u| cats[u] == AsCategory::Transit2)
            .map(|u| cones[u])
            .min();
        if let (Some(a), Some(b)) = (t1_max, t2_min) {
            assert!(
                a <= b + 1 || a < b * 2,
                "transit split incoherent: {a} vs {b}"
            );
        }
    }
}
