//! The AS topology graph with business relationships.

use bgp_types::{Asn, VpId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Business relationship carried by one inter-AS link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Relationship {
    /// Customer-to-provider: the customer pays the provider for transit.
    C2p,
    /// Settlement-free peering.
    P2p,
}

/// One undirected inter-AS link with its relationship.
///
/// For [`Relationship::C2p`], `a` is the **customer** and `b` the
/// **provider**; for [`Relationship::P2p`], `a < b` canonically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TopoLink {
    /// Customer (c2p) or lower-numbered endpoint (p2p).
    pub a: u32,
    /// Provider (c2p) or higher-numbered endpoint (p2p).
    pub b: u32,
    /// Link relationship.
    pub rel: Relationship,
}

/// An immutable AS-level topology annotated with Gao–Rexford relationships.
///
/// ASes are dense node indices `0..n`; [`Topology::asn`] maps an index to
/// its ASN (`index + 1`). Adjacency is stored three ways per node —
/// providers, customers, peers — which is exactly the shape the Gao–Rexford
/// export rules need.
#[derive(Clone)]
pub struct Topology {
    providers: Vec<Vec<u32>>,
    customers: Vec<Vec<u32>>,
    peers: Vec<Vec<u32>>,
    /// Hierarchy level: 0 for Tier-1, `k` = distance from the Tier-1 clique.
    levels: Vec<u8>,
}

impl Topology {
    /// Assembles a topology from per-node adjacency lists and levels.
    ///
    /// Panics if the lists disagree in length or reference out-of-range
    /// nodes; use [`crate::TopologyBuilder`] for generation.
    pub fn from_parts(
        providers: Vec<Vec<u32>>,
        customers: Vec<Vec<u32>>,
        peers: Vec<Vec<u32>>,
        levels: Vec<u8>,
    ) -> Self {
        let n = providers.len();
        assert_eq!(customers.len(), n);
        assert_eq!(peers.len(), n);
        assert_eq!(levels.len(), n);
        for lists in [&providers, &customers, &peers] {
            for l in lists.iter() {
                for &x in l {
                    assert!((x as usize) < n, "node {x} out of range (n = {n})");
                }
            }
        }
        Topology {
            providers,
            customers,
            peers,
            levels,
        }
    }

    /// Number of ASes.
    #[inline]
    pub fn num_ases(&self) -> usize {
        self.providers.len()
    }

    /// ASN of node `idx` (dense index → ASN `idx + 1`; ASN 0 is reserved).
    #[inline]
    pub fn asn(&self, idx: u32) -> Asn {
        Asn(idx + 1)
    }

    /// Node index of `asn`, if in range.
    #[inline]
    pub fn index_of(&self, asn: Asn) -> Option<u32> {
        let v = asn.value();
        if v >= 1 && (v as usize) <= self.num_ases() {
            Some(v - 1)
        } else {
            None
        }
    }

    /// Providers of node `u`.
    #[inline]
    pub fn providers(&self, u: u32) -> &[u32] {
        &self.providers[u as usize]
    }

    /// Customers of node `u`.
    #[inline]
    pub fn customers(&self, u: u32) -> &[u32] {
        &self.customers[u as usize]
    }

    /// Peers of node `u`.
    #[inline]
    pub fn peers(&self, u: u32) -> &[u32] {
        &self.peers[u as usize]
    }

    /// Total degree of node `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        let u = u as usize;
        self.providers[u].len() + self.customers[u].len() + self.peers[u].len()
    }

    /// Hierarchy level (0 = Tier-1).
    #[inline]
    pub fn level(&self, u: u32) -> u8 {
        self.levels[u as usize]
    }

    /// Whether `u` is a transit AS (has at least one customer).
    #[inline]
    pub fn is_transit(&self, u: u32) -> bool {
        !self.customers[u as usize].is_empty()
    }

    /// All links, each reported once in canonical orientation.
    pub fn links(&self) -> Vec<TopoLink> {
        let mut out = Vec::new();
        for u in 0..self.num_ases() as u32 {
            for &p in self.providers(u) {
                out.push(TopoLink {
                    a: u,
                    b: p,
                    rel: Relationship::C2p,
                });
            }
            for &q in self.peers(u) {
                if u < q {
                    out.push(TopoLink {
                        a: u,
                        b: q,
                        rel: Relationship::P2p,
                    });
                }
            }
        }
        out
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        let c2p: usize = self.providers.iter().map(Vec::len).sum();
        let p2p: usize = self.peers.iter().map(Vec::len).sum();
        c2p + p2p / 2
    }

    /// Average node degree (the Beta-index proxy the paper matches to 6.1).
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.num_links() as f64 / self.num_ases() as f64
    }

    /// The relationship between `u` and `v` from `u`'s point of view, if
    /// they are adjacent: `Some(C2p)` if `v` is `u`'s provider, `Some(P2p)`
    /// if peer; providers of `u`'s customers report `None` here — query from
    /// the other side or use [`Topology::customers`].
    pub fn relationship_toward(&self, u: u32, v: u32) -> Option<Relationship> {
        if self.providers(u).contains(&v) {
            Some(Relationship::C2p)
        } else if self.peers(u).contains(&v) {
            Some(Relationship::P2p)
        } else {
            None
        }
    }

    /// Whether nodes `u` and `v` are adjacent (any relationship).
    pub fn adjacent(&self, u: u32, v: u32) -> bool {
        self.providers(u).contains(&v)
            || self.customers(u).contains(&v)
            || self.peers(u).contains(&v)
    }

    /// Selects `fraction` of the ASes uniformly at random to host a VP
    /// (deterministic in `seed`), returning at least one VP.
    pub fn pick_vps(&self, fraction: f64, seed: u64) -> Vec<VpId> {
        let n = self.num_ases();
        let count = ((n as f64 * fraction).round() as usize).clamp(1, n);
        self.pick_n_vps(count, seed)
    }

    /// Selects exactly `count` VP-hosting ASes uniformly at random.
    pub fn pick_n_vps(&self, count: usize, seed: u64) -> Vec<VpId> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut idx: Vec<u32> = (0..self.num_ases() as u32).collect();
        idx.shuffle(&mut rng);
        idx.truncate(count.min(idx.len()));
        idx.sort_unstable();
        idx.into_iter()
            .map(|i| VpId::from_asn(self.asn(i)))
            .collect()
    }

    /// Stub ASes (no customers).
    pub fn stubs(&self) -> Vec<u32> {
        (0..self.num_ases() as u32)
            .filter(|&u| !self.is_transit(u))
            .collect()
    }

    /// Checks internal consistency: symmetric adjacency, no duplicate or
    /// self links, providers at a strictly lower level than customers never
    /// enforced (levels are advisory) but provider/customer lists must
    /// mirror each other. Used by tests and the builder.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_ases() as u32;
        for u in 0..n {
            for &p in self.providers(u) {
                if p == u {
                    return Err(format!("self provider link at {u}"));
                }
                if !self.customers(p).contains(&u) {
                    return Err(format!("provider {p} of {u} missing mirror customer entry"));
                }
            }
            for &c in self.customers(u) {
                if !self.providers(c).contains(&u) {
                    return Err(format!("customer {c} of {u} missing mirror provider entry"));
                }
            }
            for &q in self.peers(u) {
                if q == u {
                    return Err(format!("self peer link at {u}"));
                }
                if !self.peers(q).contains(&u) {
                    return Err(format!("peer {q} of {u} not symmetric"));
                }
            }
            let mut all: Vec<u32> = self
                .providers(u)
                .iter()
                .chain(self.customers(u))
                .chain(self.peers(u))
                .copied()
                .collect();
            all.sort_unstable();
            let len = all.len();
            all.dedup();
            if all.len() != len {
                return Err(format!("duplicate adjacency at {u}"));
            }
        }
        Ok(())
    }

    /// Whether the underlying undirected graph is connected.
    pub fn is_connected(&self) -> bool {
        let n = self.num_ases();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self
                .providers(u)
                .iter()
                .chain(self.customers(u))
                .chain(self.peers(u))
            {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("ases", &self.num_ases())
            .field("links", &self.num_links())
            .field("avg_degree", &self.avg_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 7-AS topology of the paper's Fig. 5:
    /// c2p arrows: 1->3 provider? In the figure: 1 and 3 are providers at the
    /// top. We encode: 2->1 (c2p), 4->1, 4->3, 2's peer... For testing we
    /// just need a small consistent graph:
    ///   providers: 4 -> {1, 3}; 2 -> {1}; 5 -> {3}; 6 -> {2}; 7 -> {5}
    ///   peers: (2,4), (5,6), (6,7)
    pub(crate) fn fig5_like() -> Topology {
        let n = 7;
        let mut providers = vec![Vec::new(); n];
        let mut customers = vec![Vec::new(); n];
        let mut peers = vec![Vec::new(); n];
        let c2p = |c: u32, p: u32, providers: &mut Vec<Vec<u32>>, customers: &mut Vec<Vec<u32>>| {
            providers[c as usize].push(p);
            customers[p as usize].push(c);
        };
        // indices are asn-1
        c2p(3, 0, &mut providers, &mut customers); // 4 -> 1
        c2p(3, 2, &mut providers, &mut customers); // 4 -> 3
        c2p(1, 0, &mut providers, &mut customers); // 2 -> 1
        c2p(4, 2, &mut providers, &mut customers); // 5 -> 3
        c2p(5, 1, &mut providers, &mut customers); // 6 -> 2
        c2p(6, 4, &mut providers, &mut customers); // 7 -> 5
        let p2p = |a: u32, b: u32, peers: &mut Vec<Vec<u32>>| {
            peers[a as usize].push(b);
            peers[b as usize].push(a);
        };
        p2p(1, 3, &mut peers); // 2 -- 4
        p2p(4, 5, &mut peers); // 5 -- 6
        p2p(5, 6, &mut peers); // 6 -- 7
        p2p(0, 2, &mut peers); // 1 -- 3 (tier-1 mesh)
        let levels = vec![0, 1, 0, 1, 1, 2, 2];
        Topology::from_parts(providers, customers, peers, levels)
    }

    #[test]
    fn fig5_is_valid_and_connected() {
        let t = fig5_like();
        t.validate().unwrap();
        assert!(t.is_connected());
        assert_eq!(t.num_ases(), 7);
        assert_eq!(t.num_links(), 10);
    }

    #[test]
    fn link_enumeration_is_canonical_and_complete() {
        let t = fig5_like();
        let links = t.links();
        assert_eq!(links.len(), t.num_links());
        let c2p = links.iter().filter(|l| l.rel == Relationship::C2p).count();
        let p2p = links.iter().filter(|l| l.rel == Relationship::P2p).count();
        assert_eq!(c2p, 6);
        assert_eq!(p2p, 4);
        for l in &links {
            if l.rel == Relationship::P2p {
                assert!(l.a < l.b);
            } else {
                assert!(t.providers(l.a).contains(&l.b));
            }
        }
    }

    #[test]
    fn asn_index_mapping() {
        let t = fig5_like();
        assert_eq!(t.asn(0), Asn(1));
        assert_eq!(t.index_of(Asn(7)), Some(6));
        assert_eq!(t.index_of(Asn(8)), None);
        assert_eq!(t.index_of(Asn(0)), None);
    }

    #[test]
    fn relationship_queries() {
        let t = fig5_like();
        assert_eq!(t.relationship_toward(3, 0), Some(Relationship::C2p)); // 4's provider 1
        assert_eq!(t.relationship_toward(1, 3), Some(Relationship::P2p)); // 2 -- 4
        assert_eq!(t.relationship_toward(0, 3), None); // 1 is provider of 4, not customer
        assert!(t.adjacent(0, 3));
        assert!(!t.adjacent(0, 6));
    }

    #[test]
    fn stubs_have_no_customers() {
        let t = fig5_like();
        let stubs = t.stubs();
        for s in &stubs {
            assert!(!t.is_transit(*s));
        }
        // ASes 4 (idx 3), 6 (idx 5), 7 (idx 6) have no customers.
        assert_eq!(stubs, vec![3, 5, 6]);
    }

    #[test]
    fn pick_vps_is_deterministic_and_bounded() {
        let t = fig5_like();
        let a = t.pick_vps(0.5, 1);
        let b = t.pick_vps(0.5, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4); // round(3.5)
        let all = t.pick_vps(1.0, 2);
        assert_eq!(all.len(), 7);
        let one = t.pick_vps(0.0, 3);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn validate_catches_asymmetric_peering() {
        let mut peers = vec![Vec::new(); 2];
        peers[0].push(1); // not mirrored
        let t = Topology::from_parts(vec![Vec::new(); 2], vec![Vec::new(); 2], peers, vec![0, 0]);
        assert!(t.validate().is_err());
    }
}
