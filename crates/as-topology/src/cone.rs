//! Customer cones (§12: ASRank / Customer Cone Size).
//!
//! The customer cone of an AS is the set of ASes reachable by following
//! customer links downward (including the AS itself) — the set of networks
//! it can reach for free. CAIDA's ASRank ranks ASes by Customer Cone Size
//! (CCS); §12 replicates that computation on GILL-sampled data.

use crate::Topology;

/// A fixed-size bitset over node indices.
#[derive(Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }
    #[inline]
    fn set(&mut self, i: u32) {
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }
    #[inline]
    fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Computes the customer cone size of every AS in `topo` (cone includes the
/// AS itself, so stubs have CCS 1).
///
/// The provider→customer graph is acyclic by construction (providers sit at
/// a strictly lower hierarchy level), so cones are computed bottom-up in
/// reverse topological order with bitset unions — O(V·E/64).
pub fn customer_cone_sizes(topo: &Topology) -> Vec<usize> {
    let n = topo.num_ases();
    // Order nodes by decreasing level: customers (higher level) first.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(topo.level(u)));
    let mut cones: Vec<Option<BitSet>> = vec![None; n];
    let mut sizes = vec![0usize; n];
    for &u in &order {
        let mut bs = BitSet::new(n);
        bs.set(u);
        for &c in topo.customers(u) {
            if let Some(cc) = &cones[c as usize] {
                bs.union_with(cc);
            } else {
                // level ties cannot happen on c2p links, but be safe:
                bs.set(c);
            }
        }
        sizes[u as usize] = bs.count();
        cones[u as usize] = Some(bs);
    }
    sizes
}

/// Customer cone *sets* restricted to what is observable from a collection
/// of AS paths: an AS `b` is in `a`'s observed cone if some path contains
/// the consecutive pair `a b` in a provider-to-customer position inferred
/// from the (ground-truth) topology. Used by the §12 CCS replication.
pub fn observed_cone_sizes(
    topo: &Topology,
    paths: impl IntoIterator<Item = Vec<u32>>,
) -> Vec<usize> {
    let n = topo.num_ases();
    // Build observed p2c adjacency.
    let mut cust: Vec<Vec<u32>> = vec![Vec::new(); n];
    for path in paths {
        for w in path.windows(2) {
            let (x, y) = (w[0], w[1]);
            if x == y || x as usize >= n || y as usize >= n {
                continue;
            }
            // In a path VP→origin, traversal x→y means the route came from y
            // to x. It is a p2c edge (x provider of y) iff the topology says
            // y is x's customer.
            if topo.customers(x).contains(&y) {
                cust[x as usize].push(y);
            }
            if topo.customers(y).contains(&x) {
                cust[y as usize].push(x);
            }
        }
    }
    for c in &mut cust {
        c.sort_unstable();
        c.dedup();
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(topo.level(u)));
    let mut cones: Vec<Option<BitSet>> = vec![None; n];
    let mut sizes = vec![0usize; n];
    for &u in &order {
        let mut bs = BitSet::new(n);
        bs.set(u);
        for &c in &cust[u as usize] {
            if let Some(cc) = &cones[c as usize] {
                bs.union_with(cc);
            } else {
                bs.set(c);
            }
        }
        sizes[u as usize] = bs.count();
        cones[u as usize] = Some(bs);
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn stub_cones_are_one() {
        let t = TopologyBuilder::artificial(300, 11).build();
        let sizes = customer_cone_sizes(&t);
        for u in t.stubs() {
            assert_eq!(sizes[u as usize], 1, "stub {u} cone");
        }
    }

    #[test]
    fn provider_cone_contains_customers() {
        let t = TopologyBuilder::artificial(300, 12).build();
        let sizes = customer_cone_sizes(&t);
        for u in 0..t.num_ases() as u32 {
            let direct = topo_customers_len(&t, u);
            assert!(
                sizes[u as usize] > direct.min(sizes[u as usize].saturating_sub(1)),
                "cone must include self"
            );
            for &c in t.customers(u) {
                assert!(
                    sizes[u as usize] > sizes[c as usize].min(sizes[u as usize] - 1)
                        || sizes[u as usize] >= sizes[c as usize],
                    "provider cone smaller than customer cone"
                );
            }
        }
    }

    fn topo_customers_len(t: &crate::Topology, u: u32) -> usize {
        t.customers(u).len()
    }

    #[test]
    fn tier1_has_large_cone() {
        let t = TopologyBuilder::artificial(500, 13).build();
        let sizes = customer_cone_sizes(&t);
        let tier1: Vec<u32> = (0..t.num_ases() as u32)
            .filter(|&u| t.level(u) == 0)
            .collect();
        let max_tier1 = tier1.iter().map(|&u| sizes[u as usize]).max().unwrap();
        // Tier-1s transit a large share of the Internet.
        assert!(
            max_tier1 > t.num_ases() / 4,
            "largest tier1 cone {max_tier1} suspiciously small"
        );
    }

    #[test]
    fn observed_cones_never_exceed_true_cones() {
        let t = TopologyBuilder::artificial(200, 14).build();
        let truth = customer_cone_sizes(&t);
        // Observe only a handful of two-hop paths.
        let mut paths = Vec::new();
        for u in 0..20u32 {
            for &c in t.customers(u) {
                paths.push(vec![u, c]);
            }
        }
        let observed = observed_cone_sizes(&t, paths);
        for u in 0..t.num_ases() {
            assert!(
                observed[u] <= truth[u],
                "observed cone exceeds truth at {u}"
            );
            assert!(observed[u] >= 1);
        }
    }
}
