//! Topological features of Table 6 (§18.2).
//!
//! Anchor-VP selection characterizes how each VP experiences a BGP event by
//! the change the event induces on features of the VP's *route graph*
//! `G_v(t)`: a directed weighted graph built from the AS paths of the VP's
//! best routes, each edge weighted by the number of routes whose path
//! contains it. Edges are directed (§18) because two identical paths in
//! opposite directions should not appear redundant.
//!
//! Six node-based features (computed for each AS of the event) and three
//! pair-based features (computed for the AS pair) follow the paper's
//! Table 6. Distance-based features (closeness, harmonic centrality,
//! eccentricity) use edge length `1/weight` and are hop-limited to a small
//! radius, which keeps per-event cost bounded — events are local, so the
//! deltas outside the neighborhood are zero anyway.

use std::collections::{BinaryHeap, HashMap, HashSet};

/// Default hop radius for distance-based features.
pub const DEFAULT_RADIUS: usize = 4;

/// Safety cap on the number of nodes a distance computation settles —
/// bounds the per-event cost even when the radius-ball around a hub covers
/// most of the graph.
pub const MAX_SETTLED: usize = 1000;

/// Number of node-based features.
pub const NODE_FEATURES: usize = 6;
/// Number of pair-based features.
pub const PAIR_FEATURES: usize = 3;
/// Total feature-vector dimension per (VP, event): node features for both
/// event ASes plus the pair features — `2 * 6 + 3 = 15` (§18.2).
pub const FEATURE_DIM: usize = 2 * NODE_FEATURES + PAIR_FEATURES;

/// A directed, weighted multigraph-as-weights: `u -> v` with weight =
/// number of routes using the edge.
#[derive(Clone, Default, Debug)]
pub struct WeightedDigraph {
    out: HashMap<u32, HashMap<u32, f64>>,
    inn: HashMap<u32, HashMap<u32, f64>>,
}

impl WeightedDigraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the route graph of a VP from the AS paths of its best routes
    /// (each path contributes +1 weight to each of its directed edges,
    /// prepending collapsed).
    pub fn from_paths<'a, I>(paths: I) -> Self
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut g = Self::new();
        for p in paths {
            g.add_path(p);
        }
        g
    }

    /// Adds one route's path (weight +1 per edge).
    pub fn add_path(&mut self, path: &[u32]) {
        for w in path.windows(2) {
            if w[0] != w[1] {
                self.add_edge_weight(w[0], w[1], 1.0);
            }
        }
    }

    /// Removes one route's path (weight −1 per edge; edges at ≤ 0 vanish).
    pub fn remove_path(&mut self, path: &[u32]) {
        for w in path.windows(2) {
            if w[0] != w[1] {
                self.add_edge_weight(w[0], w[1], -1.0);
            }
        }
    }

    /// Adjusts the weight of edge `u -> v` by `delta`, removing it when the
    /// weight drops to zero or below.
    pub fn add_edge_weight(&mut self, u: u32, v: u32, delta: f64) {
        let w = self.out.entry(u).or_default().entry(v).or_insert(0.0);
        *w += delta;
        let dead = *w <= 1e-9;
        if dead {
            self.out.get_mut(&u).unwrap().remove(&v);
            if self.out[&u].is_empty() {
                self.out.remove(&u);
            }
        }
        let w = self.inn.entry(v).or_default().entry(u).or_insert(0.0);
        *w += delta;
        let dead_in = *w <= 1e-9;
        if dead_in {
            self.inn.get_mut(&v).unwrap().remove(&u);
            if self.inn[&v].is_empty() {
                self.inn.remove(&v);
            }
        }
    }

    /// Weight of edge `u -> v` (0 when absent).
    pub fn weight(&self, u: u32, v: u32) -> f64 {
        self.out
            .get(&u)
            .and_then(|m| m.get(&v))
            .copied()
            .unwrap_or(0.0)
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.out.values().map(HashMap::len).sum()
    }

    /// Number of nodes that occur in at least one edge.
    pub fn num_nodes(&self) -> usize {
        let mut s: HashSet<u32> = self.out.keys().copied().collect();
        s.extend(self.inn.keys().copied());
        s.len()
    }

    fn out_neighbors(&self, u: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.out
            .get(&u)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&v, &w)| (v, w)))
    }

    /// Undirected neighbor set with combined weights (used by degree-style
    /// and pair features).
    fn und_neighbors(&self, u: u32) -> HashMap<u32, f64> {
        let mut m: HashMap<u32, f64> = HashMap::new();
        if let Some(o) = self.out.get(&u) {
            for (&v, &w) in o {
                *m.entry(v).or_insert(0.0) += w;
            }
        }
        if let Some(i) = self.inn.get(&u) {
            for (&v, &w) in i {
                *m.entry(v).or_insert(0.0) += w;
            }
        }
        m
    }

    /// Dijkstra limited to `radius` hops over out-edges, edge length `1/w`.
    /// Returns (distance, reachable-count-within-radius, max distance).
    fn distances(&self, u: u32, radius: usize) -> (f64, usize, f64) {
        #[derive(PartialEq)]
        struct Item {
            dist: f64,
            hops: usize,
            node: u32,
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // min-heap by distance
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        let mut dist: HashMap<u32, f64> = HashMap::new();
        let mut heap = BinaryHeap::new();
        heap.push(Item {
            dist: 0.0,
            hops: 0,
            node: u,
        });
        dist.insert(u, 0.0);
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut maxd = 0.0f64;
        let mut settled = 0usize;
        while let Some(Item {
            dist: d,
            hops,
            node,
        }) = heap.pop()
        {
            if d > *dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            settled += 1;
            if settled > MAX_SETTLED {
                break;
            }
            if node != u {
                sum += d;
                count += 1;
                maxd = maxd.max(d);
            }
            if hops >= radius {
                continue;
            }
            for (v, w) in self.out_neighbors(node) {
                let nd = d + 1.0 / w.max(1e-9);
                if nd < *dist.get(&v).unwrap_or(&f64::INFINITY) {
                    dist.insert(v, nd);
                    heap.push(Item {
                        dist: nd,
                        hops: hops + 1,
                        node: v,
                    });
                }
            }
        }
        (sum, count, maxd)
    }

    // ----- Node-based features (Table 6, indices 0–5) -----

    /// Feature 0 — weighted closeness centrality within `radius` hops:
    /// `reachable / sum-of-distances` (0 when nothing is reachable).
    pub fn closeness(&self, u: u32, radius: usize) -> f64 {
        let (sum, count, _) = self.distances(u, radius);
        if count == 0 || sum <= 0.0 {
            0.0
        } else {
            count as f64 / sum
        }
    }

    /// Feature 1 — weighted harmonic centrality within `radius` hops:
    /// `Σ 1/d(u,v)`.
    pub fn harmonic(&self, u: u32, radius: usize) -> f64 {
        #[allow(clippy::needless_collect)]
        let nodes: Vec<(u32, f64)> = self.harmonic_terms(u, radius);
        nodes
            .into_iter()
            .map(|(_, d)| if d > 0.0 { 1.0 / d } else { 0.0 })
            .sum()
    }

    fn harmonic_terms(&self, u: u32, radius: usize) -> Vec<(u32, f64)> {
        // reuse distances but keep individual values
        let mut out = Vec::new();
        // local re-run of bounded Dijkstra collecting per-node distances
        let mut dist: HashMap<u32, (f64, usize)> = HashMap::new();
        let mut heap: Vec<(u32, f64, usize)> = vec![(u, 0.0, 0)];
        dist.insert(u, (0.0, 0));
        let mut settled = 0usize;
        while let Some((node, d, hops)) = pop_min(&mut heap) {
            if let Some(&(best, _)) = dist.get(&node) {
                if d > best {
                    continue;
                }
            }
            settled += 1;
            if settled > MAX_SETTLED {
                break;
            }
            if node != u {
                out.push((node, d));
            }
            if hops >= radius {
                continue;
            }
            for (v, w) in self.out_neighbors(node) {
                let nd = d + 1.0 / w.max(1e-9);
                if nd < dist.get(&v).map(|&(b, _)| b).unwrap_or(f64::INFINITY) {
                    dist.insert(v, (nd, hops + 1));
                    heap.push((v, nd, hops + 1));
                }
            }
        }
        out
    }

    /// Feature 2 — weighted average neighbor degree (Barrat et al.):
    /// `(Σ_v w_uv · k_v) / s_u` over undirected neighbors.
    pub fn avg_neighbor_degree(&self, u: u32) -> f64 {
        let nbrs = self.und_neighbors(u);
        let s: f64 = nbrs.values().sum();
        if s <= 0.0 {
            return 0.0;
        }
        let acc: f64 = nbrs
            .iter()
            .map(|(&v, &w)| w * self.und_neighbors(v).len() as f64)
            .sum();
        acc / s
    }

    /// Feature 3 — weighted eccentricity within `radius` hops: the largest
    /// finite distance from `u`.
    pub fn eccentricity(&self, u: u32, radius: usize) -> f64 {
        self.distances(u, radius).2
    }

    /// Feature 4 — number of triangles through `u` (undirected,
    /// unweighted).
    pub fn triangles(&self, u: u32) -> f64 {
        let nbrs: Vec<u32> = self.und_neighbors(u).keys().copied().collect();
        let nset: HashSet<u32> = nbrs.iter().copied().collect();
        let mut t = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in nbrs.iter().skip(i + 1) {
                if self.und_neighbors(a).contains_key(&b) && nset.contains(&b) {
                    t += 1;
                }
            }
        }
        t as f64
    }

    /// Feature 5 — weighted clustering coefficient (Barrat):
    /// `1/(s_u (k_u - 1)) Σ_{v,h} (w_uv + w_uh)/2 · a_uv a_uh a_vh`.
    pub fn clustering(&self, u: u32) -> f64 {
        let nbrs = self.und_neighbors(u);
        let k = nbrs.len();
        if k < 2 {
            return 0.0;
        }
        let s: f64 = nbrs.values().sum();
        if s <= 0.0 {
            return 0.0;
        }
        let nodes: Vec<(u32, f64)> = nbrs.iter().map(|(&v, &w)| (v, w)).collect();
        let mut acc = 0.0;
        for (i, &(a, wa)) in nodes.iter().enumerate() {
            let a_nbrs = self.und_neighbors(a);
            for &(b, wb) in nodes.iter().skip(i + 1) {
                if a_nbrs.contains_key(&b) {
                    acc += (wa + wb) / 2.0;
                }
            }
        }
        acc / (s * (k as f64 - 1.0))
    }

    // ----- Pair-based features (Table 6, indices 6–8) -----

    /// Feature 6 — Jaccard similarity of the undirected neighbor sets.
    pub fn jaccard(&self, u: u32, v: u32) -> f64 {
        let a: HashSet<u32> = self.und_neighbors(u).keys().copied().collect();
        let b: HashSet<u32> = self.und_neighbors(v).keys().copied().collect();
        let inter = a.intersection(&b).count();
        let uni = a.union(&b).count();
        if uni == 0 {
            0.0
        } else {
            inter as f64 / uni as f64
        }
    }

    /// Feature 7 — Adamic–Adar index: `Σ_{z ∈ N(u) ∩ N(v)} 1/ln(k_z)`.
    pub fn adamic_adar(&self, u: u32, v: u32) -> f64 {
        let a: HashSet<u32> = self.und_neighbors(u).keys().copied().collect();
        let b: HashSet<u32> = self.und_neighbors(v).keys().copied().collect();
        a.intersection(&b)
            .map(|&z| {
                let k = self.und_neighbors(z).len() as f64;
                if k > 1.0 {
                    1.0 / k.ln()
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Feature 8 — preferential attachment: `k_u · k_v`.
    pub fn pref_attachment(&self, u: u32, v: u32) -> f64 {
        (self.und_neighbors(u).len() * self.und_neighbors(v).len()) as f64
    }

    /// The full 15-dimensional feature vector `T(v, e)` of §18.2 for an
    /// event involving `(as1, as2)`: node features for both ASes followed
    /// by the pair features (default radius).
    pub fn feature_vector(&self, as1: u32, as2: u32) -> [f64; FEATURE_DIM] {
        self.feature_vector_r(as1, as2, DEFAULT_RADIUS)
    }

    /// [`WeightedDigraph::feature_vector`] with an explicit hop radius for
    /// the distance-based features.
    pub fn feature_vector_r(&self, as1: u32, as2: u32, r: usize) -> [f64; FEATURE_DIM] {
        [
            self.closeness(as1, r),
            self.closeness(as2, r),
            self.harmonic(as1, r),
            self.harmonic(as2, r),
            self.avg_neighbor_degree(as1),
            self.avg_neighbor_degree(as2),
            self.eccentricity(as1, r),
            self.eccentricity(as2, r),
            self.triangles(as1),
            self.triangles(as2),
            self.clustering(as1),
            self.clustering(as2),
            self.jaccard(as1, as2),
            self.adamic_adar(as1, as2),
            self.pref_attachment(as1, as2),
        ]
    }
}

/// Computes [`WeightedDigraph::feature_vector_r`] for a batch of route
/// graphs (one per VP) in parallel, returning the vectors in input order.
///
/// Each graph's 15-dimensional vector is independent of the others, so the
/// map fans out across threads while the order-preserving collect keeps
/// the result bit-identical to a sequential loop. This is the hot call of
/// anchor-VP characterization (§18.2): one vector per (VP, event boundary).
pub fn feature_vectors_par<'a, I>(
    graphs: I,
    as1: u32,
    as2: u32,
    radius: usize,
) -> Vec<[f64; FEATURE_DIM]>
where
    I: IntoIterator<Item = &'a WeightedDigraph>,
{
    use rayon::prelude::*;
    let graphs: Vec<&WeightedDigraph> = graphs.into_iter().collect();
    graphs
        .into_par_iter()
        .map(|g| g.feature_vector_r(as1, as2, radius))
        .collect()
}

fn pop_min(heap: &mut Vec<(u32, f64, usize)>) -> Option<(u32, f64, usize)> {
    if heap.is_empty() {
        return None;
    }
    let mut best = 0;
    for i in 1..heap.len() {
        if heap[i].1 < heap[best].1 {
            best = i;
        }
    }
    Some(heap.swap_remove(best))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> WeightedDigraph {
        // 1 -> 2 -> 3 -> 4, all weight 1
        WeightedDigraph::from_paths([vec![1u32, 2, 3, 4].as_slice()])
    }

    #[test]
    fn path_addition_and_removal_are_inverse() {
        let mut g = line_graph();
        assert_eq!(g.num_edges(), 3);
        g.remove_path(&[1, 2, 3, 4]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn weights_accumulate_per_route() {
        let g =
            WeightedDigraph::from_paths([vec![1u32, 2, 3].as_slice(), vec![1u32, 2, 4].as_slice()]);
        assert_eq!(g.weight(1, 2), 2.0);
        assert_eq!(g.weight(2, 3), 1.0);
        assert_eq!(g.weight(2, 1), 0.0); // directed
    }

    #[test]
    fn prepending_does_not_create_self_loops() {
        let g = WeightedDigraph::from_paths([vec![1u32, 2, 2, 2, 3].as_slice()]);
        assert_eq!(g.weight(2, 2), 0.0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn closeness_decreases_away_from_center() {
        let g = line_graph();
        // From node 1, all of 2,3,4 reachable (dist 1,2,3): closeness 3/6.
        assert!((g.closeness(1, 4) - 0.5).abs() < 1e-9);
        // From node 4 nothing is reachable (directed).
        assert_eq!(g.closeness(4, 4), 0.0);
    }

    #[test]
    fn harmonic_matches_hand_computation() {
        let g = line_graph();
        // distances from 1: 1, 2, 3 -> harmonic = 1 + 1/2 + 1/3
        assert!((g.harmonic(1, 4) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn eccentricity_is_max_distance() {
        let g = line_graph();
        assert!((g.eccentricity(1, 4) - 3.0).abs() < 1e-9);
        assert!((g.eccentricity(3, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn radius_limits_reach() {
        let g = line_graph();
        assert!((g.eccentricity(1, 1) - 1.0).abs() < 1e-9);
        assert!((g.closeness(1, 1) - 1.0).abs() < 1e-9); // one node at dist 1
    }

    #[test]
    fn heavier_edges_are_shorter() {
        let mut g = WeightedDigraph::new();
        g.add_edge_weight(1, 2, 4.0); // length 0.25
        assert!((g.eccentricity(1, 2) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn triangles_and_clustering() {
        // triangle 1-2-3 (directed edges both in paths)
        let g =
            WeightedDigraph::from_paths([vec![1u32, 2, 3].as_slice(), vec![3u32, 1].as_slice()]);
        assert_eq!(g.triangles(1), 1.0);
        assert_eq!(g.triangles(2), 1.0);
        assert!(g.clustering(1) > 0.0);
        // add a pendant: clustering of 1 drops
        let mut g2 = g.clone();
        g2.add_edge_weight(1, 9, 1.0);
        assert!(g2.clustering(1) < g.clustering(1));
    }

    #[test]
    fn pair_features() {
        let g = WeightedDigraph::from_paths([
            vec![1u32, 3].as_slice(),
            vec![2u32, 3].as_slice(),
            vec![1u32, 4].as_slice(),
            vec![2u32, 4].as_slice(),
        ]);
        // N(1) = {3,4}, N(2) = {3,4} -> jaccard 1.0
        assert!((g.jaccard(1, 2) - 1.0).abs() < 1e-9);
        assert!(g.adamic_adar(1, 2) > 0.0);
        assert!((g.pref_attachment(1, 2) - 4.0).abs() < 1e-9);
        // disjoint pair
        assert_eq!(g.jaccard(3, 3), 1.0);
        assert_eq!(g.jaccard(1, 9), 0.0);
    }

    #[test]
    fn feature_vector_dimension() {
        let g = line_graph();
        let v = g.feature_vector(1, 2);
        assert_eq!(v.len(), FEATURE_DIM);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn avg_neighbor_degree_weighted() {
        let mut g = WeightedDigraph::new();
        g.add_edge_weight(1, 2, 3.0);
        g.add_edge_weight(1, 3, 1.0);
        g.add_edge_weight(2, 4, 1.0);
        g.add_edge_weight(2, 5, 1.0);
        // N(1): 2 (w 3, deg 3: {1,4,5}), 3 (w 1, deg 1: {1})
        // and = (3*3 + 1*1)/4 = 2.5
        assert!((g.avg_neighbor_degree(1) - 2.5).abs() < 1e-9);
    }
}
