//! Property tests for the compiled filter engine: `CompiledFilters` must
//! be observationally equivalent to the sequential reference
//! `FilterSet::accepts` at every granularity, epoch swaps must never tear
//! a verdict, and the §9 text format must round-trip.
use bgp_types::{Asn, BgpUpdate, Prefix, Timestamp, UpdateBuilder, VpId};
use gill_core::{CompiledFilters, FilterGranularity, FilterHandle, FilterSet};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn vp(n: u32) -> VpId {
    VpId::from_asn(Asn(n))
}

/// Deterministically expands a compact `(vp, prefix, path-shape, #comms)`
/// tuple into an update. Small domains on purpose: collisions between
/// training and probe populations are where equivalence bugs live.
fn upd((v, p, shape, ncomm): (u32, u32, u8, u8)) -> BgpUpdate {
    let mut b = UpdateBuilder::announce(vp(v), Prefix::synthetic(p))
        .at(Timestamp::from_secs(1))
        .path([v, 100 + shape as u32, 4]);
    for i in 0..ncomm {
        b = b.community(v as u16, i as u16);
    }
    b.build()
}

const GRANULARITIES: [FilterGranularity; 3] = [
    FilterGranularity::VpPrefix,
    FilterGranularity::VpPrefixPath,
    FilterGranularity::VpPrefixPathComms,
];

proptest! {
    // The tentpole equivalence: compiled verdicts == reference verdicts
    // on random rule/anchor populations, probed with a mix of exact
    // training replays and fresh updates, at all three granularities.
    #[test]
    fn compiled_accepts_equals_reference(
        g_idx in 0usize..3,
        train in proptest::collection::vec((1u32..12, 0u32..16, 0u8..3, 0u8..3), 0..48),
        anchors in proptest::collection::vec(1u32..12, 0..4),
        probes in proptest::collection::vec((1u32..12, 0u32..16, 0u8..3, 0u8..3), 1..64),
    ) {
        let g = GRANULARITIES[g_idx];
        let train: Vec<BgpUpdate> = train.into_iter().map(upd).collect();
        let fs = FilterSet::generate(anchors.iter().map(|&a| vp(a)), train.iter(), g);
        let c = CompiledFilters::compile(&fs, 1);
        prop_assert_eq!(c.num_rules(), fs.num_rules());
        for u in train.iter().chain(probes.into_iter().map(upd).collect::<Vec<_>>().iter()) {
            prop_assert_eq!(c.accepts(u), fs.accepts(u), "granularity {:?}, update {}", g, u);
        }
    }

    // §9 text round-trip: serialize, decorate with comments/blank lines,
    // parse back, re-serialize — byte-identical, IPv6 rules included.
    // The compiled engine's text form matches the reference's.
    #[test]
    fn text_format_round_trips(
        v4 in proptest::collection::vec((1u32..64, any::<u32>(), 8u8..=32), 0..24),
        v6 in proptest::collection::vec((1u32..64, any::<u64>(), 16u8..=64), 0..24),
        anchors in proptest::collection::vec(1u32..64, 0..6),
    ) {
        let drops: Vec<BgpUpdate> = v4
            .iter()
            .map(|&(a, addr, len)| (vp(a), Prefix::v4(Ipv4Addr::from(addr), len)))
            .chain(v6.iter().map(|&(a, addr, len)| {
                (vp(a), Prefix::v6(Ipv6Addr::from((addr as u128) << 64), len))
            }))
            .map(|(v, p)| {
                UpdateBuilder::announce(v, p)
                    .at(Timestamp::from_secs(1))
                    .path([v.asn.value(), 4])
                    .build()
            })
            .collect();
        let fs = FilterSet::generate(
            anchors.iter().map(|&a| vp(a)),
            drops.iter(),
            FilterGranularity::VpPrefix,
        );
        let text = fs.to_text().unwrap();
        // parsing must tolerate comments and blank lines (§9 files are
        // hand-annotated on bgproutes.io)
        let mut decorated = String::from("# published filter set\n\n");
        for (i, line) in text.lines().enumerate() {
            decorated.push_str(line);
            decorated.push('\n');
            if i % 3 == 0 {
                decorated.push_str("  # inline comment line\n\n");
            }
        }
        let parsed = FilterSet::from_text(&decorated).unwrap();
        prop_assert_eq!(parsed.to_text().unwrap(), text.clone());
        prop_assert_eq!(parsed.num_rules(), fs.num_rules());
        // the compiled engine serves the identical §9 bytes
        let compiled = CompiledFilters::compile(&fs, 3);
        prop_assert_eq!(compiled.to_text().unwrap(), text);
        // and parsing preserves semantics, not just bytes
        for u in drops.iter().take(8) {
            prop_assert_eq!(parsed.accepts(u), fs.accepts(u));
        }
    }
}

/// N reader threads judge one update while a publisher performs M epoch
/// swaps alternating drop/accept rule sets. Every observed verdict must be
/// attributable to the epoch that produced it: epoch parity fully
/// determines the verdict, and each reader's epoch sequence is monotone.
/// A torn read (old verdict with new epoch or vice versa) fails the
/// parity check.
#[test]
fn concurrent_swaps_never_tear_verdicts() {
    const READERS: usize = 4;
    const SWAPS: u64 = 200;

    let probe = upd((1, 1, 0, 0));
    let dropping = FilterSet::generate([], [&probe], FilterGranularity::VpPrefix);
    let handle = FilterHandle::empty(); // epoch 0: accept
    let barrier = std::sync::Barrier::new(READERS + 1);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            let handle = &handle;
            let probe = &probe;
            let barrier = &barrier;
            s.spawn(move || {
                let view = handle.view();
                barrier.wait();
                let mut last_epoch = 0u64;
                let mut verdicts = 0u64;
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                loop {
                    let (keep, epoch) = view.judge(probe);
                    // odd epochs published the dropping set
                    assert_eq!(
                        keep,
                        epoch % 2 == 0,
                        "verdict not attributable to epoch {epoch}"
                    );
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    last_epoch = epoch;
                    verdicts += 1;
                    if epoch == SWAPS {
                        break;
                    }
                    assert!(
                        std::time::Instant::now() < deadline,
                        "reader never observed the final epoch"
                    );
                }
                assert!(verdicts >= 1);
            });
        }
        barrier.wait();
        for e in 1..=SWAPS {
            let fs = if e % 2 == 1 {
                dropping.clone()
            } else {
                FilterSet::default()
            };
            let published = handle.publish(handle.compile_next(&fs));
            assert_eq!(published, e);
            if e % 16 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    });
    assert_eq!(handle.epoch(), SWAPS);
    assert!(handle.snapshot().accepts(&probe)); // SWAPS is even: accepting
}
