//! Filter generation and matching (§7).
//!
//! GILL turns its redundancy inferences into per-peering-session filters:
//!
//! * highest priority: **accept everything from anchor VPs**;
//! * then: **drop** rules for update spaces inferred redundant;
//! * default: **accept** (new, never-seen updates are always retained).
//!
//! The paper's central design choice is filter *granularity*: GILL matches
//! only on `(VP, prefix)` — coarse filters that keep discarding future
//! redundant updates (87 % a window later) where finer filters matching
//! also on the AS path (GILL-asp, 43 %) or path + communities
//! (GILL-asp-comm, 0 %) quickly stop matching anything. Both finer
//! variants are implemented for the §7 ablation.

use bgp_types::{AsPath, BgpUpdate, Community, Prefix, VpId};
use std::borrow::Borrow;
use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};

/// Filter granularity (§7): what a drop rule matches on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FilterGranularity {
    /// `(VP, prefix)` — GILL's choice.
    #[default]
    VpPrefix,
    /// `(VP, prefix, AS path)` — the GILL-asp ablation.
    VpPrefixPath,
    /// `(VP, prefix, AS path, communities)` — the GILL-asp-comm ablation.
    VpPrefixPathComms,
}

/// One drop rule at the configured granularity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DropRule {
    /// Sending VP.
    pub vp: VpId,
    /// Prefix.
    pub prefix: Prefix,
    /// AS path, for the fine-grained variants.
    pub path: Option<AsPath>,
    /// Communities, for the finest variant.
    pub communities: Option<BTreeSet<Community>>,
}

/// The lookup-key view of a drop rule, shared between the owned
/// [`DropRule`] and the borrowed [`DropRuleRef`] so that
/// [`FilterSet::accepts`] can probe the rule set without cloning the AS
/// path or community set of the update under test.
trait RuleKey {
    fn vp(&self) -> VpId;
    fn prefix(&self) -> Prefix;
    fn path(&self) -> Option<&AsPath>;
    fn communities(&self) -> Option<&BTreeSet<Community>>;
}

impl RuleKey for DropRule {
    fn vp(&self) -> VpId {
        self.vp
    }
    fn prefix(&self) -> Prefix {
        self.prefix
    }
    fn path(&self) -> Option<&AsPath> {
        self.path.as_ref()
    }
    fn communities(&self) -> Option<&BTreeSet<Community>> {
        self.communities.as_ref()
    }
}

/// A borrowed drop-rule key: references the update's own attributes
/// instead of cloning them (the seed implementation allocated a fresh
/// `AsPath` + `BTreeSet` per lookup at the fine granularities).
struct DropRuleRef<'a> {
    vp: VpId,
    prefix: Prefix,
    path: Option<&'a AsPath>,
    communities: Option<&'a BTreeSet<Community>>,
}

impl<'a> DropRuleRef<'a> {
    /// The key `u` would match at granularity `g`.
    fn for_update(u: &'a BgpUpdate, g: FilterGranularity) -> Self {
        DropRuleRef {
            vp: u.vp,
            prefix: u.prefix,
            path: match g {
                FilterGranularity::VpPrefix => None,
                _ => Some(&u.path),
            },
            communities: match g {
                FilterGranularity::VpPrefixPathComms => Some(&u.communities),
                _ => None,
            },
        }
    }
}

impl RuleKey for DropRuleRef<'_> {
    fn vp(&self) -> VpId {
        self.vp
    }
    fn prefix(&self) -> Prefix {
        self.prefix
    }
    fn path(&self) -> Option<&AsPath> {
        self.path
    }
    fn communities(&self) -> Option<&BTreeSet<Community>> {
        self.communities
    }
}

// Owned and borrowed keys must hash identically for the `Borrow`-based
// lookup to work, so both `Hash` impls funnel through this one function.
fn hash_rule_key<H: Hasher>(key: &(impl RuleKey + ?Sized), state: &mut H) {
    key.vp().hash(state);
    key.prefix().hash(state);
    match key.path() {
        None => state.write_u8(0),
        Some(p) => {
            state.write_u8(1);
            p.hash(state);
        }
    }
    match key.communities() {
        None => state.write_u8(0),
        Some(c) => {
            state.write_u8(1);
            c.hash(state);
        }
    }
}

impl Hash for DropRule {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_rule_key(self, state);
    }
}

impl Hash for dyn RuleKey + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_rule_key(self, state);
    }
}

impl PartialEq for dyn RuleKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.vp() == other.vp()
            && self.prefix() == other.prefix()
            && self.path() == other.path()
            && self.communities() == other.communities()
    }
}

impl Eq for dyn RuleKey + '_ {}

impl<'a> Borrow<dyn RuleKey + 'a> for DropRule {
    fn borrow(&self) -> &(dyn RuleKey + 'a) {
        self
    }
}

/// A generated filter set: anchor accept-alls, drop rules, accept default.
#[derive(Clone, Debug, Default)]
pub struct FilterSet {
    granularity: FilterGranularity,
    anchors: HashSet<VpId>,
    drops: HashSet<DropRule>,
}

impl FilterSet {
    /// Builds a filter set from the redundancy analysis outputs.
    ///
    /// * `anchors` — VPs whose updates are always accepted.
    /// * `redundant_updates` — the training updates classified redundant;
    ///   each contributes one drop rule at `granularity`.
    pub fn generate<'a>(
        anchors: impl IntoIterator<Item = VpId>,
        redundant_updates: impl IntoIterator<Item = &'a BgpUpdate>,
        granularity: FilterGranularity,
    ) -> Self {
        let anchors: HashSet<VpId> = anchors.into_iter().collect();
        let mut drops = HashSet::new();
        for u in redundant_updates {
            if anchors.contains(&u.vp) {
                continue; // the anchor accept-all overrides (Fig. 5b)
            }
            drops.insert(Self::rule_for(u, granularity));
        }
        FilterSet {
            granularity,
            anchors,
            drops,
        }
    }

    fn rule_for(u: &BgpUpdate, g: FilterGranularity) -> DropRule {
        DropRule {
            vp: u.vp,
            prefix: u.prefix,
            path: match g {
                FilterGranularity::VpPrefix => None,
                _ => Some(u.path.clone()),
            },
            communities: match g {
                FilterGranularity::VpPrefixPathComms => Some(u.communities.clone()),
                _ => None,
            },
        }
    }

    /// Whether `u` passes the filters (true = retained).
    ///
    /// Allocation-free at every granularity: the probe key borrows the
    /// update's AS path and community set instead of cloning them.
    pub fn accepts(&self, u: &BgpUpdate) -> bool {
        if self.anchors.contains(&u.vp) {
            return true;
        }
        let key = DropRuleRef::for_update(u, self.granularity);
        !self.drops.contains(&key as &dyn RuleKey)
    }

    /// Fraction of `updates` that the filters discard.
    pub fn discard_rate(&self, updates: &[BgpUpdate]) -> f64 {
        if updates.is_empty() {
            return 0.0;
        }
        let dropped = updates.iter().filter(|u| !self.accepts(u)).count();
        dropped as f64 / updates.len() as f64
    }

    /// Number of drop rules.
    pub fn num_rules(&self) -> usize {
        self.drops.len()
    }

    /// The anchor VPs with accept-all rules.
    pub fn anchors(&self) -> impl Iterator<Item = &VpId> {
        self.anchors.iter()
    }

    /// The configured granularity.
    pub fn granularity(&self) -> FilterGranularity {
        self.granularity
    }

    /// Whether `vp` has an accept-all rule.
    pub fn is_anchor(&self, vp: VpId) -> bool {
        self.anchors.contains(&vp)
    }

    /// Iterates over the drop rules (for publication, as on bgproutes.io).
    pub fn rules(&self) -> impl Iterator<Item = &DropRule> {
        self.drops.iter()
    }

    /// Serializes the filter set to the published text format (§9):
    /// one `anchor ASN` line per accept-all rule and one
    /// `drop ASN PREFIX` line per drop rule. Only the `(VP, prefix)`
    /// granularity is serializable (the deployed one).
    pub fn to_text(&self) -> Result<String, &'static str> {
        if self.granularity != FilterGranularity::VpPrefix && !self.drops.is_empty() {
            return Err("only (VP, prefix) filters have a text form");
        }
        let mut anchors: Vec<_> = self.anchors.iter().collect();
        anchors.sort();
        let mut out = String::new();
        for a in anchors {
            out.push_str(&format!("anchor {}\n", a.asn.value()));
        }
        let mut drops: Vec<_> = self.drops.iter().collect();
        drops.sort_by_key(|r| (r.vp, r.prefix));
        for r in drops {
            out.push_str(&format!("drop {} {}\n", r.vp.asn.value(), r.prefix));
        }
        Ok(out)
    }

    /// Parses the text format produced by [`FilterSet::to_text`]. Blank
    /// lines and `#` comments are ignored.
    pub fn from_text(text: &str) -> Result<FilterSet, String> {
        let mut f = FilterSet {
            granularity: FilterGranularity::VpPrefix,
            ..FilterSet::default()
        };
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |m: &str| format!("line {}: {m}", no + 1);
            match parts.next() {
                Some("anchor") => {
                    let asn: u32 = parts
                        .next()
                        .ok_or_else(|| err("missing ASN"))?
                        .parse()
                        .map_err(|_| err("bad ASN"))?;
                    f.anchors.insert(VpId::from_asn(bgp_types::Asn(asn)));
                }
                Some("drop") => {
                    let asn: u32 = parts
                        .next()
                        .ok_or_else(|| err("missing ASN"))?
                        .parse()
                        .map_err(|_| err("bad ASN"))?;
                    let prefix: Prefix = parts
                        .next()
                        .ok_or_else(|| err("missing prefix"))?
                        .parse()
                        .map_err(|_| err("bad prefix"))?;
                    f.drops.insert(DropRule {
                        vp: VpId::from_asn(bgp_types::Asn(asn)),
                        prefix,
                        path: None,
                        communities: None,
                    });
                }
                _ => return Err(err("expected 'anchor' or 'drop'")),
            }
            if parts.next().is_some() {
                return Err(err("trailing tokens"));
            }
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Asn, Timestamp, UpdateBuilder};

    fn vp(n: u32) -> VpId {
        VpId::from_asn(Asn(n))
    }

    fn upd(v: u32, pfx: u32, path: &[u32], comm: &[(u16, u16)]) -> BgpUpdate {
        let mut b = UpdateBuilder::announce(vp(v), Prefix::synthetic(pfx))
            .at(Timestamp::from_secs(1))
            .path(path.iter().copied());
        for &(a, c) in comm {
            b = b.community(a, c);
        }
        b.build()
    }

    #[test]
    fn default_policy_is_accept() {
        let f = FilterSet::default();
        assert!(f.accepts(&upd(1, 1, &[1, 4], &[])));
    }

    #[test]
    fn coarse_filters_drop_future_updates_with_new_paths() {
        // Train on one update; a future update with a different AS path for
        // the same (vp, prefix) must still be dropped at VpPrefix
        // granularity — that is the whole point of §7.
        let train = upd(1, 1, &[1, 2, 4], &[]);
        let f = FilterSet::generate([], [&train], FilterGranularity::VpPrefix);
        let future = upd(1, 1, &[1, 3, 4], &[]);
        assert!(!f.accepts(&future));
        // but a different prefix or VP is accepted
        assert!(f.accepts(&upd(1, 2, &[1, 2, 4], &[])));
        assert!(f.accepts(&upd(2, 1, &[1, 2, 4], &[])));
    }

    #[test]
    fn asp_filters_require_same_path() {
        let train = upd(1, 1, &[1, 2, 4], &[]);
        let f = FilterSet::generate([], [&train], FilterGranularity::VpPrefixPath);
        assert!(!f.accepts(&upd(1, 1, &[1, 2, 4], &[])));
        assert!(f.accepts(&upd(1, 1, &[1, 3, 4], &[]))); // new path escapes
    }

    #[test]
    fn asp_comm_filters_require_same_communities() {
        let train = upd(1, 1, &[1, 2, 4], &[(1, 10)]);
        let f = FilterSet::generate([], [&train], FilterGranularity::VpPrefixPathComms);
        assert!(!f.accepts(&upd(1, 1, &[1, 2, 4], &[(1, 10)])));
        assert!(f.accepts(&upd(1, 1, &[1, 2, 4], &[(1, 11)])));
    }

    #[test]
    fn anchor_accept_all_overrides_drop_rules() {
        let train = upd(1, 1, &[1, 2, 4], &[]);
        let f = FilterSet::generate([vp(1)], [&train], FilterGranularity::VpPrefix);
        assert_eq!(f.num_rules(), 0, "anchor rules suppress drops entirely");
        assert!(f.accepts(&upd(1, 1, &[1, 2, 4], &[])));
        assert!(f.is_anchor(vp(1)));
    }

    #[test]
    fn text_roundtrip() {
        let train = vec![upd(1, 1, &[1, 4], &[]), upd(2, 7, &[2, 4], &[])];
        let f = FilterSet::generate([vp(9)], train.iter(), FilterGranularity::VpPrefix);
        let text = f.to_text().unwrap();
        assert!(text.contains("anchor 9"));
        assert!(text.contains("drop 1"));
        let back = FilterSet::from_text(&text).unwrap();
        assert_eq!(back.num_rules(), f.num_rules());
        assert!(back.is_anchor(vp(9)));
        for u in &train {
            assert_eq!(back.accepts(u), f.accepts(u));
        }
        // comments and blanks are tolerated
        let with_comments = format!("# published filters\n\n{text}");
        assert!(FilterSet::from_text(&with_comments).is_ok());
        // garbage is not
        assert!(FilterSet::from_text("frobnicate 1 2").is_err());
        assert!(FilterSet::from_text("drop 1").is_err());
        assert!(FilterSet::from_text("drop 1 10.0.0.0/8 extra").is_err());
    }

    #[test]
    fn fine_grained_filters_have_no_text_form() {
        let train = upd(1, 1, &[1, 4], &[]);
        let f = FilterSet::generate([], [&train], FilterGranularity::VpPrefixPath);
        assert!(f.to_text().is_err());
    }

    #[test]
    fn discard_rate_counts_drops() {
        let train = [upd(1, 1, &[1, 4], &[]), upd(2, 2, &[2, 4], &[])];
        let f = FilterSet::generate([], train.iter(), FilterGranularity::VpPrefix);
        assert_eq!(f.num_rules(), 2);
        let test = vec![
            upd(1, 1, &[1, 9, 4], &[]), // dropped (vp1, p1)
            upd(2, 2, &[2, 4], &[]),    // dropped (vp2, p2)
            upd(3, 3, &[3, 4], &[]),    // accepted
            upd(1, 2, &[1, 4], &[]),    // accepted (vp1, p2 not filtered)
        ];
        assert!((f.discard_rate(&test) - 0.5).abs() < 1e-9);
        assert_eq!(f.discard_rate(&[]), 0.0);
    }
}
