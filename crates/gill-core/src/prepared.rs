//! Interned update feature-sets: compute once, compare many.
//!
//! The redundancy conditions of §4.2 compare *effective* link- and
//! community-sets between update pairs. The naive formulation
//! ([`crate::redundancy::condition2`]/[`condition3`]) materializes two
//! fresh `BTreeSet`s per comparison; inside the sliding-window scans of
//! [`crate::redundancy::redundant_flags`] that turns an O(window) scan
//! into an allocation storm — each update's sets are rebuilt once per
//! *neighbor* instead of once per *update*.
//!
//! [`PreparedUpdates`] fixes the asymptotics: one preparation pass interns
//! every update's effective sets into sorted boxed slices, after which a
//! subset test is a single allocation-free O(|a| + |b|) merge walk
//! ([`sorted_subset`]). The per-prefix buckets the window scans operate on
//! are materialized at the same time, in prefix order, which makes them a
//! natural fan-out unit for data parallelism: buckets are independent, so
//! the parallel engines map buckets across threads and stitch results back
//! in bucket order — bit-identical to the sequential path by construction.
//!
//! [`condition3`]: crate::redundancy::condition3

use crate::redundancy::RedundancyDef;
use bgp_types::{BgpUpdate, Community, Link, Prefix, Timestamp, VpId};
use rayon::prelude::*;
use std::collections::HashMap;

/// Merge-walk subset test over two sorted, deduplicated slices:
/// `a ⊆ b` in O(|a| + |b|) with no allocation.
pub fn sorted_subset<T: Ord>(a: &[T], b: &[T]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0usize;
    'outer: for x in a {
        while j < b.len() {
            match b[j].cmp(x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// One update with its effective link- and community-sets interned as
/// sorted slices (computed exactly once, at preparation time).
#[derive(Clone, Debug)]
pub struct PreparedUpdate {
    /// Announcing vantage point.
    pub vp: VpId,
    /// Update timestamp.
    pub time: Timestamp,
    /// Announced prefix.
    pub prefix: Prefix,
    /// Sorted effective link-set (`links \ withdrawn_links`).
    links: Box<[Link]>,
    /// Sorted effective community-set (`communities \ withdrawn_communities`).
    communities: Box<[Community]>,
}

impl PreparedUpdate {
    /// Interns one update's redundancy-relevant attributes.
    pub fn of(u: &BgpUpdate) -> Self {
        // BTreeSet iteration is sorted and deduplicated, so collecting
        // yields exactly the slice shape `sorted_subset` expects.
        PreparedUpdate {
            vp: u.vp,
            time: u.time,
            prefix: u.prefix,
            links: u.effective_links().into_iter().collect(),
            communities: u.effective_communities().into_iter().collect(),
        }
    }

    /// The interned effective link-set (sorted).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The interned effective community-set (sorted).
    pub fn communities(&self) -> &[Community] {
        &self.communities
    }

    /// Condition 1 of §4.2: same prefix, within the 100 s time slack.
    pub fn condition1(&self, other: &PreparedUpdate) -> bool {
        self.prefix == other.prefix && self.time.within_slack(other.time)
    }

    /// Condition 2 of §4.2 on the interned sets: `L1 ⊆ L2`.
    pub fn condition2(&self, other: &PreparedUpdate) -> bool {
        sorted_subset(&self.links, &other.links)
    }

    /// Condition 3 of §4.2 on the interned sets: `C1 ⊆ C2`.
    pub fn condition3(&self, other: &PreparedUpdate) -> bool {
        sorted_subset(&self.communities, &other.communities)
    }

    /// Whether `self` is redundant with `other` under `def` — identical
    /// semantics to [`crate::redundancy::is_redundant_with`], without the
    /// per-comparison set materialization.
    pub fn is_redundant_with(&self, other: &PreparedUpdate, def: RedundancyDef) -> bool {
        match def {
            RedundancyDef::Def1 => self.condition1(other),
            RedundancyDef::Def2 => self.condition1(other) && self.condition2(other),
            RedundancyDef::Def3 => {
                self.condition1(other) && self.condition2(other) && self.condition3(other)
            }
        }
    }
}

/// A whole update stream prepared for repeated redundancy queries:
/// interned per-update feature-sets plus prefix buckets in deterministic
/// (prefix-sorted) order.
///
/// Construction is O(n log n); afterwards every engine below runs with
/// zero per-comparison allocation, and the parallel variants fan the
/// prefix buckets out across threads.
#[derive(Clone, Debug)]
pub struct PreparedUpdates {
    items: Vec<PreparedUpdate>,
    /// `(prefix, indices into items)`, sorted by prefix; indices keep the
    /// input (time) order. Buckets partition `0..items.len()`.
    buckets: Vec<(Prefix, Vec<usize>)>,
}

impl PreparedUpdates {
    /// Prepares a time-sorted update stream.
    pub fn prepare(updates: &[BgpUpdate]) -> Self {
        let items: Vec<PreparedUpdate> = updates.iter().map(PreparedUpdate::of).collect();
        let mut by_prefix: HashMap<Prefix, Vec<usize>> = HashMap::new();
        for (i, u) in items.iter().enumerate() {
            by_prefix.entry(u.prefix).or_default().push(i);
        }
        let mut buckets: Vec<(Prefix, Vec<usize>)> = by_prefix.into_iter().collect();
        buckets.sort_unstable_by_key(|(p, _)| *p);
        PreparedUpdates { items, buckets }
    }

    /// Number of prepared updates.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The prepared updates, in input order.
    pub fn items(&self) -> &[PreparedUpdate] {
        &self.items
    }

    /// Number of distinct prefixes (= parallel fan-out width).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    // -- redundant_flags ---------------------------------------------------

    /// Indices (within `idxs` positions of `items`) flagged redundant, via
    /// the same forward/backward slack-window scan as the reference
    /// implementation. `idxs` must be time-ordered, all of one prefix.
    fn bucket_redundant(&self, idxs: &[usize], def: RedundancyDef) -> Vec<usize> {
        let mut out = Vec::new();
        for (a, &i) in idxs.iter().enumerate() {
            let ui = &self.items[i];
            let mut red = false;
            for &j in &idxs[a + 1..] {
                let uj = &self.items[j];
                if !ui.time.within_slack(uj.time) {
                    break;
                }
                if ui.is_redundant_with(uj, def) {
                    red = true;
                    break;
                }
            }
            if !red {
                for &j in idxs[..a].iter().rev() {
                    let uj = &self.items[j];
                    if !ui.time.within_slack(uj.time) {
                        break;
                    }
                    if ui.is_redundant_with(uj, def) {
                        red = true;
                        break;
                    }
                }
            }
            if red {
                out.push(i);
            }
        }
        out
    }

    /// Per-update redundancy flags, sequential engine.
    pub fn redundant_flags_seq(&self, def: RedundancyDef) -> Vec<bool> {
        let mut flags = vec![false; self.items.len()];
        for (_, idxs) in &self.buckets {
            for i in self.bucket_redundant(idxs, def) {
                flags[i] = true;
            }
        }
        flags
    }

    /// Per-update redundancy flags, parallel engine: prefix buckets fan
    /// out across threads; each bucket owns a disjoint slice of indices,
    /// so scattering the per-bucket results back is order-independent and
    /// the output is bit-identical to [`Self::redundant_flags_seq`].
    pub fn redundant_flags(&self, def: RedundancyDef) -> Vec<bool> {
        let per_bucket: Vec<Vec<usize>> = self
            .buckets
            .par_iter()
            .map(|(_, idxs)| self.bucket_redundant(idxs, def))
            .collect();
        let mut flags = vec![false; self.items.len()];
        for bucket in per_bucket {
            for i in bucket {
                flags[i] = true;
            }
        }
        flags
    }

    // -- vp_pair_redundancy ------------------------------------------------

    /// Per-bucket coverage counts: for each ordered VP pair `(v1, v2)`,
    /// how many of `v1`'s updates in this bucket are redundant with at
    /// least one of `v2`'s. Returned sorted by pair for deterministic
    /// downstream merging.
    fn bucket_vp_cover(&self, idxs: &[usize], def: RedundancyDef) -> Vec<((VpId, VpId), usize)> {
        let mut counts: HashMap<(VpId, VpId), usize> = HashMap::new();
        let mut seen: Vec<VpId> = Vec::new();
        for (a, &i) in idxs.iter().enumerate() {
            let ui = &self.items[i];
            seen.clear();
            // Sorted insert keeps the covering-VP membership test at
            // O(log k) instead of the O(k) linear scan.
            let scan = |j: usize, seen: &mut Vec<VpId>| {
                let uj = &self.items[j];
                if uj.vp != ui.vp {
                    if let Err(pos) = seen.binary_search(&uj.vp) {
                        if ui.is_redundant_with(uj, def) {
                            seen.insert(pos, uj.vp);
                        }
                    }
                }
            };
            for &j in &idxs[a + 1..] {
                if !ui.time.within_slack(self.items[j].time) {
                    break;
                }
                scan(j, &mut seen);
            }
            for &j in idxs[..a].iter().rev() {
                if !ui.time.within_slack(self.items[j].time) {
                    break;
                }
                scan(j, &mut seen);
            }
            for &v2 in &seen {
                *counts.entry((ui.vp, v2)).or_insert(0) += 1;
            }
        }
        let mut out: Vec<((VpId, VpId), usize)> = counts.into_iter().collect();
        out.sort_unstable_by_key(|&(pair, _)| pair);
        out
    }

    fn vp_pair_from_cover(
        &self,
        covers: impl IntoIterator<Item = Vec<((VpId, VpId), usize)>>,
    ) -> HashMap<(VpId, VpId), f64> {
        let mut totals: HashMap<VpId, usize> = HashMap::new();
        for u in &self.items {
            *totals.entry(u.vp).or_insert(0) += 1;
        }
        let mut covered: HashMap<(VpId, VpId), usize> = HashMap::new();
        for bucket in covers {
            for (pair, c) in bucket {
                *covered.entry(pair).or_insert(0) += c;
            }
        }
        covered
            .into_iter()
            .map(|((v1, v2), c)| ((v1, v2), c as f64 / totals[&v1] as f64))
            .collect()
    }

    /// Sparse ordered-VP-pair redundancy fractions, sequential engine:
    /// only pairs with non-zero coverage appear (missing = 0.0).
    pub fn vp_pair_redundancy_seq(&self, def: RedundancyDef) -> HashMap<(VpId, VpId), f64> {
        self.vp_pair_from_cover(
            self.buckets
                .iter()
                .map(|(_, idxs)| self.bucket_vp_cover(idxs, def)),
        )
    }

    /// Sparse ordered-VP-pair redundancy fractions, parallel engine.
    /// Coverage counts are additive across buckets, so the merge is
    /// order-insensitive; buckets are still reduced in prefix order for
    /// a deterministic execution trace.
    pub fn vp_pair_redundancy(&self, def: RedundancyDef) -> HashMap<(VpId, VpId), f64> {
        let covers: Vec<Vec<((VpId, VpId), usize)>> = self
            .buckets
            .par_iter()
            .map(|(_, idxs)| self.bucket_vp_cover(idxs, def))
            .collect();
        self.vp_pair_from_cover(covers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redundancy::{self, RedundancyDef};
    use bgp_types::{Asn, UpdateBuilder};

    fn upd(vp: u32, t_ms: u64, pfx: u32, path: &[u32], comms: &[(u16, u16)]) -> BgpUpdate {
        let mut b = UpdateBuilder::announce(VpId::from_asn(Asn(vp)), Prefix::synthetic(pfx))
            .at(Timestamp::from_millis(t_ms))
            .path(path.iter().copied());
        for &(a, c) in comms {
            b = b.community(a, c);
        }
        b.build()
    }

    fn mixed_stream() -> Vec<BgpUpdate> {
        let mut updates = Vec::new();
        for burst in 0..6u64 {
            let t = burst * 700_000;
            updates.push(upd(1, t, 1, &[1, 9], &[(1, 1)]));
            updates.push(upd(2, t + 5_000, 1, &[2, 1, 9], &[(1, 1), (2, 2)]));
            updates.push(upd(
                3,
                t + 9_000,
                (burst % 3) as u32 + 1,
                &[3, 7],
                &[(3, 3)],
            ));
            updates.push(upd(4, t + 11_000, 2, &[4, 1, 9], &[]));
        }
        updates.sort_by_key(|u| u.time);
        updates
    }

    #[test]
    fn sorted_subset_cases() {
        assert!(sorted_subset::<u32>(&[], &[]));
        assert!(sorted_subset(&[], &[1, 2]));
        assert!(sorted_subset(&[2], &[1, 2, 3]));
        assert!(sorted_subset(&[1, 3], &[1, 2, 3]));
        assert!(!sorted_subset(&[1, 4], &[1, 2, 3]));
        assert!(!sorted_subset(&[0], &[1, 2, 3]));
        assert!(!sorted_subset(&[1, 2, 3], &[1, 2]));
    }

    #[test]
    fn prepared_conditions_match_reference() {
        let us = mixed_stream();
        let prep = PreparedUpdates::prepare(&us);
        for (i, u1) in us.iter().enumerate() {
            for (j, u2) in us.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (p1, p2) = (&prep.items()[i], &prep.items()[j]);
                assert_eq!(redundancy::condition1(u1, u2), p1.condition1(p2));
                assert_eq!(redundancy::condition2(u1, u2), p1.condition2(p2));
                assert_eq!(redundancy::condition3(u1, u2), p1.condition3(p2));
                for def in RedundancyDef::ALL {
                    assert_eq!(
                        redundancy::is_redundant_with(u1, u2, def),
                        p1.is_redundant_with(p2, def)
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_flags_equal_sequential() {
        let us = mixed_stream();
        let prep = PreparedUpdates::prepare(&us);
        for def in RedundancyDef::ALL {
            assert_eq!(prep.redundant_flags(def), prep.redundant_flags_seq(def));
        }
    }

    #[test]
    fn parallel_vp_pairs_equal_sequential_and_are_sparse() {
        let us = mixed_stream();
        let prep = PreparedUpdates::prepare(&us);
        for def in RedundancyDef::ALL {
            let par = prep.vp_pair_redundancy(def);
            let seq = prep.vp_pair_redundancy_seq(def);
            assert_eq!(par.len(), seq.len());
            for (k, v) in &par {
                assert_eq!(seq[k], *v, "pair {k:?}");
                assert!(*v > 0.0, "sparse map must not carry zero entries");
            }
        }
    }

    #[test]
    fn empty_stream() {
        let prep = PreparedUpdates::prepare(&[]);
        assert!(prep.is_empty());
        assert!(prep.redundant_flags(RedundancyDef::Def3).is_empty());
        assert!(prep.vp_pair_redundancy(RedundancyDef::Def3).is_empty());
    }
}
