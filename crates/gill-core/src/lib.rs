//! GILL's core algorithms — the paper's primary contribution.
//!
//! * [`redundancy`] — the three redundancy definitions of §4.2 and the
//!   update-level / VP-level redundancy measurements (Fig. 6).
//! * [`prepared`] — interned update feature-sets and the parallel
//!   redundancy engines the measurements above delegate to.
//! * [`corrgroups`] — correlation groups (§17.1, Step 1 of component #1).
//! * [`reconstitution`] — reconstitution power and redundant-update
//!   inference (§17.2–§17.3, Steps 2–3 of component #1).
//! * [`anchors`] — anchor-VP selection (§18, component #2): event
//!   detection, balanced stratification, feature deltas, redundancy
//!   scores, greedy volume-aware selection.
//! * [`filters`] — `(VP, prefix)` filter generation and the finer-grained
//!   GILL-asp / GILL-asp-comm ablation variants (§7).
//! * [`compiled`] — the immutable compiled filter representation and the
//!   epoch-swapped `FilterHandle`/`FilterView` the daemon hot path reads.
//! * [`analysis`] — the end-to-end pipeline gluing both components and the
//!   filter generator together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod anchors;
pub mod compiled;
pub mod corrgroups;
pub mod filters;
pub mod prepared;
pub mod reconstitution;
pub mod redundancy;

pub use analysis::{GillAnalysis, GillConfig};
pub use anchors::{
    category_matrix, detect_events, greedy_select, redundancy_scores, select_anchors,
    stratify_events, AnchorConfig, AnchorSelection, ObservedEvent, ObservedEventKind,
};
pub use compiled::{BuildMeta, CompiledFilters, CompiledRule, FilterHandle, FilterView};
pub use corrgroups::{build_correlation_groups, CorrelationGroup, PrefixGroups, UpdateAttrs};
pub use filters::{DropRule, FilterGranularity, FilterSet};
pub use prepared::{sorted_subset, PreparedUpdate, PreparedUpdates};
pub use reconstitution::{
    find_redundant_updates, reconstitution_power, select_vps_for_prefix, Component1Result,
    DEFAULT_RECONSTITUTION_TARGET,
};
pub use redundancy::{
    condition1, condition2, condition3, is_redundant_with, redundant_flags, redundant_flags_seq,
    redundant_fraction, redundant_vp_fraction, vp_pair_redundancy, vp_pair_redundancy_seq,
    RedundancyDef, VP_REDUNDANCY_SHARE,
};
