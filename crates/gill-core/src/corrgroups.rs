//! Correlation groups (§17.1 — Step 1 of component #1).
//!
//! For each prefix, GILL groups updates that appear together within a short
//! time window into *correlation groups*. Within a group an update is
//! identified by its sending VP, AS path and community values (all group
//! members share the prefix). Each time the same attribute set re-appears
//! as a burst, the group's weight increases.

use bgp_types::{AsPath, BgpUpdate, Community, Prefix, Timestamp, VpId, TIME_SLACK_MILLIS};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The identity of an update inside a correlation group: sending VP, AS
/// path, and communities (prefix and time are factored out).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UpdateAttrs {
    /// Sending vantage point.
    pub vp: VpId,
    /// AS path (empty for withdrawals).
    pub path: AsPath,
    /// Community set.
    pub communities: BTreeSet<Community>,
}

impl UpdateAttrs {
    /// Extracts the attributes of an update.
    pub fn of(u: &BgpUpdate) -> Self {
        UpdateAttrs {
            vp: u.vp,
            path: u.path.clone(),
            communities: u.communities.clone(),
        }
    }
}

/// Interned attribute id (index into [`PrefixGroups::attrs`]).
pub type AttrId = u32;

/// One correlation group: a set of update attributes that appear together,
/// with the number of times the exact set was observed as a burst.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorrelationGroup {
    /// Interned attribute ids of the group members.
    pub members: BTreeSet<AttrId>,
    /// How many bursts produced exactly this member set.
    pub weight: u32,
}

/// All correlation groups of one prefix, with the attribute interner.
#[derive(Clone, Debug, Default)]
pub struct PrefixGroups {
    /// Interned attributes (id = index).
    pub attrs: Vec<UpdateAttrs>,
    lookup: HashMap<UpdateAttrs, AttrId>,
    /// The groups.
    pub groups: Vec<CorrelationGroup>,
    /// For each attribute, the groups containing it (the `Corr(p, u)` map).
    pub groups_of_attr: HashMap<AttrId, Vec<usize>>,
}

impl PrefixGroups {
    /// Interns an attribute set.
    pub fn intern(&mut self, a: UpdateAttrs) -> AttrId {
        if let Some(&id) = self.lookup.get(&a) {
            return id;
        }
        let id = self.attrs.len() as AttrId;
        self.attrs.push(a.clone());
        self.lookup.insert(a, id);
        id
    }

    /// Looks up an already-interned attribute set.
    pub fn attr_id(&self, a: &UpdateAttrs) -> Option<AttrId> {
        self.lookup.get(a).copied()
    }

    /// The groups containing `attr`, highest weight first.
    pub fn groups_containing(&self, attr: AttrId) -> Vec<&CorrelationGroup> {
        let mut gs: Vec<&CorrelationGroup> = self
            .groups_of_attr
            .get(&attr)
            .map(|ids| ids.iter().map(|&i| &self.groups[i]).collect())
            .unwrap_or_default();
        gs.sort_by(|a, b| {
            b.weight
                .cmp(&a.weight)
                .then_with(|| a.members.cmp(&b.members))
        });
        gs
    }

    /// The highest-weight group containing `attr` (`maxweight(Corr(p, u))`,
    /// §17.2). Deterministic tie-break: smallest member set.
    pub fn max_weight_group(&self, attr: AttrId) -> Option<&CorrelationGroup> {
        self.groups_containing(attr).into_iter().next()
    }

    fn add_burst(&mut self, members: BTreeSet<AttrId>) {
        if members.is_empty() {
            return;
        }
        // Same member set seen before → bump weight.
        if let Some(g) = self.groups.iter_mut().find(|g| g.members == members) {
            g.weight += 1;
            return;
        }
        let idx = self.groups.len();
        for &m in &members {
            self.groups_of_attr.entry(m).or_default().push(idx);
        }
        self.groups.push(CorrelationGroup { members, weight: 1 });
    }
}

/// Correlation groups for every prefix in a (time-sorted) update slice.
///
/// Bursts are maximal runs of same-prefix updates where consecutive updates
/// are less than `window_ms` apart (default: the paper's 100 s).
pub fn build_correlation_groups(
    updates: &[BgpUpdate],
    window_ms: u64,
) -> BTreeMap<Prefix, PrefixGroups> {
    let mut per_prefix: BTreeMap<Prefix, Vec<&BgpUpdate>> = BTreeMap::new();
    for u in updates {
        per_prefix.entry(u.prefix).or_default().push(u);
    }
    let mut out = BTreeMap::new();
    for (prefix, us) in per_prefix {
        let mut pg = PrefixGroups::default();
        let mut burst: BTreeSet<AttrId> = BTreeSet::new();
        let mut last: Option<Timestamp> = None;
        for u in us {
            if let Some(prev) = last {
                if u.time.as_millis().saturating_sub(prev.as_millis()) >= window_ms {
                    pg.add_burst(std::mem::take(&mut burst));
                }
            }
            burst.insert(pg.intern(UpdateAttrs::of(u)));
            last = Some(u.time);
        }
        pg.add_burst(burst);
        out.insert(prefix, pg);
    }
    out
}

/// Default burst window: the paper's 100-second correlation slack.
pub const DEFAULT_WINDOW_MS: u64 = TIME_SLACK_MILLIS;

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Asn, UpdateBuilder};

    fn upd(vp: u32, t_s: u64, pfx: u32, path: &[u32]) -> BgpUpdate {
        UpdateBuilder::announce(VpId::from_asn(Asn(vp)), Prefix::synthetic(pfx))
            .at(Timestamp::from_secs(t_s))
            .path(path.iter().copied())
            .build()
    }

    /// The §17.1 example: four events on prefix p1 produce groups G1 (w1),
    /// G2 (w2), G3 (w1).
    #[test]
    fn fig10_example() {
        let updates = vec![
            // event 1 (T1): failure
            upd(1, 0, 1, &[2, 1, 4]),
            upd(2, 10, 1, &[6, 2, 1, 4]),
            // event 2 (T2 = 1000s): restore
            upd(1, 1000, 1, &[2, 4]),
            upd(2, 1010, 1, &[6, 2, 4]),
            // event 3 (T3 = 2000s): double failure
            upd(1, 2000, 1, &[2, 1, 4]),
            upd(2, 2010, 1, &[6, 3, 1, 4]),
            // event 4 (T4 = 3000s): restore both (same attrs as event 2)
            upd(1, 3000, 1, &[2, 4]),
            upd(2, 3010, 1, &[6, 2, 4]),
        ];
        let groups = build_correlation_groups(&updates, DEFAULT_WINDOW_MS);
        let pg = &groups[&Prefix::synthetic(1)];
        assert_eq!(pg.groups.len(), 3, "expected G1, G2, G3");
        let weights: Vec<u32> = pg.groups.iter().map(|g| g.weight).collect();
        assert_eq!(weights.iter().sum::<u32>(), 4); // four bursts
        assert!(weights.contains(&2), "G2 must have weight 2: {weights:?}");
        // every group has two members (VP1's and VP2's attrs)
        for g in &pg.groups {
            assert_eq!(g.members.len(), 2);
        }
    }

    #[test]
    fn bursts_split_on_gaps() {
        let updates = vec![
            upd(1, 0, 1, &[1, 4]),
            upd(1, 50, 1, &[1, 4]),  // same burst (gap < 100s)
            upd(1, 200, 1, &[1, 4]), // new burst (gap >= 100s)
        ];
        let groups = build_correlation_groups(&updates, DEFAULT_WINDOW_MS);
        let pg = &groups[&Prefix::synthetic(1)];
        // both bursts have identical member sets → one group, weight 2
        assert_eq!(pg.groups.len(), 1);
        assert_eq!(pg.groups[0].weight, 2);
    }

    #[test]
    fn prefixes_never_share_groups() {
        let updates = vec![upd(1, 0, 1, &[1, 4]), upd(1, 1, 2, &[1, 4])];
        let groups = build_correlation_groups(&updates, DEFAULT_WINDOW_MS);
        assert_eq!(groups.len(), 2);
        for pg in groups.values() {
            assert_eq!(pg.groups.len(), 1);
            assert_eq!(pg.groups[0].members.len(), 1);
        }
    }

    #[test]
    fn max_weight_group_is_deterministic() {
        let updates = vec![
            // burst A: {u1, u2}
            upd(1, 0, 1, &[1, 4]),
            upd(2, 1, 1, &[2, 4]),
            // burst B: {u1, u3} — same weight, contains u1 too
            upd(1, 1000, 1, &[1, 4]),
            upd(3, 1001, 1, &[3, 4]),
        ];
        let groups = build_correlation_groups(&updates, DEFAULT_WINDOW_MS);
        let pg = &groups[&Prefix::synthetic(1)];
        let u1 = pg
            .attr_id(&UpdateAttrs::of(&updates[0]))
            .expect("u1 interned");
        let g1 = pg.max_weight_group(u1).unwrap().clone();
        let g2 = pg.max_weight_group(u1).unwrap().clone();
        assert_eq!(g1, g2);
        assert!(g1.members.contains(&u1));
    }

    #[test]
    fn identical_updates_in_one_burst_dedupe() {
        let updates = vec![
            upd(1, 0, 1, &[1, 4]),
            upd(1, 2, 1, &[1, 4]), // duplicate announcement
        ];
        let groups = build_correlation_groups(&updates, DEFAULT_WINDOW_MS);
        let pg = &groups[&Prefix::synthetic(1)];
        assert_eq!(pg.groups.len(), 1);
        assert_eq!(pg.groups[0].members.len(), 1);
    }

    #[test]
    fn empty_input() {
        let groups = build_correlation_groups(&[], DEFAULT_WINDOW_MS);
        assert!(groups.is_empty());
    }
}
