//! Reconstitution power and redundant-update inference
//! (§17.2–§17.3 — Steps 2 and 3 of component #1).
//!
//! If a set of updates `V` can be identically reconstituted from a subset
//! `U ⊆ V`, then `U` carries the useful information and `V \ U` is
//! redundant. Reconstituting from an update `u` means emitting every member
//! of the highest-weight correlation group containing `u`, stamped with
//! `u`'s timestamp; a reconstituted update *matches* an actual update when
//! all attributes are equal and the timestamps are within the 100 s slack.
//!
//! GILL builds `U` per prefix by greedily adding **all updates of one VP at
//! a time** (filters can only match on VP and prefix, §7) until the
//! reconstitution power reaches the 0.94 target, then removes cross-prefix
//! duplicates: per-VP update subsets that are identical across prefixes
//! (same paths, communities and — up to slack — times) keep only one
//! representative prefix.

use crate::corrgroups::{build_correlation_groups, PrefixGroups, UpdateAttrs};
use bgp_types::{BgpUpdate, Prefix, Timestamp, VpId, TIME_SLACK_MILLIS};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The paper's stop threshold: keep adding VPs until 94 % of the updates
/// can be reconstituted (§17.2, Fig. 11).
pub const DEFAULT_RECONSTITUTION_TARGET: f64 = 0.94;

/// Result of component #1 on one update set.
#[derive(Clone, Debug, Default)]
pub struct Component1Result {
    /// `(vp, prefix)` pairs whose updates are kept (nonredundant).
    pub kept: BTreeSet<(VpId, Prefix)>,
    /// Per input update: `true` if classified redundant.
    pub redundant: Vec<bool>,
    /// Reconstitution power reached per prefix.
    pub rp: BTreeMap<Prefix, f64>,
}

impl Component1Result {
    /// Fraction of updates classified redundant (`1 − |U|/|V|`).
    pub fn redundant_fraction(&self) -> f64 {
        if self.redundant.is_empty() {
            return 0.0;
        }
        self.redundant.iter().filter(|&&r| r).count() as f64 / self.redundant.len() as f64
    }

    /// `|U|/|V|` — the retained fraction.
    pub fn retained_fraction(&self) -> f64 {
        1.0 - self.redundant_fraction()
    }
}

/// Reconstitution power of keeping `kept_vps` for one prefix.
///
/// `items` are the prefix's updates as `(vp, attr, time, index)` with
/// `index` into a dense 0..n numbering.
fn coverage_of_vp(
    pg: &PrefixGroups,
    items: &[(VpId, u32, Timestamp)],
    by_attr: &HashMap<u32, Vec<(u64, usize)>>,
    vp: VpId,
) -> Vec<bool> {
    let mut covered = vec![false; items.len()];
    for &(v, attr, t) in items {
        if v != vp {
            continue;
        }
        if let Some(g) = pg.max_weight_group(attr) {
            for &m in &g.members {
                if let Some(times) = by_attr.get(&m) {
                    for &(tm, idx) in times {
                        if tm.abs_diff(t.as_millis()) < TIME_SLACK_MILLIS {
                            covered[idx] = true;
                        }
                    }
                }
            }
        }
    }
    covered
}

/// Computes the reconstitution power achieved by a set of kept VPs on one
/// prefix's updates (exposed for the Fig. 11 harness).
pub fn reconstitution_power(
    pg: &PrefixGroups,
    updates: &[&BgpUpdate],
    kept_vps: &BTreeSet<VpId>,
) -> f64 {
    if updates.is_empty() {
        return 1.0;
    }
    let (items, by_attr) = index_items(pg, updates);
    let mut covered = vec![false; items.len()];
    for &vp in kept_vps {
        for (c, cv) in covered
            .iter_mut()
            .zip(coverage_of_vp(pg, &items, &by_attr, vp))
        {
            *c |= cv;
        }
    }
    covered.iter().filter(|&&c| c).count() as f64 / items.len() as f64
}

/// Per-update items `(vp, attr id, time)` plus an attr → occurrence index.
type IndexedItems = (Vec<(VpId, u32, Timestamp)>, HashMap<u32, Vec<(u64, usize)>>);

fn index_items(pg: &PrefixGroups, updates: &[&BgpUpdate]) -> IndexedItems {
    let mut items = Vec::with_capacity(updates.len());
    let mut by_attr: HashMap<u32, Vec<(u64, usize)>> = HashMap::new();
    for (idx, u) in updates.iter().enumerate() {
        let attr = pg
            .attr_id(&UpdateAttrs::of(u))
            .expect("updates must be the ones the groups were built from");
        items.push((u.vp, attr, u.time));
        by_attr
            .entry(attr)
            .or_default()
            .push((u.time.as_millis(), idx));
    }
    (items, by_attr)
}

/// Greedy per-prefix VP selection: returns the kept VPs and the achieved
/// reconstitution power. Adds the VP with the largest marginal coverage
/// until `target` is reached (ties: fewer updates, then lower VP id).
pub fn select_vps_for_prefix(
    pg: &PrefixGroups,
    updates: &[&BgpUpdate],
    target: f64,
) -> (Vec<VpId>, f64) {
    if updates.is_empty() {
        return (Vec::new(), 1.0);
    }
    let (items, by_attr) = index_items(pg, updates);
    let mut vps: Vec<VpId> = items.iter().map(|&(v, _, _)| v).collect();
    vps.sort_unstable();
    vps.dedup();
    let mut upd_count: HashMap<VpId, usize> = HashMap::new();
    for &(v, _, _) in &items {
        *upd_count.entry(v).or_insert(0) += 1;
    }
    // Coverage is additive over kept updates, so precompute per VP.
    let cov: HashMap<VpId, Vec<bool>> = vps
        .iter()
        .map(|&v| (v, coverage_of_vp(pg, &items, &by_attr, v)))
        .collect();
    let mut covered = vec![false; items.len()];
    let mut kept: Vec<VpId> = Vec::new();
    let total = items.len() as f64;
    loop {
        let rp = covered.iter().filter(|&&c| c).count() as f64 / total;
        if rp >= target {
            return (kept, rp);
        }
        // best marginal gain
        let mut best: Option<(usize, usize, VpId)> = None; // (gain, -count via cmp, vp)
        for &v in &vps {
            if kept.contains(&v) {
                continue;
            }
            let gain = cov[&v]
                .iter()
                .zip(&covered)
                .filter(|&(&c, &already)| c && !already)
                .count();
            let cand = (gain, usize::MAX - upd_count[&v], v);
            let better = match &best {
                None => true,
                Some((bg, bc, bv)) => {
                    (cand.0, cand.1) > (*bg, *bc) || ((cand.0, cand.1) == (*bg, *bc) && v < *bv)
                }
            };
            if better && gain > 0 {
                best = Some(cand);
            }
        }
        match best {
            Some((_, _, v)) => {
                for (c, cv) in covered.iter_mut().zip(&cov[&v]) {
                    *c |= cv;
                }
                kept.push(v);
            }
            None => {
                let rp = covered.iter().filter(|&&c| c).count() as f64 / total;
                return (kept, rp);
            }
        }
    }
}

/// Runs component #1 end to end: correlation groups (Step 1), per-prefix
/// greedy selection (Step 2), cross-prefix dedup (Step 3). `updates` must
/// be time-sorted.
pub fn find_redundant_updates(
    updates: &[BgpUpdate],
    window_ms: u64,
    target: f64,
) -> Component1Result {
    let groups = build_correlation_groups(updates, window_ms);
    let mut per_prefix: BTreeMap<Prefix, Vec<&BgpUpdate>> = BTreeMap::new();
    for u in updates {
        per_prefix.entry(u.prefix).or_default().push(u);
    }
    // Step 2 is independent per prefix: fan the greedy selections out
    // across threads, then fold the results back in prefix order (the
    // BTreeMap iteration order), keeping the output deterministic.
    use rayon::prelude::*;
    let prefix_results: Vec<(Prefix, Vec<VpId>, f64)> = per_prefix
        .iter()
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(prefix, us)| {
            let pg = &groups[prefix];
            let (vps, rp) = select_vps_for_prefix(pg, us, target);
            (*prefix, vps, rp)
        })
        .collect();
    let mut kept: BTreeSet<(VpId, Prefix)> = BTreeSet::new();
    let mut rp_out = BTreeMap::new();
    for (prefix, vps, rp) in prefix_results {
        rp_out.insert(prefix, rp);
        for v in vps {
            kept.insert((v, prefix));
        }
    }

    // ---- Step 3: cross-prefix dedup ------------------------------------
    // Signature of the kept (vp, prefix) subset: the multiset of
    // (path, communities, time bucket); identical subsets of the same VP
    // across prefixes keep only the lowest prefix.
    type Sig = Vec<(bgp_types::AsPath, Vec<bgp_types::Community>, u64)>;
    let mut sigs: HashMap<(VpId, Sig), Vec<Prefix>> = HashMap::new();
    for (prefix, us) in &per_prefix {
        let mut by_vp: BTreeMap<VpId, Sig> = BTreeMap::new();
        for u in us {
            if kept.contains(&(u.vp, *prefix)) {
                by_vp.entry(u.vp).or_default().push((
                    u.path.clone(),
                    u.communities.iter().copied().collect(),
                    u.time.as_millis() / TIME_SLACK_MILLIS,
                ));
            }
        }
        for (vp, mut sig) in by_vp {
            sig.sort();
            sigs.entry((vp, sig)).or_default().push(*prefix);
        }
    }
    for ((vp, _), mut prefixes) in sigs {
        if prefixes.len() <= 1 {
            continue;
        }
        prefixes.sort();
        for p in prefixes.into_iter().skip(1) {
            kept.remove(&(vp, p));
        }
    }

    let redundant = updates
        .iter()
        .map(|u| !kept.contains(&(u.vp, u.prefix)))
        .collect();
    Component1Result {
        kept,
        redundant,
        rp: rp_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corrgroups::DEFAULT_WINDOW_MS;
    use bgp_types::{Asn, UpdateBuilder};

    fn upd(vp: u32, t_s: u64, pfx: u32, path: &[u32]) -> BgpUpdate {
        UpdateBuilder::announce(VpId::from_asn(Asn(vp)), Prefix::synthetic(pfx))
            .at(Timestamp::from_secs(t_s))
            .path(path.iter().copied())
            .build()
    }

    fn vp(n: u32) -> VpId {
        VpId::from_asn(Asn(n))
    }

    /// The §17.2 worked example: keeping VP2's four updates reconstitutes
    /// all eight, but keeping VP1's cannot (U1/U5 are ambiguous).
    fn fig10_updates() -> Vec<BgpUpdate> {
        vec![
            upd(1, 0, 1, &[2, 1, 4]),       // U1 (G1)
            upd(2, 10, 1, &[6, 2, 1, 4]),   // U2 (G1)
            upd(1, 1000, 1, &[2, 4]),       // U3 (G2)
            upd(2, 1010, 1, &[6, 2, 4]),    // U4 (G2)
            upd(1, 2000, 1, &[2, 1, 4]),    // U5 (G3, same attrs as U1)
            upd(2, 2010, 1, &[6, 3, 1, 4]), // U6 (G3)
            upd(1, 3000, 1, &[2, 4]),       // U7 (G2 again)
            upd(2, 3010, 1, &[6, 2, 4]),    // U8 (G2)
        ]
    }

    #[test]
    fn fig10_vp2_reconstitutes_everything() {
        let updates = fig10_updates();
        let groups = build_correlation_groups(&updates, DEFAULT_WINDOW_MS);
        let pg = &groups[&Prefix::synthetic(1)];
        let refs: Vec<&BgpUpdate> = updates.iter().collect();
        let rp2 = reconstitution_power(pg, &refs, &[vp(2)].into_iter().collect());
        assert!(
            (rp2 - 1.0).abs() < 1e-9,
            "VP2 alone must reach RP 1, got {rp2}"
        );
        let rp1 = reconstitution_power(pg, &refs, &[vp(1)].into_iter().collect());
        assert!(rp1 < 1.0, "VP1 alone must be ambiguous, got {rp1}");
    }

    #[test]
    fn fig10_greedy_selects_vp2() {
        let updates = fig10_updates();
        let groups = build_correlation_groups(&updates, DEFAULT_WINDOW_MS);
        let pg = &groups[&Prefix::synthetic(1)];
        let refs: Vec<&BgpUpdate> = updates.iter().collect();
        let (kept, rp) = select_vps_for_prefix(pg, &refs, 0.94);
        assert!(kept.contains(&vp(2)), "greedy must pick VP2: {kept:?}");
        assert_eq!(kept.len(), 1);
        assert!(rp >= 0.94);
    }

    #[test]
    fn all_or_none_per_vp() {
        let updates = fig10_updates();
        let res = find_redundant_updates(&updates, DEFAULT_WINDOW_MS, 0.94);
        // all of VP1's updates share one classification, same for VP2
        let p = Prefix::synthetic(1);
        for u in &updates {
            let classified_kept = res.kept.contains(&(u.vp, p));
            let flag = res.redundant[updates.iter().position(|x| x == u).unwrap()];
            assert_eq!(flag, !classified_kept);
        }
        // VP2 kept, VP1 dropped
        assert!(res.kept.contains(&(vp(2), p)));
        assert!(!res.kept.contains(&(vp(1), p)));
        assert!((res.redundant_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn target_one_keeps_more_vps() {
        let updates = fig10_updates();
        let groups = build_correlation_groups(&updates, DEFAULT_WINDOW_MS);
        let pg = &groups[&Prefix::synthetic(1)];
        let refs: Vec<&BgpUpdate> = updates.iter().collect();
        let (kept_94, _) = select_vps_for_prefix(pg, &refs, 0.94);
        let (kept_all, rp) = select_vps_for_prefix(pg, &refs, 1.01); // unreachable target
        assert!(kept_all.len() >= kept_94.len());
        assert!(rp <= 1.0);
    }

    #[test]
    fn cross_prefix_dedup_drops_duplicate_prefix() {
        // Two prefixes with *identical* update patterns from the same VPs
        // (the Fig. 5 p1/p2 situation) → step 3 keeps only one.
        let mut updates = Vec::new();
        for pfx in [1u32, 2] {
            updates.push(upd(1, 0, pfx, &[2, 1, 4]));
            updates.push(upd(2, 10, pfx, &[6, 2, 1, 4]));
            updates.push(upd(1, 1000, pfx, &[2, 4]));
            updates.push(upd(2, 1010, pfx, &[6, 2, 4]));
        }
        updates.sort_by_key(|u| u.time);
        let res = find_redundant_updates(&updates, DEFAULT_WINDOW_MS, 0.94);
        let kept_p1 = res.kept.iter().any(|(_, p)| *p == Prefix::synthetic(1));
        let kept_p2 = res.kept.iter().any(|(_, p)| *p == Prefix::synthetic(2));
        assert!(
            kept_p1 ^ kept_p2,
            "exactly one of the twin prefixes survives"
        );
    }

    #[test]
    fn distinct_prefix_behaviour_is_not_deduped() {
        let mut updates = vec![
            upd(1, 0, 1, &[2, 1, 4]),
            upd(1, 0, 2, &[2, 9, 4]), // different path
        ];
        updates.sort_by_key(|u| u.time);
        let res = find_redundant_updates(&updates, DEFAULT_WINDOW_MS, 0.94);
        assert!(res.kept.contains(&(vp(1), Prefix::synthetic(1))));
        assert!(res.kept.contains(&(vp(1), Prefix::synthetic(2))));
    }

    #[test]
    fn empty_input_is_fine() {
        let res = find_redundant_updates(&[], DEFAULT_WINDOW_MS, 0.94);
        assert!(res.kept.is_empty());
        assert_eq!(res.redundant_fraction(), 0.0);
    }

    #[test]
    fn retained_fraction_decreases_with_more_redundant_vps() {
        // 2 VPs mirroring each other vs 6 VPs mirroring each other: the
        // more VPs see the same thing, the larger the discarded share.
        let mk = |nvps: u32| {
            let mut updates = Vec::new();
            for burst in 0..4u64 {
                for v in 1..=nvps {
                    updates.push(upd(v, burst * 1000, 1, &[v, 1, 4]));
                }
            }
            updates.sort_by_key(|u| u.time);
            find_redundant_updates(&updates, DEFAULT_WINDOW_MS, 0.94).redundant_fraction()
        };
        // NOTE: distinct first hops mean VPs are NOT mutually reconstituting
        // here unless grouped; with stable groups each VP's update implies
        // the others, so one VP suffices either way:
        let f2 = mk(2);
        let f6 = mk(6);
        assert!(f6 >= f2, "{f6} vs {f2}");
        assert!(f6 > 0.5);
    }
}
