//! Anchor-VP selection (§18 — component #2).
//!
//! GILL keeps *all* updates from a small set of anchor VPs. Anchors are
//! chosen by quantifying how similarly VPs experience routing events:
//!
//! 1. **Event selection** (§18.1): detect non-global events (new links,
//!    outages, origin changes) in the collected data, then stratify the
//!    sample across the five AS categories of Table 5 and across time.
//! 2. **Characterization** (§18.2): for each event and VP, compute the
//!    delta the event induces on the topological features of the VP's
//!    route graph.
//! 3. **Scoring** (§18.3): standard-scale the per-event feature matrix,
//!    take pairwise (squared) Euclidean distances, average over events,
//!    and min-max-flip into redundancy scores in `[0, 1]`.
//! 4. **Selection** (§18.4): start from the most redundant VP, then
//!    greedily add — among the γ = 10 % least-redundant candidates — the
//!    one with the lowest data volume, until every remaining VP is
//!    (nearly) fully redundant with a selected one.

use as_topology::features::FEATURE_DIM;
use as_topology::{AsCategory, WeightedDigraph};
use bgp_types::{Asn, BgpUpdate, Link, Rib, Timestamp, VpId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The kinds of non-global events used to gauge VP redundancy (§18.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ObservedEventKind {
    /// A link appeared in at least one VP's view.
    NewLink,
    /// A link disappeared from at least one VP's view.
    Outage,
    /// A prefix's origin AS changed.
    OriginChange,
}

impl ObservedEventKind {
    /// All kinds.
    pub const ALL: [ObservedEventKind; 3] = [
        ObservedEventKind::NewLink,
        ObservedEventKind::Outage,
        ObservedEventKind::OriginChange,
    ];
}

/// A data-derived (not ground-truth) event, as GILL's orchestrator infers
/// it from the collected updates.
#[derive(Clone, Debug)]
pub struct ObservedEvent {
    /// Event class.
    pub kind: ObservedEventKind,
    /// First involved AS (link endpoint / old origin).
    pub as1: Asn,
    /// Second involved AS (link endpoint / new origin).
    pub as2: Asn,
    /// First observation time.
    pub start: Timestamp,
    /// Last observation time.
    pub end: Timestamp,
    /// How many distinct VPs observed it.
    pub vp_count: usize,
}

/// Configuration of anchor selection.
#[derive(Clone, Debug)]
pub struct AnchorConfig {
    /// Events kept per (category-pair, kind) cell (paper: 50, yielding
    /// 15 × 3 × 50 = 2250).
    pub events_per_cell: usize,
    /// γ — the candidate-pool fraction at each greedy step (paper: 10 %).
    pub gamma: f64,
    /// Redundancy score at which a non-selected VP counts as fully covered
    /// (the paper stops when the remaining VPs have "the highest possible"
    /// score with a selected VP; scores are min-max scaled so we use a
    /// high threshold instead of exactly 1).
    pub stop_threshold: f64,
    /// Events seen by more than this fraction of VPs are global and skipped.
    pub max_visibility: f64,
    /// Hop radius for the distance-based features.
    pub feature_radius: usize,
    /// Observations of the same (kind, ASes) within this window merge into
    /// one event.
    pub merge_window_ms: u64,
    /// Hard cap on the number of anchors (safety valve; the paper has none).
    pub max_anchors: usize,
}

impl Default for AnchorConfig {
    fn default() -> Self {
        AnchorConfig {
            events_per_cell: 50,
            gamma: 0.10,
            stop_threshold: 0.95,
            max_visibility: 0.5,
            feature_radius: 2,
            merge_window_ms: 300_000,
            max_anchors: usize::MAX,
        }
    }
}

/// The outcome of anchor selection.
#[derive(Clone, Debug)]
pub struct AnchorSelection {
    /// Selected anchor VPs, in selection order.
    pub anchors: Vec<VpId>,
    /// Pairwise redundancy scores in `[0, 1]` (1 = most redundant pair).
    pub scores: HashMap<(VpId, VpId), f64>,
    /// Number of events that fed the scores.
    pub events_used: usize,
}

impl AnchorSelection {
    /// Whether `vp` was selected.
    pub fn is_anchor(&self, vp: VpId) -> bool {
        self.anchors.contains(&vp)
    }
}

// ---------------------------------------------------------------------------
// Step 1a: event detection
// ---------------------------------------------------------------------------

/// Detects candidate events in a time-sorted update stream, replaying each
/// VP's RIB from `initial_ribs` and watching per-VP link reference counts
/// and per-prefix origins.
pub fn detect_events(
    updates: &[BgpUpdate],
    initial_ribs: &HashMap<VpId, Rib>,
    vp_total: usize,
    merge_window_ms: u64,
) -> Vec<ObservedEvent> {
    // Per-VP state: link refcounts and per-prefix origin.
    struct VpState {
        rib: Rib,
        link_refs: HashMap<Link, u32>,
    }
    let mut state: HashMap<VpId, VpState> = HashMap::new();
    for (vp, rib) in initial_ribs {
        let mut link_refs: HashMap<Link, u32> = HashMap::new();
        for (_, entry) in rib.iter() {
            for l in entry.path.links() {
                *link_refs.entry(l).or_insert(0) += 1;
            }
        }
        state.insert(
            *vp,
            VpState {
                rib: rib.clone(),
                link_refs,
            },
        );
    }

    // Raw observations keyed by (kind, a, b): list of (time, vp).
    let mut obs: BTreeMap<(ObservedEventKind, Asn, Asn), Vec<(Timestamp, VpId)>> = BTreeMap::new();
    for u in updates {
        let st = state.entry(u.vp).or_insert_with(|| VpState {
            rib: Rib::new(),
            link_refs: HashMap::new(),
        });
        let old_origin = st.rib.get(&u.prefix).and_then(|e| e.path.origin());
        let mut uu = u.clone();
        st.rib.apply(&mut uu);
        // links removed by this update
        for l in &uu.withdrawn_links {
            let c = st.link_refs.entry(*l).or_insert(0);
            *c = c.saturating_sub(1);
            if *c == 0 {
                let (x, y) = und(l);
                obs.entry((ObservedEventKind::Outage, x, y))
                    .or_default()
                    .push((u.time, u.vp));
            }
        }
        // links added
        for l in u.path.links() {
            if uu.withdrawn_links.contains(&l) {
                continue;
            }
            let c = st.link_refs.entry(l).or_insert(0);
            if *c == 0 {
                let (x, y) = und(&l);
                obs.entry((ObservedEventKind::NewLink, x, y))
                    .or_default()
                    .push((u.time, u.vp));
            }
            *c += 1;
        }
        // origin change
        if let (Some(old), Some(new)) = (old_origin, u.path.origin()) {
            if old != new {
                let (x, y) = if old <= new { (old, new) } else { (new, old) };
                obs.entry((ObservedEventKind::OriginChange, x, y))
                    .or_default()
                    .push((u.time, u.vp));
            }
        }
    }

    // Merge observations into events within the window.
    let mut events = Vec::new();
    for ((kind, a, b), mut hits) in obs {
        hits.sort();
        let mut i = 0;
        while i < hits.len() {
            let start = hits[i].0;
            let mut end = start;
            let mut vps: BTreeSet<VpId> = BTreeSet::new();
            while i < hits.len() && hits[i].0.as_millis() <= end.as_millis() + merge_window_ms {
                end = hits[i].0;
                vps.insert(hits[i].1);
                i += 1;
            }
            events.push(ObservedEvent {
                kind,
                as1: a,
                as2: b,
                start,
                end,
                vp_count: vps.len().min(vp_total.max(1)),
            });
        }
    }
    events.sort_by_key(|e| e.start);
    events
}

fn und(l: &Link) -> (Asn, Asn) {
    let u = l.undirected();
    (u.from, u.to)
}

// ---------------------------------------------------------------------------
// Step 1b: stratified selection
// ---------------------------------------------------------------------------

/// Category pair key, unordered (Table 5 IDs, lower first).
fn cat_pair(c1: AsCategory, c2: AsCategory) -> (u8, u8) {
    let (a, b) = (c1.id(), c2.id());
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Balanced event selection (§18.1): keep only non-global events and take
/// up to `per_cell` events for each (category-pair, kind) cell, stratified
/// across time (evenly spaced picks from the time-sorted cell).
pub fn stratify_events(
    events: &[ObservedEvent],
    categories: &HashMap<Asn, AsCategory>,
    vp_total: usize,
    per_cell: usize,
    max_visibility: f64,
) -> Vec<ObservedEvent> {
    let mut cells: BTreeMap<((u8, u8), ObservedEventKind), Vec<&ObservedEvent>> = BTreeMap::new();
    for e in events {
        if vp_total > 0 && (e.vp_count as f64 / vp_total as f64) > max_visibility {
            continue; // global event
        }
        if e.vp_count == 0 {
            continue;
        }
        let c1 = categories.get(&e.as1).copied().unwrap_or(AsCategory::Stub);
        let c2 = categories.get(&e.as2).copied().unwrap_or(AsCategory::Stub);
        cells.entry((cat_pair(c1, c2), e.kind)).or_default().push(e);
    }
    let mut out = Vec::new();
    for (_, mut cell) in cells {
        cell.sort_by_key(|e| e.start);
        if cell.len() <= per_cell {
            out.extend(cell.into_iter().cloned());
        } else {
            // evenly spaced in time order
            for k in 0..per_cell {
                let idx = k * cell.len() / per_cell;
                out.push(cell[idx].clone());
            }
        }
    }
    out.sort_by_key(|e| e.start);
    out
}

/// The 5×5 share matrix of selected events per category pair (Fig. 12).
/// Entry `[i][j]` is the fraction of events whose AS pair falls in
/// categories `(i+1, j+1)`; the matrix is symmetric.
pub fn category_matrix(
    events: &[ObservedEvent],
    categories: &HashMap<Asn, AsCategory>,
) -> [[f64; 5]; 5] {
    let mut m = [[0.0f64; 5]; 5];
    if events.is_empty() {
        return m;
    }
    for e in events {
        let c1 = categories.get(&e.as1).copied().unwrap_or(AsCategory::Stub);
        let c2 = categories.get(&e.as2).copied().unwrap_or(AsCategory::Stub);
        let (i, j) = (c1.id() as usize - 1, c2.id() as usize - 1);
        m[i][j] += 1.0;
        if i != j {
            m[j][i] += 1.0;
        }
    }
    let total: f64 = events.len() as f64;
    for row in &mut m {
        for v in row.iter_mut() {
            *v /= total;
        }
    }
    m
}

// ---------------------------------------------------------------------------
// Steps 2–3: features and scores
// ---------------------------------------------------------------------------

/// Computes pairwise redundancy scores between VPs (§18.2–§18.3) from a set
/// of selected events: per event, the feature-delta matrix is
/// standard-scaled and squared-Euclidean pairwise distances are averaged
/// over events, then flipped into `[0, 1]` with a min-max scaler.
pub fn redundancy_scores(
    events: &[ObservedEvent],
    updates: &[BgpUpdate],
    initial_ribs: &HashMap<VpId, Rib>,
    vps: &[VpId],
    feature_radius: usize,
) -> HashMap<(VpId, VpId), f64> {
    let nv = vps.len();
    let mut scores: HashMap<(VpId, VpId), f64> = HashMap::new();
    if nv < 2 || events.is_empty() {
        return scores;
    }
    // Boundaries at which feature vectors must be sampled.
    #[derive(Clone, Copy)]
    struct Boundary {
        time: Timestamp,
        event: usize,
        is_start: bool,
    }
    let mut boundaries: Vec<Boundary> = Vec::with_capacity(events.len() * 2);
    for (i, e) in events.iter().enumerate() {
        boundaries.push(Boundary {
            // sample "just before" the first observation
            time: Timestamp::from_millis(e.start.as_millis().saturating_sub(1)),
            event: i,
            is_start: true,
        });
        boundaries.push(Boundary {
            time: Timestamp::from_millis(e.end.as_millis() + 1),
            event: i,
            is_start: false,
        });
    }
    boundaries.sort_by_key(|b| b.time);

    // Per-VP route graph + RIB replay.
    let mut graphs: HashMap<VpId, WeightedDigraph> = HashMap::new();
    let mut ribs: HashMap<VpId, Rib> = HashMap::new();
    for &vp in vps {
        let rib = initial_ribs.get(&vp).cloned().unwrap_or_default();
        let mut g = WeightedDigraph::new();
        for (_, entry) in rib.iter() {
            g.add_path(&asn_path(&entry.path));
        }
        graphs.insert(vp, g);
        ribs.insert(vp, rib);
    }

    // start/end feature vectors per (event, vp index)
    let mut start_vec: Vec<Vec<[f64; FEATURE_DIM]>> = vec![Vec::new(); events.len()];
    let mut end_vec: Vec<Vec<[f64; FEATURE_DIM]>> = vec![Vec::new(); events.len()];

    let mut bi = 0usize;
    let mut ui = 0usize;
    while bi < boundaries.len() {
        let b = boundaries[bi];
        // apply updates strictly before the boundary
        while ui < updates.len() && updates[ui].time <= b.time {
            let u = &updates[ui];
            ui += 1;
            let (Some(g), Some(rib)) = (graphs.get_mut(&u.vp), ribs.get_mut(&u.vp)) else {
                continue;
            };
            if let Some(old) = rib.get(&u.prefix) {
                let old_path = asn_path(&old.path);
                g.remove_path(&old_path);
            }
            let mut uu = u.clone();
            rib.apply(&mut uu);
            if uu.is_announce() {
                g.add_path(&asn_path(&uu.path));
            }
        }
        let e = &events[b.event];
        let (a1, a2) = (e.as1.value(), e.as2.value());
        let target = if b.is_start {
            &mut start_vec[b.event]
        } else {
            &mut end_vec[b.event]
        };
        // One 15-dim vector per VP at this boundary; the per-VP graphs are
        // independent, so the batch fans out across threads (order kept).
        target.extend(as_topology::features::feature_vectors_par(
            vps.iter().map(|vp| &graphs[vp]),
            a1,
            a2,
            feature_radius,
        ));
        bi += 1;
    }

    // distance accumulation
    let mut acc = vec![vec![0.0f64; nv]; nv];
    let mut used = 0usize;
    for (s, e) in start_vec.iter().zip(&end_vec) {
        if s.len() != nv || e.len() != nv {
            continue;
        }
        used += 1;
        // T(v, e) = start - end feature delta
        let mut m: Vec<[f64; FEATURE_DIM]> = Vec::with_capacity(nv);
        for i in 0..nv {
            let mut d = [0.0; FEATURE_DIM];
            for k in 0..FEATURE_DIM {
                d[k] = s[i][k] - e[i][k];
            }
            m.push(d);
        }
        // column-wise standard scaling
        for k in 0..FEATURE_DIM {
            let mean: f64 = m.iter().map(|r| r[k]).sum::<f64>() / nv as f64;
            let var: f64 = m.iter().map(|r| (r[k] - mean).powi(2)).sum::<f64>() / nv as f64;
            let sd = var.sqrt();
            for r in m.iter_mut() {
                r[k] = if sd > 1e-12 { (r[k] - mean) / sd } else { 0.0 };
            }
        }
        for i in 0..nv {
            let (head, tail) = acc.split_at_mut(i + 1);
            let row = &mut head[i];
            let _ = tail;
            for j in (i + 1)..nv {
                let d: f64 = (0..FEATURE_DIM).map(|k| (m[i][k] - m[j][k]).powi(2)).sum();
                row[j] += d;
            }
        }
    }
    if used == 0 {
        return scores;
    }
    // average, then min-max flip (acc only holds the upper triangle)
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, row) in acc.iter().enumerate() {
        for &cell in row.iter().skip(i + 1) {
            let v = cell / used as f64;
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let span = (hi - lo).max(1e-12);
    // indices address both `acc` and `vps`, so a range loop is the clear form
    #[allow(clippy::needless_range_loop)]
    for i in 0..nv {
        for j in (i + 1)..nv {
            let v = acc[i][j] / used as f64;
            let r = 1.0 - (v - lo) / span;
            scores.insert((vps[i], vps[j]), r);
            scores.insert((vps[j], vps[i]), r);
        }
    }
    scores
}

fn asn_path(p: &bgp_types::AsPath) -> Vec<u32> {
    p.hops().iter().map(|a| a.value()).collect()
}

// ---------------------------------------------------------------------------
// Step 4: greedy selection
// ---------------------------------------------------------------------------

/// Greedy anchor selection (§18.4) from pairwise redundancy scores and
/// per-VP data volumes.
pub fn greedy_select(
    vps: &[VpId],
    scores: &HashMap<(VpId, VpId), f64>,
    volumes: &HashMap<VpId, usize>,
    cfg: &AnchorConfig,
) -> Vec<VpId> {
    let nv = vps.len();
    if nv == 0 {
        return Vec::new();
    }
    if nv == 1 || scores.is_empty() {
        return vec![vps[0]];
    }
    let score = |a: VpId, b: VpId| scores.get(&(a, b)).copied().unwrap_or(0.0);
    // Seed: the most redundant VP (lowest summed Euclidean distance ==
    // highest summed redundancy score).
    let seed = *vps
        .iter()
        .max_by(|&&a, &&b| {
            let sa: f64 = vps.iter().filter(|&&x| x != a).map(|&x| score(a, x)).sum();
            let sb: f64 = vps.iter().filter(|&&x| x != b).map(|&x| score(b, x)).sum();
            sa.partial_cmp(&sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.cmp(&a)) // deterministic: lower id wins ties
        })
        .unwrap();
    let mut selected = vec![seed];
    let mut remaining: Vec<VpId> = vps.iter().copied().filter(|&v| v != seed).collect();
    while !remaining.is_empty() && selected.len() < cfg.max_anchors {
        // max redundancy score of each remaining VP w.r.t. the selected set
        let mut maxred: Vec<(VpId, f64)> = remaining
            .iter()
            .map(|&v| {
                let m = selected
                    .iter()
                    .map(|&s| score(v, s))
                    .fold(f64::NEG_INFINITY, f64::max);
                (v, m)
            })
            .collect();
        // only the not-yet-covered VPs are candidates; stop when none left
        maxred.retain(|&(_, m)| m < cfg.stop_threshold);
        if maxred.is_empty() {
            break;
        }
        // candidate pool: γ of the uncovered VPs with the lowest max score
        maxred.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let pool = ((maxred.len() as f64 * cfg.gamma).ceil() as usize).clamp(1, maxred.len());
        let pick = maxred[..pool]
            .iter()
            .min_by_key(|&&(v, _)| (volumes.get(&v).copied().unwrap_or(0), v))
            .map(|&(v, _)| v)
            .unwrap();
        selected.push(pick);
        remaining.retain(|&v| v != pick);
    }
    selected
}

/// Runs component #2 end to end.
pub fn select_anchors(
    updates: &[BgpUpdate],
    initial_ribs: &HashMap<VpId, Rib>,
    vps: &[VpId],
    categories: &HashMap<Asn, AsCategory>,
    cfg: &AnchorConfig,
) -> AnchorSelection {
    let events = detect_events(updates, initial_ribs, vps.len(), cfg.merge_window_ms);
    let selected = stratify_events(
        &events,
        categories,
        vps.len(),
        cfg.events_per_cell,
        cfg.max_visibility,
    );
    let scores = redundancy_scores(&selected, updates, initial_ribs, vps, cfg.feature_radius);
    let mut volumes: HashMap<VpId, usize> = HashMap::new();
    for u in updates {
        *volumes.entry(u.vp).or_insert(0) += 1;
    }
    let anchors = greedy_select(vps, &scores, &volumes, cfg);
    AnchorSelection {
        anchors,
        scores,
        events_used: selected.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    fn mk_stream(
        n: usize,
        frac: f64,
        events: usize,
        seed: u64,
    ) -> (bgp_sim::UpdateStream, HashMap<Asn, AsCategory>) {
        let topo = TopologyBuilder::artificial(n, 5).build();
        let cats = as_topology::categories::classify(&topo);
        let map: HashMap<Asn, AsCategory> = (0..topo.num_ases() as u32)
            .map(|u| (topo.asn(u), cats[u as usize]))
            .collect();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(frac, 3);
        let s = sim.synthesize_stream(&vps, StreamConfig::default().events(events).seed(seed));
        (s, map)
    }

    #[test]
    fn detect_events_finds_outages_and_new_links() {
        let (s, _) = mk_stream(120, 0.3, 30, 1);
        let events = detect_events(&s.updates, &s.initial_ribs, s.vps.len(), 300_000);
        assert!(!events.is_empty());
        let kinds: BTreeSet<ObservedEventKind> = events.iter().map(|e| e.kind).collect();
        assert!(
            kinds.contains(&ObservedEventKind::Outage)
                || kinds.contains(&ObservedEventKind::NewLink)
        );
        for e in &events {
            assert!(e.vp_count >= 1);
            assert!(e.start <= e.end);
        }
    }

    #[test]
    fn origin_changes_are_detected() {
        let (s, _) = mk_stream(100, 0.5, 25, 2);
        let has_origin_event = s.events.iter().any(|e| {
            matches!(
                e.kind,
                bgp_sim::EventKind::OriginChange { .. }
                    | bgp_sim::EventKind::ForgedOriginHijack { .. }
            ) && e.emitted_updates > 0
        });
        let events = detect_events(&s.updates, &s.initial_ribs, s.vps.len(), 300_000);
        let detected = events
            .iter()
            .any(|e| e.kind == ObservedEventKind::OriginChange);
        if has_origin_event {
            assert!(detected, "visible origin change not detected");
        }
    }

    #[test]
    fn stratification_respects_cell_quota_and_visibility() {
        let (s, cats) = mk_stream(150, 0.4, 40, 3);
        let events = detect_events(&s.updates, &s.initial_ribs, s.vps.len(), 300_000);
        let sel = stratify_events(&events, &cats, s.vps.len(), 2, 0.5);
        // no cell exceeds quota
        let mut cell_count: HashMap<((u8, u8), ObservedEventKind), usize> = HashMap::new();
        for e in &sel {
            let c1 = cats[&e.as1];
            let c2 = cats[&e.as2];
            *cell_count.entry((cat_pair(c1, c2), e.kind)).or_insert(0) += 1;
        }
        for (&_, &c) in &cell_count {
            assert!(c <= 2);
        }
        // no global events
        for e in &sel {
            assert!((e.vp_count as f64) <= 0.5 * s.vps.len() as f64 + 1.0);
        }
    }

    #[test]
    fn category_matrix_is_normalized_and_symmetric() {
        let (s, cats) = mk_stream(120, 0.4, 30, 4);
        let events = detect_events(&s.updates, &s.initial_ribs, s.vps.len(), 300_000);
        let m = category_matrix(&events, &cats);
        for (i, row) in m.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                assert!((cell - m[j][i]).abs() < 1e-12);
                assert!(cell >= 0.0);
            }
        }
        let diag: f64 = (0..5).map(|i| m[i][i]).sum();
        let upper: f64 = (0..5)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .map(|(i, j)| m[i][j])
            .sum();
        if !events.is_empty() {
            assert!((diag + upper - 1.0).abs() < 1e-9, "sum {}", diag + upper);
        }
    }

    #[test]
    fn scores_are_in_unit_range_and_symmetric() {
        let (s, cats) = mk_stream(120, 0.25, 30, 5);
        let events = detect_events(&s.updates, &s.initial_ribs, s.vps.len(), 300_000);
        let sel = stratify_events(&events, &cats, s.vps.len(), 3, 0.5);
        let scores = redundancy_scores(&sel, &s.updates, &s.initial_ribs, &s.vps, 2);
        assert!(!scores.is_empty());
        for (&(a, b), &v) in &scores {
            assert!((0.0..=1.0).contains(&v), "score {v}");
            assert!((scores[&(b, a)] - v).abs() < 1e-12);
        }
        // min-max scaling: both 0 and 1 must be attained
        let max = scores.values().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let min = scores.values().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!((max - 1.0).abs() < 1e-9);
        assert!(min.abs() < 1e-9);
    }

    #[test]
    fn greedy_select_seeds_most_redundant_and_respects_cap() {
        let vps: Vec<VpId> = (1..=4).map(|i| VpId::from_asn(Asn(i))).collect();
        let mut scores = HashMap::new();
        // vp1 and vp2 are near-identical; vp3, vp4 unique
        let pairs = [
            ((1, 2), 1.0),
            ((1, 3), 0.3),
            ((1, 4), 0.2),
            ((2, 3), 0.3),
            ((2, 4), 0.2),
            ((3, 4), 0.0),
        ];
        for ((a, b), v) in pairs {
            scores.insert((VpId::from_asn(Asn(a)), VpId::from_asn(Asn(b))), v);
            scores.insert((VpId::from_asn(Asn(b)), VpId::from_asn(Asn(a))), v);
        }
        let volumes: HashMap<VpId, usize> =
            vps.iter().enumerate().map(|(i, &v)| (v, 100 + i)).collect();
        let cfg = AnchorConfig::default();
        let sel = greedy_select(&vps, &scores, &volumes, &cfg);
        // Seed is vp1 or vp2 (highest total redundancy; vp1 has lower id).
        assert_eq!(sel[0], VpId::from_asn(Asn(1)));
        // vp2 (score 1.0 with seed) must NOT need selecting; vp3/vp4 must.
        assert!(sel.contains(&VpId::from_asn(Asn(3))));
        assert!(sel.contains(&VpId::from_asn(Asn(4))));
        assert!(!sel.contains(&VpId::from_asn(Asn(2))));
        // cap
        let capped = greedy_select(
            &vps,
            &scores,
            &volumes,
            &AnchorConfig {
                max_anchors: 2,
                ..AnchorConfig::default()
            },
        );
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn end_to_end_selection_is_nonempty_and_bounded() {
        let (s, cats) = mk_stream(150, 0.3, 40, 6);
        let cfg = AnchorConfig {
            events_per_cell: 3,
            ..AnchorConfig::default()
        };
        let sel = select_anchors(&s.updates, &s.initial_ribs, &s.vps, &cats, &cfg);
        assert!(!sel.anchors.is_empty());
        assert!(sel.anchors.len() <= s.vps.len());
        // anchors are actual VPs, no duplicates
        let set: BTreeSet<VpId> = sel.anchors.iter().copied().collect();
        assert_eq!(set.len(), sel.anchors.len());
        for a in &sel.anchors {
            assert!(s.vps.contains(a));
        }
    }
}
