//! Compiled, immutable filters with epoch-based hot swap (§7–§8).
//!
//! [`FilterSet`] is the *training-side* representation: a mutable rule bag
//! the orchestrator regenerates every refresh. The daemon hot path has
//! different needs — it judges every incoming UPDATE and must not lock,
//! allocate, or chase pointers. This module compiles a `FilterSet` once
//! into a [`CompiledFilters`]: an immutable value holding
//!
//! * the anchor accept-all set as a **sorted `Vec<VpId>`** (binary-search
//!   membership, empty-check short-circuit),
//! * the drop rules as a **sorted entry table** (per-VP runs ordered by
//!   prefix, then path, then communities — deterministic iteration and the
//!   §9 text serialization fall out of the order), and
//! * an **open-addressed index** over the entries keyed by a fixed
//!   multiply-mix hash of exactly the fields the configured granularity
//!   matches on, probed with *borrowed* update attributes — no `AsPath` or
//!   community-set clone ever happens at lookup time.
//!
//! Every compiled set carries an **epoch** and build metadata. The
//! [`FilterHandle`] is the publication point: the orchestrator swaps in a
//! new epoch with one `Arc` pointer swap, and every session's
//! [`FilterView`] notices via a single atomic epoch load — the per-update
//! fast path is *one relaxed-acquire load plus a hash probe*, with zero
//! lock acquisitions and zero heap allocations. Sessions only touch a
//! mutex in the instant they observe a new epoch (to clone the new `Arc`),
//! which happens once per refresh, not per update.
//!
//! The sequential [`FilterSet::accepts`] stays as the reference semantics;
//! equivalence is proven by property tests
//! (`gill-core/tests/compiled_filters.rs`), not assumed.

use crate::filters::{FilterGranularity, FilterSet};
use bgp_types::{Asn, BgpUpdate, Community, Prefix, VpId};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One compiled drop rule. Path and community storage is empty at the
/// granularities that do not match on them.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Sending VP.
    pub vp: VpId,
    /// Matched prefix.
    pub prefix: Prefix,
    path: Box<[Asn]>,
    comms: Box<[Community]>,
}

impl CompiledRule {
    /// The AS-path hops this rule matches on (empty at `VpPrefix`).
    pub fn path(&self) -> &[Asn] {
        &self.path
    }

    /// The community values this rule matches on (sorted; empty unless
    /// the granularity is `VpPrefixPathComms`).
    pub fn communities(&self) -> &[Community] {
        &self.comms
    }
}

/// Build metadata recorded at compile time.
#[derive(Clone, Copy, Debug)]
pub struct BuildMeta {
    /// Number of drop rules compiled.
    pub rules: usize,
    /// Number of anchor accept-all rules.
    pub anchors: usize,
    /// Wall time the compilation took.
    pub build: Duration,
}

/// A `(VP, prefix)` rule key packed into 32 bytes for the `VpPrefix`
/// probe fast path: half a cache line per rule instead of the full
/// [`CompiledRule`], and the comparison is three integer equalities with
/// no short-circuit chain through struct field layouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PackedKey {
    vpk: u64,
    bits: u128,
    meta: u64,
}

impl PackedKey {
    #[inline]
    fn new(vp: VpId, prefix: Prefix) -> PackedKey {
        PackedKey {
            vpk: ((vp.asn.value() as u64) << 16) | vp.router as u64,
            bits: prefix.raw_bits(),
            meta: ((prefix.len() as u64) << 1) | prefix.is_ipv6() as u64,
        }
    }
}

/// An immutable, epoch-stamped compilation of a [`FilterSet`].
#[derive(Clone, Debug)]
pub struct CompiledFilters {
    granularity: FilterGranularity,
    anchors: Vec<VpId>,
    entries: Vec<CompiledRule>,
    /// Open-addressed index into `entries`; `EMPTY_SLOT` marks a free
    /// slot. Power-of-two sized at ~50 % load.
    slots: Vec<u32>,
    /// Packed keys parallel to `entries`, built only at `VpPrefix`
    /// granularity (GILL's production configuration) so the hot probe
    /// never touches the wider `CompiledRule` rows.
    keys: Vec<PackedKey>,
    /// Packed `(asn << 16) | router` bounds of the anchor set: one range
    /// compare rejects the overwhelming non-anchor majority before any
    /// scan. `lo > hi` encodes an empty anchor set.
    anchor_lo: u64,
    anchor_hi: u64,
    mask: u64,
    epoch: u64,
    meta: BuildMeta,
}

const EMPTY_SLOT: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Hashing: a fixed (deterministic, seedless) multiply-mix hash over exactly
// the fields the granularity matches on. SipHash-free on purpose: the whole
// point of the compiled path is that a membership probe costs a handful of
// multiplies, not a keyed cryptographic hash over ~30 bytes.
// ---------------------------------------------------------------------------

#[inline]
fn fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(23)
}

#[inline]
fn finish(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[inline]
fn hash_vp_prefix(vp: VpId, prefix: Prefix) -> u64 {
    // four independent multiplies (no serial fold chain): the probe hash
    // sits on the critical path of every judged update, and the
    // multilinear form lets the CPU compute all four products in parallel
    let a = ((vp.asn.value() as u64) << 16) | vp.router as u64;
    let bits = prefix.raw_bits();
    let b = bits as u64;
    let c = (bits >> 64) as u64;
    let d = ((prefix.len() as u64) << 1) | prefix.is_ipv6() as u64;
    a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
        ^ c.wrapping_mul(0x1656_67b1_9e37_79f9)
        ^ d.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

#[inline]
fn hash_path(mut h: u64, hops: &[Asn]) -> u64 {
    for a in hops {
        h = fold(h, a.value() as u64);
    }
    fold(h, hops.len() as u64)
}

#[inline]
fn hash_comms<I: Iterator<Item = Community>>(mut h: u64, n: usize, comms: I) -> u64 {
    for c in comms {
        h = fold(h, c.raw() as u64);
    }
    fold(h, n as u64)
}

impl CompiledFilters {
    /// Compiles `fs` into the immutable representation, stamped `epoch`.
    pub fn compile(fs: &FilterSet, epoch: u64) -> CompiledFilters {
        let t0 = std::time::Instant::now();
        let granularity = fs.granularity();
        let mut anchors: Vec<VpId> = fs.anchors().copied().collect();
        anchors.sort_unstable();
        anchors.dedup();

        let mut entries: Vec<CompiledRule> = fs
            .rules()
            .map(|r| CompiledRule {
                vp: r.vp,
                prefix: r.prefix,
                path: r
                    .path
                    .as_ref()
                    .map(|p| p.hops().to_vec().into_boxed_slice())
                    .unwrap_or_default(),
                comms: r
                    .communities
                    .as_ref()
                    .map(|c| c.iter().copied().collect())
                    .unwrap_or_default(),
            })
            .collect();
        // per-VP runs sorted by prefix then the fine-grained key: gives
        // deterministic iteration and the §9 text order for free
        entries.sort_unstable_by(|a, b| {
            (a.vp, a.prefix, &a.path, &a.comms).cmp(&(b.vp, b.prefix, &b.path, &b.comms))
        });

        let cap = (entries.len() * 2).next_power_of_two().max(16);
        let mask = cap as u64 - 1;
        let mut slots = vec![EMPTY_SLOT; cap];
        for (i, e) in entries.iter().enumerate() {
            let mut idx = (Self::hash_entry(granularity, e) & mask) as usize;
            while slots[idx] != EMPTY_SLOT {
                idx = (idx + 1) & mask as usize;
            }
            slots[idx] = i as u32;
        }

        let pack_vp = |vp: &VpId| ((vp.asn.value() as u64) << 16) | vp.router as u64;
        let anchor_lo = anchors.first().map(pack_vp).unwrap_or(1);
        let anchor_hi = anchors.last().map(pack_vp).unwrap_or(0);
        let keys = if granularity == FilterGranularity::VpPrefix {
            entries
                .iter()
                .map(|e| PackedKey::new(e.vp, e.prefix))
                .collect()
        } else {
            Vec::new()
        };

        let meta = BuildMeta {
            rules: entries.len(),
            anchors: anchors.len(),
            build: t0.elapsed(),
        };
        CompiledFilters {
            granularity,
            anchors,
            entries,
            slots,
            keys,
            anchor_lo,
            anchor_hi,
            mask,
            epoch,
            meta,
        }
    }

    fn hash_entry(g: FilterGranularity, e: &CompiledRule) -> u64 {
        let mut h = hash_vp_prefix(e.vp, e.prefix);
        match g {
            FilterGranularity::VpPrefix => {}
            FilterGranularity::VpPrefixPath => h = hash_path(h, &e.path),
            FilterGranularity::VpPrefixPathComms => {
                h = hash_path(h, &e.path);
                h = hash_comms(h, e.comms.len(), e.comms.iter().copied());
            }
        }
        finish(h)
    }

    #[inline]
    fn hash_update(&self, u: &BgpUpdate) -> u64 {
        let mut h = hash_vp_prefix(u.vp, u.prefix);
        match self.granularity {
            FilterGranularity::VpPrefix => {}
            FilterGranularity::VpPrefixPath => h = hash_path(h, u.path.hops()),
            FilterGranularity::VpPrefixPathComms => {
                h = hash_path(h, u.path.hops());
                h = hash_comms(h, u.communities.len(), u.communities.iter().copied());
            }
        }
        finish(h)
    }

    #[inline]
    fn matches(&self, r: &CompiledRule, u: &BgpUpdate) -> bool {
        r.vp == u.vp
            && r.prefix == u.prefix
            && match self.granularity {
                FilterGranularity::VpPrefix => true,
                FilterGranularity::VpPrefixPath => *r.path == *u.path.hops(),
                FilterGranularity::VpPrefixPathComms => {
                    *r.path == *u.path.hops()
                        && r.comms.len() == u.communities.len()
                        && r.comms.iter().copied().eq(u.communities.iter().copied())
                }
            }
    }

    /// Anchor membership: one range compare rejects non-anchor VPs, then a
    /// branch-free scan for realistic anchor counts (GILL runs tens of
    /// anchors, not thousands) or binary search above that.
    #[inline]
    fn anchored(&self, vp: VpId) -> bool {
        let k = ((vp.asn.value() as u64) << 16) | vp.router as u64;
        if k < self.anchor_lo || k > self.anchor_hi {
            return false;
        }
        if self.anchors.len() <= 16 {
            let mut hit = false;
            for a in &self.anchors {
                hit |= *a == vp;
            }
            hit
        } else {
            self.anchors.binary_search(&vp).is_ok()
        }
    }

    /// Whether `u` passes the filters (true = retained). Semantically
    /// identical to [`FilterSet::accepts`]; allocation- and lock-free.
    #[inline]
    pub fn accepts(&self, u: &BgpUpdate) -> bool {
        if self.anchored(u.vp) {
            return true;
        }
        if self.entries.is_empty() {
            return true;
        }
        if self.granularity == FilterGranularity::VpPrefix {
            // the production-granularity fast path: probe against 32-byte
            // packed keys, never touching the wider rule rows
            let key = PackedKey::new(u.vp, u.prefix);
            let h = finish(hash_vp_prefix(u.vp, u.prefix));
            let mut idx = (h & self.mask) as usize;
            loop {
                let s = self.slots[idx];
                if s == EMPTY_SLOT {
                    return true;
                }
                if self.keys[s as usize] == key {
                    return false;
                }
                idx = (idx + 1) & self.mask as usize;
            }
        }
        let mut idx = (self.hash_update(u) & self.mask) as usize;
        loop {
            let s = self.slots[idx];
            if s == EMPTY_SLOT {
                return true;
            }
            if self.matches(&self.entries[s as usize], u) {
                return false;
            }
            idx = (idx + 1) & self.mask as usize;
        }
    }

    /// The epoch this compilation was published under.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The configured granularity.
    pub fn granularity(&self) -> FilterGranularity {
        self.granularity
    }

    /// Number of drop rules.
    pub fn num_rules(&self) -> usize {
        self.entries.len()
    }

    /// Whether `vp` has an anchor accept-all rule.
    pub fn is_anchor(&self, vp: VpId) -> bool {
        self.anchors.binary_search(&vp).is_ok()
    }

    /// The anchor VPs, sorted.
    pub fn anchors(&self) -> &[VpId] {
        &self.anchors
    }

    /// The compiled rules, sorted by `(vp, prefix, path, communities)`.
    pub fn rules(&self) -> &[CompiledRule] {
        &self.entries
    }

    /// Build metadata (rule count, anchor count, compile wall time).
    pub fn meta(&self) -> &BuildMeta {
        &self.meta
    }

    /// The §9 published text format — byte-identical to
    /// [`FilterSet::to_text`] on the set this was compiled from. Only the
    /// deployed `(VP, prefix)` granularity has a text form.
    pub fn to_text(&self) -> Result<String, &'static str> {
        if self.granularity != FilterGranularity::VpPrefix && !self.entries.is_empty() {
            return Err("only (VP, prefix) filters have a text form");
        }
        let mut out = String::new();
        for a in &self.anchors {
            out.push_str(&format!("anchor {}\n", a.asn.value()));
        }
        for r in &self.entries {
            out.push_str(&format!("drop {} {}\n", r.vp.asn.value(), r.prefix));
        }
        Ok(out)
    }
}

impl Default for CompiledFilters {
    /// An empty accept-everything compilation at epoch 0.
    fn default() -> Self {
        CompiledFilters::compile(&FilterSet::default(), 0)
    }
}

// ---------------------------------------------------------------------------
// Epoch publication
// ---------------------------------------------------------------------------

/// The publication point for compiled filters.
///
/// Writers ([`FilterHandle::install`] / [`FilterHandle::publish`]) swap the
/// current `Arc<CompiledFilters>` under a short mutex and then advance the
/// epoch counter; readers hold a [`FilterView`] and never block: they load
/// the epoch atomically and only touch the mutex in the moment they
/// observe a new epoch (once per refresh, to clone the new `Arc`).
///
/// Publication is expected from one driver at a time (the orchestrator or
/// an operator install); concurrent publishers are memory-safe but may
/// interleave epoch numbering.
#[derive(Debug)]
pub struct FilterHandle {
    current: Mutex<Arc<CompiledFilters>>,
    epoch: AtomicU64,
}

impl FilterHandle {
    /// A handle starting at `fs` compiled as epoch 0.
    pub fn new(fs: &FilterSet) -> Arc<FilterHandle> {
        Arc::new(FilterHandle {
            current: Mutex::new(Arc::new(CompiledFilters::compile(fs, 0))),
            epoch: AtomicU64::new(0),
        })
    }

    /// A handle starting from an accept-everything epoch 0.
    pub fn empty() -> Arc<FilterHandle> {
        FilterHandle::new(&FilterSet::default())
    }

    /// Compiles `fs` stamped with the *next* epoch without publishing it —
    /// lets the caller pre-announce the epoch (e.g. reset its per-epoch
    /// counters) before any session can observe it.
    pub fn compile_next(&self, fs: &FilterSet) -> Arc<CompiledFilters> {
        let next = self.epoch.load(Ordering::Acquire) + 1;
        Arc::new(CompiledFilters::compile(fs, next))
    }

    /// Publishes a compiled set: one `Arc` pointer swap, then the epoch
    /// store that readers poll. Returns the published epoch.
    pub fn publish(&self, compiled: Arc<CompiledFilters>) -> u64 {
        let e = compiled.epoch();
        let mut cur = self.current.lock().unwrap_or_else(|p| p.into_inner());
        *cur = compiled;
        // released while still holding the lock: a reader that sees the
        // new epoch and refreshes is guaranteed at least this Arc
        self.epoch.store(e, Ordering::Release);
        e
    }

    /// Compile-and-publish in one step (the orchestrator's refresh and
    /// the operator's `install_filters` both land here).
    pub fn install(&self, fs: &FilterSet) -> u64 {
        self.publish(self.compile_next(fs))
    }

    /// The currently published epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A clone of the currently published compilation.
    pub fn snapshot(&self) -> Arc<CompiledFilters> {
        self.current
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// A per-reader view for session hot paths.
    pub fn view(self: &Arc<Self>) -> FilterView {
        FilterView::new(self.clone())
    }
}

/// A session-local filter reader.
///
/// Caches the current `Arc<CompiledFilters>`; each [`FilterView::judge`]
/// is one atomic epoch load plus a hash probe. When the publisher swaps in
/// a new epoch, the next judge call refreshes the cache (the only moment a
/// reader touches the handle's mutex). `Cell`/`RefCell` interior
/// mutability keeps the `&self` call signature of the ingest pipeline —
/// neither is a lock.
#[derive(Debug)]
pub struct FilterView {
    handle: Arc<FilterHandle>,
    cached_epoch: Cell<u64>,
    cached: RefCell<Arc<CompiledFilters>>,
}

impl FilterView {
    /// A view over `handle`, primed with the current epoch.
    pub fn new(handle: Arc<FilterHandle>) -> FilterView {
        let cached = handle.snapshot();
        FilterView {
            cached_epoch: Cell::new(cached.epoch()),
            cached: RefCell::new(cached),
            handle,
        }
    }

    #[cold]
    fn refresh(&self) {
        let fresh = self.handle.snapshot();
        self.cached_epoch.set(fresh.epoch());
        *self.cached.borrow_mut() = fresh;
    }

    /// Judges one update: returns `(retained, epoch)` where `epoch`
    /// identifies exactly which compilation produced the verdict (the pair
    /// can never be torn across a swap). Zero locks, zero allocations.
    #[inline]
    pub fn judge(&self, u: &BgpUpdate) -> (bool, u64) {
        if self.handle.epoch.load(Ordering::Acquire) != self.cached_epoch.get() {
            self.refresh();
        }
        let f = self.cached.borrow();
        (f.accepts(u), f.epoch())
    }

    /// Whether `u` passes the current filters.
    #[inline]
    pub fn accepts(&self, u: &BgpUpdate) -> bool {
        self.judge(u).0
    }

    /// The current compilation (refreshing the cache if stale).
    pub fn current(&self) -> Arc<CompiledFilters> {
        if self.handle.epoch.load(Ordering::Acquire) != self.cached_epoch.get() {
            self.refresh();
        }
        self.cached.borrow().clone()
    }

    /// The shared publication handle.
    pub fn handle(&self) -> &Arc<FilterHandle> {
        &self.handle
    }
}

impl Clone for FilterView {
    fn clone(&self) -> Self {
        FilterView::new(self.handle.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Timestamp, UpdateBuilder};

    fn vp(n: u32) -> VpId {
        VpId::from_asn(Asn(n))
    }

    fn upd(v: u32, pfx: u32, path: &[u32], comm: &[(u16, u16)]) -> BgpUpdate {
        let mut b = UpdateBuilder::announce(vp(v), Prefix::synthetic(pfx))
            .at(Timestamp::from_secs(1))
            .path(path.iter().copied());
        for &(a, c) in comm {
            b = b.community(a, c);
        }
        b.build()
    }

    #[test]
    fn empty_compilation_accepts_everything() {
        let c = CompiledFilters::default();
        assert!(c.accepts(&upd(1, 1, &[1, 4], &[])));
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.num_rules(), 0);
    }

    #[test]
    fn compiled_matches_reference_on_all_granularities() {
        for g in [
            FilterGranularity::VpPrefix,
            FilterGranularity::VpPrefixPath,
            FilterGranularity::VpPrefixPathComms,
        ] {
            let train = [
                upd(1, 1, &[1, 2, 4], &[(1, 10)]),
                upd(2, 7, &[2, 4], &[]),
                upd(3, 3, &[3, 9, 4], &[(3, 30), (3, 31)]),
            ];
            let fs = FilterSet::generate([vp(9)], train.iter(), g);
            let c = CompiledFilters::compile(&fs, 1);
            let probes = [
                upd(1, 1, &[1, 2, 4], &[(1, 10)]), // exact training hit
                upd(1, 1, &[1, 3, 4], &[(1, 10)]), // same (vp,pfx), new path
                upd(1, 1, &[1, 2, 4], &[(1, 11)]), // same path, new comm
                upd(2, 7, &[2, 4], &[]),
                upd(4, 4, &[4, 5], &[]), // never trained
                upd(9, 1, &[9, 4], &[]), // anchor
            ];
            for p in &probes {
                assert_eq!(c.accepts(p), fs.accepts(p), "granularity {g:?}: {p}");
            }
            assert_eq!(c.num_rules(), fs.num_rules());
            assert!(c.is_anchor(vp(9)));
        }
    }

    #[test]
    fn text_form_matches_filterset_exactly() {
        let train = [upd(1, 1, &[1, 4], &[]), upd(2, 7, &[2, 4], &[])];
        let fs = FilterSet::generate([vp(9), vp(3)], train.iter(), FilterGranularity::VpPrefix);
        let c = CompiledFilters::compile(&fs, 5);
        assert_eq!(c.to_text().unwrap(), fs.to_text().unwrap());
        let fine = FilterSet::generate([], train.iter(), FilterGranularity::VpPrefixPath);
        assert!(CompiledFilters::compile(&fine, 1).to_text().is_err());
    }

    #[test]
    fn handle_swaps_bump_epochs_and_views_follow() {
        let train = upd(1, 1, &[1, 2, 4], &[]);
        let handle = FilterHandle::empty();
        let view = handle.view();
        assert_eq!(view.judge(&train), (true, 0));

        let fs = FilterSet::generate([], [&train], FilterGranularity::VpPrefix);
        assert_eq!(handle.install(&fs), 1);
        assert_eq!(view.judge(&train), (false, 1));
        assert_eq!(handle.epoch(), 1);

        // swapping back to empty re-accepts under epoch 2
        assert_eq!(handle.install(&FilterSet::default()), 2);
        assert_eq!(view.judge(&train), (true, 2));
        assert_eq!(view.current().meta().rules, 0);
    }
}
