//! End-to-end GILL analysis: components #1 + #2 + filter generation.

use crate::anchors::{select_anchors, AnchorConfig, AnchorSelection};
use crate::corrgroups::DEFAULT_WINDOW_MS;
use crate::filters::{FilterGranularity, FilterSet};
use crate::reconstitution::{
    find_redundant_updates, Component1Result, DEFAULT_RECONSTITUTION_TARGET,
};
use as_topology::AsCategory;
use bgp_sim::UpdateStream;
use bgp_types::{Asn, BgpUpdate, Rib, VpId};
use std::collections::HashMap;

/// Top-level configuration of a GILL run.
#[derive(Clone, Debug)]
pub struct GillConfig {
    /// Correlation-group burst window in milliseconds (§17.1; default 100 s).
    pub corr_window_ms: u64,
    /// Reconstitution-power target (§17.2; default 0.94).
    pub reconstitution_target: f64,
    /// Anchor-selection knobs (§18).
    pub anchor: AnchorConfig,
    /// Filter granularity (§7; default `(VP, prefix)`).
    pub granularity: FilterGranularity,
}

impl Default for GillConfig {
    fn default() -> Self {
        GillConfig {
            corr_window_ms: DEFAULT_WINDOW_MS,
            reconstitution_target: DEFAULT_RECONSTITUTION_TARGET,
            anchor: AnchorConfig::default(),
            granularity: FilterGranularity::VpPrefix,
        }
    }
}

/// The result of running GILL's sampling algorithms over a training window.
#[derive(Clone, Debug)]
pub struct GillAnalysis {
    /// Component #1 output: redundant-update classification.
    pub component1: Component1Result,
    /// Component #2 output: anchor VPs and pairwise redundancy scores.
    pub component2: AnchorSelection,
    /// The updates the analysis was trained on (owned copy of the
    /// classification flags only; the updates themselves stay with the
    /// caller).
    granularity: FilterGranularity,
    /// Training updates retained after both components (anchor updates +
    /// nonredundant updates).
    pub retained: usize,
    /// Total training updates.
    pub total: usize,
    drop_templates: Vec<BgpUpdate>,
}

impl GillAnalysis {
    /// Runs both components on a synthesized stream (categories default to
    /// Stub when not supplied — fine for small tests; experiments should
    /// call [`GillAnalysis::run_with_categories`]).
    pub fn run(stream: &UpdateStream, cfg: &GillConfig) -> Self {
        Self::run_on(
            &stream.updates,
            &stream.initial_ribs,
            &stream.vps,
            &HashMap::new(),
            cfg,
        )
    }

    /// Runs both components with explicit AS categories (Table 5) for event
    /// stratification.
    pub fn run_with_categories(
        stream: &UpdateStream,
        categories: &HashMap<Asn, AsCategory>,
        cfg: &GillConfig,
    ) -> Self {
        Self::run_on(
            &stream.updates,
            &stream.initial_ribs,
            &stream.vps,
            categories,
            cfg,
        )
    }

    /// Runs on raw parts (for RIS/RV-style inputs outside the simulator).
    pub fn run_on(
        updates: &[BgpUpdate],
        initial_ribs: &HashMap<VpId, Rib>,
        vps: &[VpId],
        categories: &HashMap<Asn, AsCategory>,
        cfg: &GillConfig,
    ) -> Self {
        // Components #1 and #2 read the same inputs but share no state, so
        // they run concurrently; each is internally deterministic, making
        // the joined result identical to the sequential order.
        let (component1, component2) = rayon::join(
            || find_redundant_updates(updates, cfg.corr_window_ms, cfg.reconstitution_target),
            || select_anchors(updates, initial_ribs, vps, categories, &cfg.anchor),
        );
        let anchor_set: std::collections::HashSet<VpId> =
            component2.anchors.iter().copied().collect();
        let mut retained = 0usize;
        let mut drop_templates = Vec::new();
        for (u, &red) in updates.iter().zip(&component1.redundant) {
            if anchor_set.contains(&u.vp) || !red {
                retained += 1;
            } else {
                drop_templates.push(u.clone());
            }
        }
        GillAnalysis {
            component1,
            component2,
            granularity: cfg.granularity,
            retained,
            total: updates.len(),
            drop_templates,
        }
    }

    /// `|U|/|V|` over the training window after both components.
    pub fn retained_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.retained as f64 / self.total as f64
    }

    /// Generates the peering-session filters (Fig. 5b / §7).
    pub fn filter_set(&self) -> FilterSet {
        FilterSet::generate(
            self.component2.anchors.iter().copied(),
            self.drop_templates.iter(),
            self.granularity,
        )
    }

    /// Generates filters at an explicit granularity (for the §7 ablation).
    pub fn filter_set_at(&self, granularity: FilterGranularity) -> FilterSet {
        FilterSet::generate(
            self.component2.anchors.iter().copied(),
            self.drop_templates.iter(),
            granularity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};

    fn run_small(seed: u64) -> (UpdateStream, GillAnalysis) {
        let topo = TopologyBuilder::artificial(120, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.3, 3);
        let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(30).seed(seed));
        let cfg = GillConfig {
            anchor: AnchorConfig {
                events_per_cell: 3,
                ..AnchorConfig::default()
            },
            ..GillConfig::default()
        };
        let analysis = GillAnalysis::run(&stream, &cfg);
        (stream, analysis)
    }

    #[test]
    fn analysis_retains_a_fraction_and_flags_align() {
        let (stream, a) = run_small(1);
        assert_eq!(a.total, stream.updates.len());
        assert!(a.retained <= a.total);
        assert!(a.retained_fraction() > 0.0, "nothing retained");
        assert!(
            a.retained_fraction() < 1.0,
            "no redundancy discarded at all"
        );
        assert_eq!(a.component1.redundant.len(), stream.updates.len());
    }

    #[test]
    fn filters_discard_only_non_anchor_redundant_updates() {
        let (stream, a) = run_small(2);
        let f = a.filter_set();
        for (u, &red) in stream.updates.iter().zip(&a.component1.redundant) {
            if a.component2.anchors.contains(&u.vp) {
                assert!(f.accepts(u), "anchor update dropped");
            } else if !red {
                assert!(f.accepts(u), "nonredundant update dropped");
            } else {
                assert!(!f.accepts(u), "redundant update kept on training data");
            }
        }
    }

    #[test]
    fn filters_generalize_to_future_windows() {
        // Train on one window, test on a later window of the same world —
        // the Fig. 7 property: a meaningful share still matches.
        let topo = TopologyBuilder::artificial(150, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.3, 3);
        let train = sim.synthesize_stream(&vps, StreamConfig::default().events(60).seed(10));
        let cfg = GillConfig {
            anchor: AnchorConfig {
                events_per_cell: 3,
                ..AnchorConfig::default()
            },
            ..GillConfig::default()
        };
        let a = GillAnalysis::run(&train, &cfg);
        let f = a.filter_set();
        let test = sim.synthesize_stream(&vps, StreamConfig::default().events(60).seed(11));
        let rate = f.discard_rate(&test.updates);
        assert!(
            rate > 0.05,
            "coarse filters should keep matching future redundant updates, got {rate}"
        );
    }

    #[test]
    fn finer_granularity_discards_less_in_the_future() {
        let topo = TopologyBuilder::artificial(150, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.3, 3);
        let train = sim.synthesize_stream(&vps, StreamConfig::default().events(60).seed(20));
        let cfg = GillConfig {
            anchor: AnchorConfig {
                events_per_cell: 3,
                ..AnchorConfig::default()
            },
            ..GillConfig::default()
        };
        let a = GillAnalysis::run(&train, &cfg);
        let test = sim.synthesize_stream(&vps, StreamConfig::default().events(60).seed(21));
        let coarse = a
            .filter_set_at(FilterGranularity::VpPrefix)
            .discard_rate(&test.updates);
        let asp = a
            .filter_set_at(FilterGranularity::VpPrefixPath)
            .discard_rate(&test.updates);
        let aspc = a
            .filter_set_at(FilterGranularity::VpPrefixPathComms)
            .discard_rate(&test.updates);
        assert!(coarse >= asp, "coarse {coarse} < asp {asp}");
        assert!(asp >= aspc, "asp {asp} < asp-comm {aspc}");
    }

    #[test]
    fn empty_stream_is_handled() {
        let topo = TopologyBuilder::artificial(60, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.2, 1);
        let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(0).seed(1));
        let a = GillAnalysis::run(&stream, &GillConfig::default());
        assert_eq!(a.total, 0);
        assert_eq!(a.retained_fraction(), 0.0);
        let f = a.filter_set();
        assert_eq!(f.num_rules(), 0);
    }
}
