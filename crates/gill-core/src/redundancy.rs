//! The redundancy framework of §4.2: three gradually stricter definitions
//! of "update `u1` is redundant with update `u2`".
//!
//! * **Condition 1**: `|t1 − t2| < 100 s` and `p1 = p2`.
//! * **Condition 2**: `L1 \ L1w ⊆ L2 \ L2w` (the new links of `u1` are
//!   contained in those of `u2`). Asymmetric.
//! * **Condition 3**: `C1 \ C1w ⊆ C2 \ C2w` (same for communities).
//!
//! Definition 1 = condition 1; Definition 2 = conditions 1 ∧ 2;
//! Definition 3 = conditions 1 ∧ 2 ∧ 3.
//!
//! A VP `v1` is redundant with `v2` if more than [`VP_REDUNDANCY_SHARE`] of
//! `v1`'s updates are redundant with at least one update of `v2` (§4.2).

use bgp_types::BgpUpdate;
use std::collections::HashMap;

/// Fraction of a VP's updates that must be redundant with another VP's
/// updates for the VP itself to count as redundant (">90 %", §4.2).
pub const VP_REDUNDANCY_SHARE: f64 = 0.9;

/// The three redundancy definitions of §4.2, strictest last.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RedundancyDef {
    /// Prefix-based (condition 1).
    Def1,
    /// Prefix and AS-path based (conditions 1–2).
    Def2,
    /// Prefix, AS-path and community based (conditions 1–3).
    Def3,
}

impl RedundancyDef {
    /// All definitions, loosest first.
    pub const ALL: [RedundancyDef; 3] = [
        RedundancyDef::Def1,
        RedundancyDef::Def2,
        RedundancyDef::Def3,
    ];
}

/// Condition 1: same prefix, timestamps within the 100 s slack.
pub fn condition1(u1: &BgpUpdate, u2: &BgpUpdate) -> bool {
    u1.prefix == u2.prefix && u1.time.within_slack(u2.time)
}

/// Condition 2: `u1`'s effective link set is a subset of `u2`'s.
pub fn condition2(u1: &BgpUpdate, u2: &BgpUpdate) -> bool {
    u1.effective_links().is_subset(&u2.effective_links())
}

/// Condition 3: `u1`'s effective community set is a subset of `u2`'s.
pub fn condition3(u1: &BgpUpdate, u2: &BgpUpdate) -> bool {
    u1.effective_communities()
        .is_subset(&u2.effective_communities())
}

/// Whether `u1` is redundant with `u2` under `def`. Not symmetric for
/// Def2/Def3 (subset inclusion is one-way), and an update is *not* compared
/// with itself by the aggregate functions below.
pub fn is_redundant_with(u1: &BgpUpdate, u2: &BgpUpdate, def: RedundancyDef) -> bool {
    match def {
        RedundancyDef::Def1 => condition1(u1, u2),
        RedundancyDef::Def2 => condition1(u1, u2) && condition2(u1, u2),
        RedundancyDef::Def3 => condition1(u1, u2) && condition2(u1, u2) && condition3(u1, u2),
    }
}

/// Marks, for every update in `updates`, whether it is redundant with at
/// least one *other* update under `def` (the §4.2 "97 % / 77 % / 70 %"
/// measurement). `updates` must be time-sorted.
///
/// This is the fast path: updates are interned once
/// ([`crate::prepared::PreparedUpdates`]) and the per-prefix buckets fan
/// out across threads. Output is bit-identical to
/// [`redundant_flags_seq`]. Callers issuing several queries over the same
/// stream should prepare once and query the [`PreparedUpdates`] directly.
///
/// [`PreparedUpdates`]: crate::prepared::PreparedUpdates
pub fn redundant_flags(updates: &[BgpUpdate], def: RedundancyDef) -> Vec<bool> {
    crate::prepared::PreparedUpdates::prepare(updates).redundant_flags(def)
}

/// Reference implementation of [`redundant_flags`]: single-threaded, no
/// interning — each comparison materializes the effective sets afresh.
/// Kept as the ground truth the optimized engines are property-tested and
/// benchmarked against.
pub fn redundant_flags_seq(updates: &[BgpUpdate], def: RedundancyDef) -> Vec<bool> {
    // Bucket by prefix, then sliding window over time.
    let mut by_prefix: HashMap<bgp_types::Prefix, Vec<usize>> = HashMap::new();
    for (i, u) in updates.iter().enumerate() {
        by_prefix.entry(u.prefix).or_default().push(i);
    }
    let mut flags = vec![false; updates.len()];
    for idxs in by_prefix.values() {
        for (a, &i) in idxs.iter().enumerate() {
            if flags[i] {
                continue;
            }
            // scan forward and backward while within the slack
            for &j in idxs[a + 1..].iter() {
                if !updates[i].time.within_slack(updates[j].time) {
                    break;
                }
                if is_redundant_with(&updates[i], &updates[j], def) {
                    flags[i] = true;
                    break;
                }
            }
            if flags[i] {
                continue;
            }
            for &j in idxs[..a].iter().rev() {
                if !updates[i].time.within_slack(updates[j].time) {
                    break;
                }
                if is_redundant_with(&updates[i], &updates[j], def) {
                    flags[i] = true;
                    break;
                }
            }
        }
    }
    flags
}

/// Fraction of updates redundant with at least one other update.
pub fn redundant_fraction(updates: &[BgpUpdate], def: RedundancyDef) -> f64 {
    if updates.is_empty() {
        return 0.0;
    }
    let flags = redundant_flags(updates, def);
    flags.iter().filter(|&&f| f).count() as f64 / updates.len() as f64
}

/// For each ordered VP pair `(v1, v2)`, the fraction of `v1`'s updates that
/// are redundant with at least one update of `v2`. `updates` must be
/// time-sorted.
///
/// The returned map is **sparse**: only pairs with non-zero coverage are
/// present; treat a missing key as 0.0. This is the fast path (interned
/// sets, parallel prefix buckets); [`vp_pair_redundancy_seq`] is the
/// reference it is verified against.
pub fn vp_pair_redundancy(
    updates: &[BgpUpdate],
    def: RedundancyDef,
) -> HashMap<(bgp_types::VpId, bgp_types::VpId), f64> {
    crate::prepared::PreparedUpdates::prepare(updates).vp_pair_redundancy(def)
}

/// Reference implementation of [`vp_pair_redundancy`]: single-threaded,
/// no interning. Produces the same sparse map (only non-zero pairs).
pub fn vp_pair_redundancy_seq(
    updates: &[BgpUpdate],
    def: RedundancyDef,
) -> HashMap<(bgp_types::VpId, bgp_types::VpId), f64> {
    use bgp_types::VpId;
    let mut counts: HashMap<VpId, usize> = HashMap::new();
    for u in updates {
        *counts.entry(u.vp).or_insert(0) += 1;
    }
    // covered[(v1, v2)] = # of v1's updates redundant with some update of v2
    let mut covered: HashMap<(VpId, VpId), usize> = HashMap::new();
    let mut by_prefix: HashMap<bgp_types::Prefix, Vec<usize>> = HashMap::new();
    for (i, u) in updates.iter().enumerate() {
        by_prefix.entry(u.prefix).or_default().push(i);
    }
    for idxs in by_prefix.values() {
        for (a, &i) in idxs.iter().enumerate() {
            // which other VPs cover update i? (sorted insert: O(log k)
            // membership instead of a linear scan)
            let mut seen: Vec<VpId> = Vec::new();
            let scan = |j: usize, seen: &mut Vec<VpId>| {
                let u2 = &updates[j];
                if u2.vp != updates[i].vp {
                    if let Err(pos) = seen.binary_search(&u2.vp) {
                        if is_redundant_with(&updates[i], u2, def) {
                            seen.insert(pos, u2.vp);
                        }
                    }
                }
            };
            for &j in idxs[a + 1..].iter() {
                if !updates[i].time.within_slack(updates[j].time) {
                    break;
                }
                scan(j, &mut seen);
            }
            for &j in idxs[..a].iter().rev() {
                if !updates[i].time.within_slack(updates[j].time) {
                    break;
                }
                scan(j, &mut seen);
            }
            for v2 in seen {
                *covered.entry((updates[i].vp, v2)).or_insert(0) += 1;
            }
        }
    }
    covered
        .into_iter()
        .map(|((v1, v2), c)| ((v1, v2), c as f64 / counts[&v1] as f64))
        .collect()
}

/// Fraction of VPs that are redundant with at least one other VP (the Fig. 6
/// measurement): `v1` is redundant iff some `v2` covers more than
/// [`VP_REDUNDANCY_SHARE`] of its updates.
pub fn redundant_vp_fraction(updates: &[BgpUpdate], def: RedundancyDef) -> f64 {
    let pair = vp_pair_redundancy(updates, def);
    let mut vps: Vec<bgp_types::VpId> = updates.iter().map(|u| u.vp).collect();
    vps.sort_unstable();
    vps.dedup();
    if vps.is_empty() {
        return 0.0;
    }
    let redundant = vps
        .iter()
        .filter(|&&v1| {
            vps.iter().any(|&v2| {
                v1 != v2 && pair.get(&(v1, v2)).copied().unwrap_or(0.0) > VP_REDUNDANCY_SHARE
            })
        })
        .count();
    redundant as f64 / vps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Asn, Prefix, Timestamp, UpdateBuilder, VpId};

    fn upd(vp: u32, t_ms: u64, pfx: u32, path: &[u32], comms: &[(u16, u16)]) -> BgpUpdate {
        let mut b = UpdateBuilder::announce(VpId::from_asn(Asn(vp)), Prefix::synthetic(pfx))
            .at(Timestamp::from_millis(t_ms))
            .path(path.iter().copied());
        for &(a, c) in comms {
            b = b.community(a, c);
        }
        b.build()
    }

    #[test]
    fn condition1_prefix_and_time() {
        let a = upd(1, 0, 1, &[1, 4], &[]);
        let b = upd(2, 99_000, 1, &[2, 4], &[]);
        let c = upd(2, 100_000, 1, &[2, 4], &[]);
        let d = upd(2, 0, 2, &[2, 4], &[]);
        assert!(condition1(&a, &b));
        assert!(!condition1(&a, &c));
        assert!(!condition1(&a, &d));
    }

    #[test]
    fn condition2_is_asymmetric() {
        let small = upd(1, 0, 1, &[1, 4], &[]);
        let big = upd(2, 0, 1, &[2, 1, 4], &[]); // links {2->1, 1->4} ⊅ {1->4}? yes ⊇
        assert!(condition2(&small, &big));
        assert!(!condition2(&big, &small));
    }

    #[test]
    fn condition3_subset_on_communities() {
        let a = upd(1, 0, 1, &[1, 4], &[(1, 10)]);
        let b = upd(2, 0, 1, &[2, 1, 4], &[(1, 10), (2, 20)]);
        assert!(condition3(&a, &b));
        assert!(!condition3(&b, &a));
    }

    #[test]
    fn definitions_get_stricter() {
        // same prefix & time, disjoint links
        let a = upd(1, 0, 1, &[1, 4], &[(9, 9)]);
        let b = upd(2, 10_000, 1, &[2, 5], &[]);
        assert!(is_redundant_with(&a, &b, RedundancyDef::Def1));
        assert!(!is_redundant_with(&a, &b, RedundancyDef::Def2));
        // subset links, non-subset comms
        let c = upd(3, 0, 1, &[1, 4], &[(8, 8)]);
        let d = upd(4, 0, 1, &[2, 1, 4], &[(7, 7)]);
        assert!(is_redundant_with(&c, &d, RedundancyDef::Def2));
        assert!(!is_redundant_with(&c, &d, RedundancyDef::Def3));
        // full subset
        let e = upd(5, 0, 1, &[1, 4], &[(7, 7)]);
        assert!(is_redundant_with(&e, &d, RedundancyDef::Def3));
    }

    #[test]
    fn redundant_fraction_monotonically_decreases_with_stricter_defs() {
        let mut updates = Vec::new();
        // bursts of similar updates + some unique ones
        for burst in 0..5u64 {
            let t = burst * 1_000_000;
            updates.push(upd(1, t, 1, &[1, 9], &[(1, 1)]));
            updates.push(upd(2, t + 5_000, 1, &[2, 1, 9], &[(1, 1), (2, 2)]));
            updates.push(upd(3, t + 9_000, 1, &[3, 7], &[(3, 3)]));
        }
        updates.sort_by_key(|u| u.time);
        let f1 = redundant_fraction(&updates, RedundancyDef::Def1);
        let f2 = redundant_fraction(&updates, RedundancyDef::Def2);
        let f3 = redundant_fraction(&updates, RedundancyDef::Def3);
        assert!(f1 >= f2 && f2 >= f3, "{f1} {f2} {f3}");
        assert!(f1 > 0.9); // everything in a burst shares prefix+time
        assert!(f2 > 0.0);
    }

    #[test]
    fn lone_update_is_not_redundant() {
        let updates = vec![upd(1, 0, 1, &[1, 4], &[])];
        assert_eq!(redundant_fraction(&updates, RedundancyDef::Def1), 0.0);
    }

    #[test]
    fn vp_pair_redundancy_directionality() {
        // VP1's every update covered by VP2, but VP2 has an extra unique one.
        let mut updates = vec![
            upd(1, 0, 1, &[1, 9], &[]),
            upd(2, 1_000, 1, &[2, 1, 9], &[]),
            upd(2, 500_000, 2, &[2, 8], &[]),
        ];
        updates.sort_by_key(|u| u.time);
        let m = vp_pair_redundancy(&updates, RedundancyDef::Def2);
        let v1 = VpId::from_asn(Asn(1));
        let v2 = VpId::from_asn(Asn(2));
        // the map is sparse: a missing pair means zero coverage
        let at = |a, b| m.get(&(a, b)).copied().unwrap_or(0.0);
        assert_eq!(at(v1, v2), 1.0);
        assert!(at(v2, v1) < 1.0);
    }

    #[test]
    fn vp_pair_redundancy_is_sparse() {
        // Two VPs on disjoint prefixes: no coverage, so no entries at all.
        let updates = vec![upd(1, 0, 1, &[1, 4], &[]), upd(2, 0, 2, &[2, 4], &[])];
        let m = vp_pair_redundancy(&updates, RedundancyDef::Def1);
        assert!(m.is_empty());
        assert_eq!(redundant_vp_fraction(&updates, RedundancyDef::Def1), 0.0);
    }

    #[test]
    fn fast_paths_match_reference_engines() {
        let mut updates = Vec::new();
        for burst in 0..6u64 {
            let t = burst * 400_000;
            updates.push(upd(1, t, 1, &[1, 9], &[(1, 1)]));
            updates.push(upd(2, t + 3_000, 1, &[2, 1, 9], &[(1, 1), (2, 2)]));
            updates.push(upd(3, t + 7_000, (burst % 2) as u32 + 1, &[3, 7], &[]));
        }
        updates.sort_by_key(|u| u.time);
        for def in RedundancyDef::ALL {
            assert_eq!(
                redundant_flags(&updates, def),
                redundant_flags_seq(&updates, def)
            );
            assert_eq!(
                vp_pair_redundancy(&updates, def),
                vp_pair_redundancy_seq(&updates, def)
            );
        }
    }

    #[test]
    fn redundant_vp_fraction_thresholds() {
        // Two identical-behaviour VPs + one unique VP.
        let mut updates = Vec::new();
        for k in 0..20u64 {
            let t = k * 500_000;
            updates.push(upd(1, t, 1, &[1, 9], &[]));
            updates.push(upd(2, t + 1_000, 1, &[1, 9], &[]));
            updates.push(upd(3, t + 2_000, (k % 7 + 10) as u32, &[3, 5], &[]));
        }
        updates.sort_by_key(|u| u.time);
        let f = redundant_vp_fraction(&updates, RedundancyDef::Def2);
        // VPs 1 and 2 are mutually redundant; VP 3 is not.
        assert!((f - 2.0 / 3.0).abs() < 1e-9, "{f}");
    }

    #[test]
    fn withdrawn_sets_affect_condition2() {
        let mut a = upd(1, 0, 1, &[1, 4], &[]);
        a.withdrawn_links = a.links(); // everything withdrawn: effective ∅
        let b = upd(2, 0, 1, &[9, 8], &[]);
        // ∅ ⊆ anything
        assert!(condition2(&a, &b));
        assert!(!condition2(&b, &a));
    }
}
