//! The scenario engine: a deterministic k-way merge of one lazy background
//! source and any number of materialized campaign (or extra) sources into
//! a single time-sorted stream.
//!
//! The background source is consumed lazily — a 500k-update soak holds one
//! update per source in memory, not the day's worth. Campaign streams are
//! small (bounded by `n_targets · n_vps · repeats`) and materialized up
//! front so their ground truth exists before the merge starts. Ties are
//! broken by source index (background first), which is stable and
//! seed-independent, so the merged order is a pure function of the config.

use crate::background::{BackgroundConfig, BackgroundGen};
use crate::burst::{burst_report, BurstBand, BurstReport};
use crate::campaign::{generate_campaign, CampaignConfig, CampaignTruth};
use crate::world::World;
use bgp_types::BgpUpdate;
use std::collections::VecDeque;

/// Where a merged update came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The bursty background process.
    Background,
    /// Campaign `id` (index into [`ScenarioEngine::truths`]).
    Campaign(usize),
    /// An extra caller-provided stream (e.g. a `bgp-sim` event stream).
    Extra,
}

/// One merged update, tagged with its source.
#[derive(Clone, Debug)]
pub struct ScenarioItem {
    /// The update.
    pub update: BgpUpdate,
    /// Which generator emitted it.
    pub source: Source,
}

/// Everything a scenario needs: the world, the background shape, the
/// campaign scripts, and a span.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// The routing world.
    pub world: World,
    /// Background process shape.
    pub background: BackgroundConfig,
    /// Background updates stop once their timestamp passes this span (ms).
    pub duration_ms: u64,
    /// Campaigns to overlay, in id order.
    pub campaigns: Vec<CampaignConfig>,
    /// Scenario seed (drives the background; campaigns carry their own).
    pub seed: u64,
}

enum Feed {
    Lazy(Box<BackgroundGen>, u64),
    Ready(VecDeque<BgpUpdate>),
}

struct MergeSource {
    feed: Feed,
    peeked: Option<BgpUpdate>,
    tag: Source,
}

impl MergeSource {
    fn refill(&mut self) {
        if self.peeked.is_some() {
            return;
        }
        self.peeked = match &mut self.feed {
            Feed::Lazy(gen, until) => gen.next().filter(|u| u.time.as_millis() < *until),
            Feed::Ready(q) => q.pop_front(),
        };
    }
}

/// The merged, lazily evaluated scenario stream.
pub struct ScenarioEngine {
    sources: Vec<MergeSource>,
    truths: Vec<CampaignTruth>,
    background_times: Vec<u64>,
    emitted: usize,
}

impl ScenarioEngine {
    /// Builds the engine: runs every campaign generator, arms the
    /// background, and leaves the merge lazy.
    pub fn new(cfg: &ScenarioConfig) -> ScenarioEngine {
        let mut sources = Vec::with_capacity(cfg.campaigns.len() + 1);
        sources.push(MergeSource {
            feed: Feed::Lazy(
                Box::new(BackgroundGen::new(cfg.world, cfg.background, cfg.seed)),
                cfg.duration_ms,
            ),
            peeked: None,
            tag: Source::Background,
        });
        let mut truths = Vec::with_capacity(cfg.campaigns.len());
        for (id, c) in cfg.campaigns.iter().enumerate() {
            let (updates, truth) = generate_campaign(&cfg.world, c, id);
            truths.push(truth);
            sources.push(MergeSource {
                feed: Feed::Ready(updates.into()),
                peeked: None,
                tag: Source::Campaign(id),
            });
        }
        ScenarioEngine {
            sources,
            truths,
            background_times: Vec::new(),
            emitted: 0,
        }
    }

    /// Adds a pre-sorted extra update stream to the merge (e.g. the output
    /// of `bgp_sim::Simulator::event_stream`). Call before iterating.
    pub fn add_extra(&mut self, mut updates: Vec<BgpUpdate>) {
        updates.sort_by_key(|u| (u.time, u.vp, u.prefix));
        self.sources.push(MergeSource {
            feed: Feed::Ready(updates.into()),
            peeked: None,
            tag: Source::Extra,
        });
    }

    /// Ground truth of every campaign, in id order.
    pub fn truths(&self) -> &[CampaignTruth] {
        &self.truths
    }

    /// Arrival times of the background updates emitted so far (the
    /// burstiness self-check input).
    pub fn background_times(&self) -> &[u64] {
        &self.background_times
    }

    /// Updates emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Burstiness report over the background arrivals seen so far.
    pub fn burst_report(&self, bin_ms: u64, max_lag: usize) -> BurstReport {
        burst_report(&self.background_times, bin_ms, max_lag)
    }

    /// Asserts the generated background was bursty in-band. Call after the
    /// stream is (mostly) consumed.
    pub fn check_burstiness(&self, bin_ms: u64, band: &BurstBand) -> Result<(), String> {
        self.burst_report(bin_ms, 8).in_band(band)
    }
}

impl Iterator for ScenarioEngine {
    type Item = ScenarioItem;

    fn next(&mut self) -> Option<ScenarioItem> {
        let mut best: Option<(usize, u64)> = None;
        for (i, s) in self.sources.iter_mut().enumerate() {
            s.refill();
            if let Some(u) = &s.peeked {
                let t = u.time.as_millis();
                // strict < keeps the tie-break on the lowest source index
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((i, t));
                }
            }
        }
        let (i, t) = best?;
        let src = &mut self.sources[i];
        let update = src.peeked.take().expect("peeked above");
        if src.tag == Source::Background {
            self.background_times.push(t);
        }
        self.emitted += 1;
        Some(ScenarioItem {
            update,
            source: src.tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignKind;

    fn config(seed: u64) -> ScenarioConfig {
        let world = World {
            n_vps: 6,
            n_prefixes: 48,
            seed: 4,
            dual_stack: false,
        };
        let bg = BackgroundConfig::default();
        let duration = bg.duration_for(4_000);
        let campaigns = vec![
            CampaignConfig {
                kind: CampaignKind::FlapStorm,
                start_ms: duration / 6,
                duration_ms: duration / 6,
                n_targets: 6,
                repeats: 4,
                actor: 64_001,
                seed: seed ^ 1,
            },
            CampaignConfig {
                kind: CampaignKind::HijackWave,
                start_ms: duration / 2,
                duration_ms: duration / 6,
                n_targets: 6,
                repeats: 3,
                actor: 64_002,
                seed: seed ^ 2,
            },
        ];
        ScenarioConfig {
            world,
            background: bg,
            duration_ms: duration,
            campaigns,
            seed,
        }
    }

    #[test]
    fn merge_is_time_sorted_deterministic_and_complete() {
        let cfg = config(9);
        let a: Vec<_> = ScenarioEngine::new(&cfg).collect();
        assert!(a.windows(2).all(|w| w[0].update.time <= w[1].update.time));

        let mut engine = ScenarioEngine::new(&cfg);
        let b: Vec<_> = engine.by_ref().collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.update, y.update);
            assert_eq!(x.source, y.source);
        }
        // every campaign update surfaced exactly once
        for truth in engine.truths() {
            let n = b
                .iter()
                .filter(|i| i.source == Source::Campaign(truth.id))
                .count();
            assert_eq!(n, truth.emitted, "campaign {} incomplete", truth.id);
        }
        // background was recorded and is bursty
        assert_eq!(
            engine.background_times().len(),
            b.iter().filter(|i| i.source == Source::Background).count()
        );
        engine
            .check_burstiness(1_000, &BurstBand::default())
            .expect("background must be bursty");
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = ScenarioEngine::new(&config(9)).map(|i| i.update).collect();
        let b: Vec<_> = ScenarioEngine::new(&config(10)).map(|i| i.update).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn extra_sources_merge_in_time_order() {
        let mut cfg = config(5);
        cfg.campaigns.clear();
        let mut engine = ScenarioEngine::new(&cfg);
        // unsorted extra input is sorted on add, then merged by time
        let w = cfg.world;
        let extra: Vec<BgpUpdate> = (0..50u32)
            .rev()
            .map(|i| {
                bgp_types::UpdateBuilder::announce(w.vp(0), w.prefix(i % 8))
                    .at(bgp_types::Timestamp::from_millis(1_000 + i as u64 * 997))
                    .path(w.path(0, i % 8, 0))
                    .build()
            })
            .collect();
        engine.add_extra(extra);
        let merged: Vec<_> = engine.collect();
        assert!(merged
            .windows(2)
            .all(|x| x[0].update.time <= x[1].update.time));
        assert_eq!(
            merged.iter().filter(|i| i.source == Source::Extra).count(),
            50
        );
    }
}
