//! Burstiness self-check: estimates second-order statistics of an arrival
//! process and asserts they fall in the configured band.
//!
//! Two statistics over binned arrival counts:
//!
//! * **Index of dispersion** `IoD = Var(N)/E(N)` — 1 for Poisson arrivals,
//!   `≫ 1` for overdispersed (bursty) ones. Heavy-tailed ON/OFF traffic
//!   grows the IoD with bin width; a flat uniform stream drives it to 0.
//! * **Lag-k autocorrelation** of the counts — ~0 for memoryless arrivals,
//!   positive and slowly decaying when bursts span bins (the short-range
//!   signature of long-range correlation at the scales a soak can observe).
//!
//! The soak computes these on every run's background arrivals and fails if
//! they leave the band, so a refactor that silently flattens the generator
//! is caught by the same CI job that exercises the pipeline.

/// Acceptance band for [`BurstReport::in_band`].
#[derive(Clone, Copy, Debug)]
pub struct BurstBand {
    /// Minimum index of dispersion of binned counts.
    pub min_iod: f64,
    /// Minimum lag-1 autocorrelation of binned counts.
    pub min_acf1: f64,
    /// Minimum autocorrelation at the deepest computed lag (slow decay —
    /// the long-memory part of the check).
    pub min_acf_tail: f64,
}

impl Default for BurstBand {
    fn default() -> Self {
        BurstBand {
            min_iod: 1.5,
            min_acf1: 0.05,
            min_acf_tail: 0.0,
        }
    }
}

/// Estimated second-order statistics of an arrival process.
#[derive(Clone, Debug)]
pub struct BurstReport {
    /// Number of bins the span was divided into.
    pub bins: usize,
    /// Mean arrivals per bin.
    pub mean: f64,
    /// Index of dispersion (variance over mean) of per-bin counts.
    pub iod: f64,
    /// Autocorrelation of per-bin counts at lags `1..=max_lag`.
    pub acf: Vec<f64>,
}

impl BurstReport {
    /// Lag-1 autocorrelation (0 when no lags were computable).
    pub fn acf1(&self) -> f64 {
        self.acf.first().copied().unwrap_or(0.0)
    }

    /// Autocorrelation at the deepest computed lag.
    pub fn acf_tail(&self) -> f64 {
        self.acf.last().copied().unwrap_or(0.0)
    }

    /// Checks the report against a band, with a diagnostic on failure.
    pub fn in_band(&self, band: &BurstBand) -> Result<(), String> {
        if self.bins < 16 {
            return Err(format!("too few bins ({}) to judge burstiness", self.bins));
        }
        if self.iod < band.min_iod {
            return Err(format!(
                "index of dispersion {:.3} below band minimum {:.3}",
                self.iod, band.min_iod
            ));
        }
        if self.acf1() < band.min_acf1 {
            return Err(format!(
                "lag-1 autocorrelation {:.3} below band minimum {:.3}",
                self.acf1(),
                band.min_acf1
            ));
        }
        if self.acf_tail() < band.min_acf_tail {
            return Err(format!(
                "lag-{} autocorrelation {:.3} below band minimum {:.3}",
                self.acf.len(),
                self.acf_tail(),
                band.min_acf_tail
            ));
        }
        Ok(())
    }
}

/// Bins `times_ms` (need not be sorted) into `bin_ms`-wide bins over the
/// observed span and estimates the dispersion and autocorrelation of the
/// per-bin counts.
pub fn burst_report(times_ms: &[u64], bin_ms: u64, max_lag: usize) -> BurstReport {
    let bin_ms = bin_ms.max(1);
    let (lo, hi) = times_ms
        .iter()
        .fold((u64::MAX, 0u64), |(lo, hi), &t| (lo.min(t), hi.max(t)));
    if times_ms.is_empty() || hi <= lo {
        return BurstReport {
            bins: 0,
            mean: 0.0,
            iod: 0.0,
            acf: Vec::new(),
        };
    }
    let nbins = ((hi - lo) / bin_ms + 1) as usize;
    let mut counts = vec![0f64; nbins];
    for &t in times_ms {
        counts[((t - lo) / bin_ms) as usize] += 1.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<f64>() / n;
    let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n;
    let iod = if mean > 0.0 { var / mean } else { 0.0 };
    let mut acf = Vec::new();
    if var > 0.0 {
        for lag in 1..=max_lag.min(nbins.saturating_sub(2)) {
            let cov = counts
                .iter()
                .zip(counts.iter().skip(lag))
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum::<f64>()
                / (n - lag as f64);
            acf.push(cov / var);
        }
    }
    BurstReport {
        bins: nbins,
        mean,
        iod,
        acf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_arrivals_score_high_flat_score_low() {
        // 50 bursts of 100 arrivals each spanning ~10 s (well past the
        // deepest computed lag), with long silences between bursts
        let mut bursty = Vec::new();
        for b in 0..50u64 {
            for i in 0..100u64 {
                bursty.push(b * 60_000 + i * 100);
            }
        }
        let rb = burst_report(&bursty, 1_000, 8);
        assert!(rb.iod > 5.0, "bursty IoD was {:.2}", rb.iod);
        assert!(rb.acf1() > 0.1, "bursty acf1 was {:.3}", rb.acf1());

        let flat: Vec<u64> = (0..5_000u64).map(|i| i * 600).collect();
        let rf = burst_report(&flat, 1_000, 8);
        assert!(rf.iod < 1.1, "flat IoD was {:.2}", rf.iod);
        assert!(rb.in_band(&BurstBand::default()).is_ok());
        assert!(rf.in_band(&BurstBand::default()).is_err());
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(burst_report(&[], 100, 4).bins, 0);
        assert_eq!(burst_report(&[5], 100, 4).bins, 0);
        let r = burst_report(&[5, 5, 5, 6], 1, 4);
        assert!(r.bins >= 1);
    }
}
