//! Scenario → BMP bridge: renders a [`ScenarioItem`] stream as the BMP
//! (RFC 7854) frames a monitoring router would emit, so the same seeded
//! adversarial day can enter the collector through either protocol — BGP
//! sessions or one BMP session carrying many monitored peers — under one
//! transcript digest.
//!
//! The per-VP → per-peer-header mapping is the load-bearing part: peer
//! `k` of the feed gets a unique synthetic address (`10.x.y.z` from its
//! registration index), the VP's ASN in the per-peer header, and a Peer
//! Up in registration order. The collector-side `BmpFsm` allocates router
//! discriminators per ASN in Peer Up *arrival* order, so as long as VPs
//! are registered in router order (the natural order of
//! `World::vps()`-style lists), the demuxed [`VpId`] on the far side is
//! bit-identical to the one the scenario generated — which is exactly
//! what keeps a mixed BGP+BMP soak day on a single digest.

use crate::engine::ScenarioItem;
use bgp_types::{Asn, VpId};
use bgp_wire::{OpenMessage, UpdateMessage};
use gill_bmp::codec::{info_type, BmpMessage, InfoTlv, PeerHeader, PeerUpMessage};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Renders scenario updates as BMP frames for a fixed set of monitored
/// peers (one per VP).
#[derive(Clone, Debug)]
pub struct BmpFeed {
    peers: Vec<(VpId, Ipv4Addr)>,
    addr_of: HashMap<VpId, Ipv4Addr>,
}

impl BmpFeed {
    /// A feed monitoring `vps`, registered in the given order. Each VP's
    /// router discriminator must equal its per-ASN arrival rank in the
    /// slice (true for any list of distinct-ASN VPs, and for multi-router
    /// VPs listed in router order) — that is what makes the collector's
    /// arrival-order demux reproduce the same [`VpId`]s.
    pub fn new(vps: &[VpId]) -> BmpFeed {
        let mut rank: HashMap<Asn, u16> = HashMap::new();
        let mut peers = Vec::with_capacity(vps.len());
        let mut addr_of = HashMap::with_capacity(vps.len());
        for (i, &vp) in vps.iter().enumerate() {
            let r = rank.entry(vp.asn).or_insert(0);
            assert_eq!(
                vp.router, *r,
                "BmpFeed: VP {vp:?} out of router order (arrival rank {r})"
            );
            *r += 1;
            // unique synthetic peer address from the registration index
            let addr = Ipv4Addr::from(0x0a00_0000 | (i as u32 + 1));
            peers.push((vp, addr));
            addr_of.insert(vp, addr);
        }
        BmpFeed { peers, addr_of }
    }

    /// The monitored peers in registration order, with their addresses.
    pub fn peers(&self) -> &[(VpId, Ipv4Addr)] {
        &self.peers
    }

    /// The per-peer header for `vp` at scenario time `ts_ms`, or `None`
    /// for a VP outside the feed.
    pub fn peer_header(&self, vp: VpId, ts_ms: u64) -> Option<PeerHeader> {
        let addr = *self.addr_of.get(&vp)?;
        Some(PeerHeader::v4(vp.asn.value(), addr, 0, ts_ms))
    }

    /// The session-opening Initiation frame.
    pub fn initiation_frame(sys_name: &str) -> Vec<u8> {
        BmpMessage::Initiation {
            info: vec![
                InfoTlv::string(info_type::SYS_DESCR, "gill scenario feed"),
                InfoTlv::string(info_type::SYS_NAME, sys_name),
            ],
        }
        .encode_to_vec()
        .expect("initiation frame encodes")
    }

    /// One Peer Up frame per monitored peer, in registration order,
    /// timestamped `ts_ms`. Send these right after the Initiation.
    pub fn peer_up_frames(&self, ts_ms: u64) -> Vec<Vec<u8>> {
        let mut local = [0u8; 16];
        local[12..].copy_from_slice(&[10, 255, 0, 254]);
        self.peers
            .iter()
            .map(|&(vp, addr)| {
                BmpMessage::PeerUp(PeerUpMessage {
                    peer: PeerHeader::v4(vp.asn.value(), addr, 0, ts_ms),
                    local_address: local,
                    local_port: 179,
                    remote_port: 40_000,
                    sent_open: OpenMessage::new(Asn(64_512), 180, Ipv4Addr::new(10, 255, 0, 254)),
                    recv_open: OpenMessage::new(vp.asn, 90, addr),
                    info: vec![],
                })
                .encode_to_vec()
                .expect("peer up frame encodes")
            })
            .collect()
    }

    /// Renders one scenario item as a Route Monitoring frame, timestamped
    /// from the update itself (the collector side reads it back out of
    /// the per-peer header — no out-of-band time channel). `None` when
    /// the item's VP is outside the feed or its update has no wire form.
    pub fn route_monitoring_frame(&self, item: &ScenarioItem) -> Option<Vec<u8>> {
        let peer = self.peer_header(item.update.vp, item.update.time.as_millis())?;
        let update = UpdateMessage::from_domain(&item.update).ok()?;
        Some(
            BmpMessage::RouteMonitoring { peer, update }
                .encode_to_vec()
                .expect("route monitoring frame encodes"),
        )
    }

    /// The session-closing Termination frame.
    pub fn termination_frame() -> Vec<u8> {
        BmpMessage::Termination { info: vec![] }
            .encode_to_vec()
            .expect("termination frame encodes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Source;
    use bgp_types::{Prefix, Timestamp, UpdateBuilder};
    use gill_bmp::fsm::{BmpEvent, BmpFsm, BmpSessionConfig};

    fn vps() -> Vec<VpId> {
        vec![
            VpId::from_asn(Asn(65_000)),
            VpId::from_asn(Asn(65_001)),
            // a second router of 65000: router order matches arrival order
            VpId::new(Asn(65_000), 1),
        ]
    }

    fn item(vp: VpId, prefix: u32, t_ms: u64) -> ScenarioItem {
        ScenarioItem {
            update: UpdateBuilder::announce(vp, Prefix::synthetic(prefix))
                .at(Timestamp::from_millis(t_ms))
                .path([vp.asn.value(), 174, 10_000 + prefix])
                .build(),
            source: Source::Background,
        }
    }

    /// The whole point of the feed: frames pushed through a collector-side
    /// `BmpFsm` demux back to the *same* VpIds and timestamps the
    /// scenario generated.
    #[test]
    fn demux_roundtrips_vp_identity_and_time() {
        let vps = vps();
        let feed = BmpFeed::new(&vps);
        let mut fsm = BmpFsm::new(BmpSessionConfig::default(), 0);
        fsm.handle_bytes(&BmpFeed::initiation_frame("test-feed"), 0);
        for f in feed.peer_up_frames(10) {
            fsm.handle_bytes(&f, 0);
        }
        let items = vec![
            item(vps[0], 1, 1_000),
            item(vps[2], 2, 1_100),
            item(vps[1], 3, 1_200),
        ];
        for it in &items {
            fsm.handle_bytes(&feed.route_monitoring_frame(it).unwrap(), 0);
        }
        fsm.handle_bytes(&BmpFeed::termination_frame(), 0);
        let mut got = Vec::new();
        while let Some(ev) = fsm.poll_event() {
            if let BmpEvent::Update { vp, ts_ms, .. } = ev {
                got.push((vp, ts_ms));
            }
        }
        let want: Vec<_> = items
            .iter()
            .map(|i| (i.update.vp, i.update.time.as_millis()))
            .collect();
        assert_eq!(got, want);
        assert_eq!(fsm.ledger().unknown_peer, 0);
        assert_eq!(fsm.ledger().peer_ups, 3);
    }

    #[test]
    fn out_of_feed_vps_have_no_frame() {
        let feed = BmpFeed::new(&vps());
        let stranger = VpId::from_asn(Asn(64_999));
        assert!(feed.route_monitoring_frame(&item(stranger, 1, 5)).is_none());
        assert!(feed.peer_header(stranger, 5).is_none());
    }

    #[test]
    #[should_panic(expected = "out of router order")]
    fn out_of_order_routers_are_rejected() {
        BmpFeed::new(&[VpId::new(Asn(65_000), 1)]);
    }

    #[test]
    fn peer_addresses_are_unique() {
        let many: Vec<VpId> = (0..300).map(|i| VpId::from_asn(Asn(65_000 + i))).collect();
        let feed = BmpFeed::new(&many);
        let mut addrs: Vec<_> = feed.peers().iter().map(|&(_, a)| a).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), many.len());
    }
}
