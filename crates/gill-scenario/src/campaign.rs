//! Adversarial campaign generators. Each campaign is a pure function of
//! its [`CampaignConfig`]: it emits a time-sorted update stream plus a
//! [`CampaignTruth`] ground-truth record, and tests verify the stream
//! *against* the truth (every hijack announce carries a MOAS-conflicting
//! origin, flap storms strictly alternate announce/withdraw per pair, …).

use crate::world::World;
use bgp_types::{Asn, BgpUpdate, Timestamp, UpdateBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The five campaign shapes of an adversarial internet day.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CampaignKind {
    /// The actor re-exports routes it should not: every target prefix is
    /// announced through a path that *transits* the actor.
    RouteLeak,
    /// Each targeted `(vp, prefix)` pair flaps: strictly alternating
    /// announce/withdraw at a tight cadence.
    FlapStorm,
    /// MOAS waves: the actor originates the target prefixes itself, so
    /// every announce conflicts with the world's legitimate origin.
    HijackWave,
    /// Community manipulation: paths stay constant while the community
    /// set churns on every repeat.
    CommunityFlood,
    /// A dense wave of withdrawals across every targeted pair.
    WithdrawalAvalanche,
}

impl CampaignKind {
    /// Stable lowercase tag (CLI values, transcript lines, JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            CampaignKind::RouteLeak => "leak",
            CampaignKind::FlapStorm => "flap",
            CampaignKind::HijackWave => "hijack",
            CampaignKind::CommunityFlood => "community",
            CampaignKind::WithdrawalAvalanche => "withdraw",
        }
    }

    /// Parses a [`CampaignKind::tag`] back.
    pub fn parse(s: &str) -> Option<CampaignKind> {
        match s {
            "leak" => Some(CampaignKind::RouteLeak),
            "flap" => Some(CampaignKind::FlapStorm),
            "hijack" => Some(CampaignKind::HijackWave),
            "community" => Some(CampaignKind::CommunityFlood),
            "withdraw" => Some(CampaignKind::WithdrawalAvalanche),
            _ => None,
        }
    }

    /// All kinds, in a stable order.
    pub fn all() -> [CampaignKind; 5] {
        [
            CampaignKind::RouteLeak,
            CampaignKind::FlapStorm,
            CampaignKind::HijackWave,
            CampaignKind::CommunityFlood,
            CampaignKind::WithdrawalAvalanche,
        ]
    }
}

/// One campaign, fully described.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Which shape.
    pub kind: CampaignKind,
    /// Campaign window start (scenario milliseconds).
    pub start_ms: u64,
    /// Window length; all emitted updates land inside it.
    pub duration_ms: u64,
    /// How many prefixes the campaign targets.
    pub n_targets: u32,
    /// Intensity: waves/flap cycles/flood rounds per target.
    pub repeats: u32,
    /// The adversary's ASN (leaker, hijacker, flood source). Keep it
    /// outside the world's VP/origin/transit ranges so it is unambiguous.
    pub actor: u32,
    /// Campaign randomness (target choice, jitter).
    pub seed: u64,
}

/// Ground truth for one generated campaign.
#[derive(Clone, Debug)]
pub struct CampaignTruth {
    /// Caller-assigned campaign id.
    pub id: usize,
    /// The campaign shape.
    pub kind: CampaignKind,
    /// The adversary ASN.
    pub actor: u32,
    /// Half-open `[first, last+1)` span actually emitted.
    pub window: (u64, u64),
    /// Targeted prefix indices, sorted.
    pub prefixes: Vec<u32>,
    /// Updates emitted.
    pub emitted: usize,
}

/// Runs one campaign generator. Returns the time-sorted update stream and
/// its ground truth. Deterministic in `cfg` (and `world`).
pub fn generate_campaign(
    world: &World,
    cfg: &CampaignConfig,
    id: usize,
) -> (Vec<BgpUpdate>, CampaignTruth) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xc0ff_ee00_0bad_5eed);
    let dur = cfg.duration_ms.max(1_000);

    // sample distinct target prefixes
    let n_targets = cfg.n_targets.clamp(1, world.n_prefixes);
    let mut prefixes: Vec<u32> = Vec::with_capacity(n_targets as usize);
    while (prefixes.len() as u32) < n_targets {
        let p = rng.gen_range(0..world.n_prefixes);
        if !prefixes.contains(&p) {
            prefixes.push(p);
        }
    }
    prefixes.sort_unstable();

    let repeats = cfg.repeats.max(1);
    let mut updates: Vec<BgpUpdate> = Vec::new();
    match cfg.kind {
        CampaignKind::RouteLeak => {
            // `repeats` leak waves: each wave re-announces every target
            // through the actor in transit position
            for w in 0..repeats as u64 {
                let wave_t = cfg.start_ms + dur * w / repeats as u64;
                for &p in &prefixes {
                    for v in 0..world.n_vps {
                        let legit = world.path(v, p, 0);
                        let path = vec![legit[0], cfg.actor, legit[1], *legit.last().unwrap()];
                        updates.push(
                            UpdateBuilder::announce(world.vp(v), world.prefix(p))
                                .at(Timestamp::from_millis(wave_t + rng.gen_range(0..3_000u64)))
                                .path(path)
                                .build(),
                        );
                    }
                }
            }
        }
        CampaignKind::FlapStorm => {
            // per pair: `repeats` announce/withdraw cycles at a tight,
            // jittered cadence, strictly alternating
            for &p in &prefixes {
                for v in 0..world.n_vps {
                    let budget = dur / (2 * repeats as u64 + 1);
                    let t0 = cfg.start_ms + rng.gen_range(0..budget.max(1));
                    // step stays below the half-cycle budget so the
                    // announce/withdraw alternation is strict in time order
                    let step = rng.gen_range(50..=200u64).min(budget.max(1));
                    for r in 0..repeats as u64 {
                        let base = t0 + 2 * r * budget;
                        updates.push(
                            UpdateBuilder::announce(world.vp(v), world.prefix(p))
                                .at(Timestamp::from_millis(base))
                                .path(world.path(v, p, (r & 1) as u8))
                                .build(),
                        );
                        updates.push(
                            UpdateBuilder::withdraw(world.vp(v), world.prefix(p))
                                .at(Timestamp::from_millis(base + step))
                                .build(),
                        );
                    }
                }
            }
        }
        CampaignKind::HijackWave => {
            // `repeats` MOAS waves: the actor originates each target
            for w in 0..repeats as u64 {
                let wave_t = cfg.start_ms + dur * w / repeats as u64;
                for &p in &prefixes {
                    for v in 0..world.n_vps {
                        let vp_asn = world.vp(v).asn.value();
                        let transit = 1_000 + ((cfg.seed as u32 ^ (v << 8) ^ p) % 5_000);
                        updates.push(
                            UpdateBuilder::announce(world.vp(v), world.prefix(p))
                                .at(Timestamp::from_millis(wave_t + rng.gen_range(0..5_000u64)))
                                .path(vec![vp_asn, transit, cfg.actor])
                                .build(),
                        );
                    }
                }
            }
        }
        CampaignKind::CommunityFlood => {
            // path constant per pair; the community set churns every round
            for r in 0..repeats as u64 {
                let round_t = cfg.start_ms + dur * r / repeats as u64;
                for &p in &prefixes {
                    for v in 0..world.n_vps {
                        updates.push(
                            UpdateBuilder::announce(world.vp(v), world.prefix(p))
                                .at(Timestamp::from_millis(round_t + rng.gen_range(0..2_000u64)))
                                .path(world.path(v, p, 0))
                                .community((cfg.actor % 60_000) as u16, r as u16)
                                .community((cfg.actor % 60_000) as u16, (r + 1) as u16 * 7)
                                .build(),
                        );
                    }
                }
            }
        }
        CampaignKind::WithdrawalAvalanche => {
            // one dense wave: every targeted pair withdraws inside a short
            // sub-window, the burst fan-out stress for the broker
            let wave = dur.clamp(1, 30_000);
            for &p in &prefixes {
                for v in 0..world.n_vps {
                    updates.push(
                        UpdateBuilder::withdraw(world.vp(v), world.prefix(p))
                            .at(Timestamp::from_millis(
                                cfg.start_ms + rng.gen_range(0..wave),
                            ))
                            .build(),
                    );
                }
            }
        }
    }

    updates.sort_by_key(|u| (u.time, u.vp, u.prefix));
    let window = match (updates.first(), updates.last()) {
        (Some(a), Some(b)) => (a.time.as_millis(), b.time.as_millis() + 1),
        _ => (cfg.start_ms, cfg.start_ms),
    };
    let truth = CampaignTruth {
        id,
        kind: cfg.kind,
        actor: cfg.actor,
        window,
        prefixes,
        emitted: updates.len(),
    };
    (updates, truth)
}

/// True when `path` transits `asn` (contains it in a non-origin,
/// non-first-hop position) — the route-leak signature.
pub fn path_transits(path: &[Asn], asn: u32) -> bool {
    path.len() > 2 && path[1..path.len() - 1].iter().any(|a| a.value() == asn)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World {
            n_vps: 6,
            n_prefixes: 40,
            seed: 2,
            dual_stack: false,
        }
    }

    fn cfg(kind: CampaignKind) -> CampaignConfig {
        CampaignConfig {
            kind,
            start_ms: 100_000,
            duration_ms: 60_000,
            n_targets: 7,
            repeats: 3,
            actor: 64_100,
            seed: 12,
        }
    }

    #[test]
    fn campaigns_are_deterministic_and_windowed() {
        for kind in CampaignKind::all() {
            let (a, ta) = generate_campaign(&world(), &cfg(kind), 0);
            let (b, tb) = generate_campaign(&world(), &cfg(kind), 0);
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_eq!(ta.emitted, a.len());
            assert_eq!(ta.emitted, tb.emitted);
            assert!(!a.is_empty());
            assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
            for u in &a {
                let t = u.time.as_millis();
                assert!(t >= ta.window.0 && t < ta.window.1);
                assert!((100_000..170_000).contains(&t), "{kind:?} at {t}");
            }
        }
    }

    #[test]
    fn kind_tags_roundtrip() {
        for kind in CampaignKind::all() {
            assert_eq!(CampaignKind::parse(kind.tag()), Some(kind));
        }
        assert_eq!(CampaignKind::parse("nope"), None);
    }
}
