//! The synthetic world scenarios play out in: a fixed set of vantage
//! points, prefixes, per-prefix legitimate origins, and a deterministic
//! palette of stable AS paths per `(vp, prefix)` pair.
//!
//! Campaign ground truth is defined *against* this world: a hijack is an
//! announcement whose origin differs from [`World::origin`], a route leak
//! is a path that transits an AS the palette never routes through, and so
//! on. Keeping the legitimate state in one value means generators and
//! verifiers can never disagree about it.

use bgp_types::{Asn, Prefix, VpId};

/// VP ASNs start here (`vp(i)` has ASN `VP_ASN_BASE + i`), matching the
/// convention of the workspace's bench generators.
pub const VP_ASN_BASE: u32 = 65_000;

/// Prefix `p` is legitimately originated by ASN `ORIGIN_BASE + p`.
pub const ORIGIN_BASE: u32 = 10_000;

/// The static routing world: who exists and what the legitimate routes
/// look like. Cheap to copy; everything is derived on demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct World {
    /// Number of vantage points feeding the collector.
    pub n_vps: u32,
    /// Number of prefixes in play.
    pub n_prefixes: u32,
    /// World seed: fixes the path palette (shared across scenario windows
    /// so filters trained on one window keep matching the next).
    pub seed: u64,
    /// When set, odd prefix indices map to IPv6 (`Prefix::synthetic_v6`)
    /// and every scenario becomes a mixed-family day. Origins, paths and
    /// campaign arithmetic are keyed by the index, so they are
    /// family-agnostic either way.
    pub dual_stack: bool,
}

/// SplitMix64 finalizer — the workspace's standard cheap deterministic mix.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl World {
    /// The `i`-th vantage point.
    pub fn vp(&self, i: u32) -> VpId {
        debug_assert!(i < self.n_vps);
        VpId::from_asn(Asn(VP_ASN_BASE + i))
    }

    /// All vantage points, in index order.
    pub fn vps(&self) -> Vec<VpId> {
        (0..self.n_vps).map(|i| self.vp(i)).collect()
    }

    /// Maps a VP back to its index, if it belongs to this world.
    pub fn vp_index(&self, vp: VpId) -> Option<u32> {
        let a = vp.asn.value();
        (a >= VP_ASN_BASE && a < VP_ASN_BASE + self.n_vps).then(|| a - VP_ASN_BASE)
    }

    /// The `p`-th prefix.
    pub fn prefix(&self, p: u32) -> Prefix {
        debug_assert!(p < self.n_prefixes);
        if self.dual_stack && p % 2 == 1 {
            Prefix::synthetic_v6(p)
        } else {
            Prefix::synthetic(p)
        }
    }

    /// The legitimate origin ASN of prefix `p`.
    pub fn origin(&self, p: u32) -> u32 {
        ORIGIN_BASE + p
    }

    /// One of four stable AS paths from `vp(vp_i)` to prefix `p`'s origin.
    /// Transit ASNs land in `1_000..6_007`, disjoint from VP and origin
    /// ranges, so a campaign actor injected into a path is unambiguous.
    pub fn path(&self, vp_i: u32, p: u32, variant: u8) -> Vec<u32> {
        let mix =
            mix64(self.seed ^ ((vp_i as u64) << 40) ^ ((p as u64) << 8) ^ (variant as u64 & 0x3));
        let t1 = 1_000 + ((mix >> 16) % 5_000) as u32;
        let t2 = t1 + 1 + ((mix >> 32) % 7) as u32;
        vec![VP_ASN_BASE + vp_i, t1, t2, self.origin(p)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_stack_worlds_interleave_families() {
        let v4only = World {
            n_vps: 2,
            n_prefixes: 8,
            seed: 9,
            dual_stack: false,
        };
        let dual = World {
            dual_stack: true,
            ..v4only
        };
        assert!((0..8).all(|p| !v4only.prefix(p).is_ipv6()));
        for p in 0..8 {
            assert_eq!(dual.prefix(p).is_ipv6(), p % 2 == 1);
            // family never changes the legitimate origin or the palette
            assert_eq!(dual.origin(p), v4only.origin(p));
            assert_eq!(dual.path(0, p, 1), v4only.path(0, p, 1));
        }
    }

    #[test]
    fn palette_is_deterministic_and_legitimate() {
        let w = World {
            n_vps: 4,
            n_prefixes: 16,
            seed: 9,
            dual_stack: false,
        };
        assert_eq!(w.path(1, 3, 2), w.path(1, 3, 2));
        assert_ne!(w.path(1, 3, 0), w.path(2, 3, 0));
        for v in 0..4 {
            for p in 0..16 {
                for k in 0..4 {
                    let path = w.path(v, p, k);
                    assert_eq!(*path.last().unwrap(), w.origin(p));
                    assert_eq!(path[0], w.vp(v).asn.value());
                    // transit hops never collide with VP/origin ranges
                    for &t in &path[1..path.len() - 1] {
                        assert!((1_000..6_007).contains(&t));
                    }
                }
            }
        }
        assert_eq!(w.vp_index(w.vp(3)), Some(3));
        assert_eq!(w.vp_index(VpId::from_asn(Asn(64_000))), None);
    }
}
