//! Seeded, deterministic workload engine for soak-testing the full
//! collection pipeline against "adversarial internet days".
//!
//! Every bench in this workspace drives a *uniform* synthetic stream; real
//! feeds are nothing like that. Measured BGP update arrivals are bursty and
//! long-range correlated (Kitsak et al.), and the pathological days the
//! paper motivates collection redesign with — route-leak storms, hijack
//! waves, community-manipulation floods (Krenc et al.) — arrive as
//! *campaigns* layered on that background. This crate synthesizes both:
//!
//! * [`background`] — an ON/OFF burst process with heavy-tailed (bounded
//!   Pareto) burst lengths and silence gaps, plus a per-prefix flap memory
//!   that concentrates activity on recently active `(vp, prefix)` pairs.
//!   The result is overdispersed, positively autocorrelated arrival counts;
//!   [`burst`] provides the estimator that *proves* it on every run.
//! * [`campaign`] — five adversarial campaign generators (route-leak storm,
//!   flap storm, MOAS/hijack wave, community flood, withdrawal avalanche),
//!   each emitting a plain update stream *plus* a [`CampaignTruth`] ground
//!   truth record that tests verify the stream against.
//! * [`engine`] — the deterministic k-way merge of background and campaign
//!   sources into one time-sorted stream of [`ScenarioItem`]s, consumed
//!   lazily so multi-hundred-thousand-update soaks never materialize the
//!   whole day.
//! * [`fnv`] — the FNV-1a transcript digest shared with the collector
//!   harness: two runs of the same seed must produce bit-identical digests.
//!
//! Determinism contract: every public generator is a pure function of its
//! config (seed included). No wall clock, no thread scheduling, no HashMap
//! iteration order reaches an output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod bmp_feed;
pub mod burst;
pub mod campaign;
pub mod engine;
pub mod fnv;
pub mod world;

pub use background::{BackgroundConfig, BackgroundGen};
pub use bmp_feed::BmpFeed;
pub use burst::{burst_report, BurstBand, BurstReport};
pub use campaign::{generate_campaign, path_transits, CampaignConfig, CampaignKind, CampaignTruth};
pub use engine::{ScenarioConfig, ScenarioEngine, ScenarioItem, Source};
pub use fnv::{update_line, Fnv64};
pub use world::World;
