//! Background traffic: an ON/OFF burst process with heavy-tailed burst
//! lengths and silence gaps, plus per-prefix flap memory.
//!
//! The classic construction of long-range-dependent traffic is the
//! superposition of ON/OFF sources whose period lengths are heavy-tailed
//! (Pareto with tail exponent `1 < α < 2`). We generate one aggregate
//! stream the same way: bursts of updates with short intra-burst gaps,
//! separated by bounded-Pareto silences, with bounded-Pareto burst
//! lengths. Within a burst, the *flap memory* re-draws recently active
//! `(vp, prefix)` pairs with configurable probability, so activity clusters
//! per prefix the way real flapping does — the per-prefix autocorrelation
//! the redundancy engine trains on.
//!
//! The generated process is *checked*, not assumed: [`crate::burst`]
//! estimates the index of dispersion and lag autocorrelation of the binned
//! arrival counts, and the soak asserts they are in-band on every run.

use crate::world::World;
use bgp_types::{BgpUpdate, Timestamp, UpdateBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Knobs for the background process. Gaps and lengths are bounded-Pareto:
/// the `*_scale` fields are the Pareto scale (minimum) parameters, the
/// `max_*` fields the truncation bounds, and the `*_alpha` fields the tail
/// exponents (keep them in `(1, 2)` for long-range correlation).
#[derive(Clone, Copy, Debug)]
pub struct BackgroundConfig {
    /// Mean gap between updates inside a burst, in milliseconds.
    pub intra_gap_ms: u64,
    /// Pareto scale of the inter-burst silence, in milliseconds.
    pub gap_scale_ms: u64,
    /// Truncation bound on one silence, in milliseconds.
    pub max_gap_ms: u64,
    /// Tail exponent of the silence distribution.
    pub gap_alpha: f64,
    /// Pareto scale (minimum) of a burst's update count.
    pub burst_scale: u64,
    /// Truncation bound on one burst's update count.
    pub max_burst: u64,
    /// Tail exponent of the burst-length distribution.
    pub burst_alpha: f64,
    /// Probability that a burst update re-draws a recently active pair
    /// instead of a fresh one (per-prefix flap memory).
    pub flap_memory: f64,
    /// How many recently active pairs the memory retains.
    pub memory_depth: usize,
    /// Fraction of prefixes that are "hot" (absorb most fresh draws).
    pub hot_fraction: f64,
    /// Probability that a fresh draw lands in the hot subset.
    pub hot_weight: f64,
    /// Probability that a currently announced pair withdraws (otherwise it
    /// re-announces through another palette variant).
    pub withdraw_prob: f64,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            intra_gap_ms: 40,
            gap_scale_ms: 2_500,
            max_gap_ms: 120_000,
            gap_alpha: 1.3,
            burst_scale: 4,
            max_burst: 400,
            burst_alpha: 1.4,
            flap_memory: 0.55,
            memory_depth: 192,
            hot_fraction: 0.12,
            hot_weight: 0.6,
            withdraw_prob: 0.3,
        }
    }
}

/// Mean of `min(X, h)` where `X` is Pareto with scale `l` and exponent
/// `alpha > 1`: `l · (α − (h/l)^{1−α}) / (α − 1)`.
fn clamped_pareto_mean(l: f64, h: f64, alpha: f64) -> f64 {
    l * (alpha - (h / l).powf(1.0 - alpha)) / (alpha - 1.0)
}

impl BackgroundConfig {
    /// Approximate mean inter-arrival over a long run, in milliseconds
    /// (one burst cycle = one Pareto silence + `E[len] − 1` intra gaps).
    pub fn approx_mean_gap_ms(&self) -> f64 {
        let e_len = clamped_pareto_mean(
            self.burst_scale as f64,
            self.max_burst as f64,
            self.burst_alpha,
        );
        let e_gap = clamped_pareto_mean(
            self.gap_scale_ms as f64,
            self.max_gap_ms as f64,
            self.gap_alpha,
        );
        (e_gap + (e_len - 1.0).max(0.0) * self.intra_gap_ms as f64) / e_len.max(1.0)
    }

    /// Scenario span that yields roughly `n` background updates.
    pub fn duration_for(&self, n: usize) -> u64 {
        (self.approx_mean_gap_ms() * n as f64).ceil() as u64
    }
}

/// Per-pair routing state: announced or not, and which palette variant the
/// last announcement used.
#[derive(Clone, Copy, Default)]
struct PairState {
    announced: bool,
    variant: u8,
}

/// The background generator: an infinite, seeded iterator of updates with
/// non-decreasing timestamps. Bound it by count or by time.
pub struct BackgroundGen {
    world: World,
    cfg: BackgroundConfig,
    rng: SmallRng,
    t_ms: u64,
    burst_left: u64,
    recent: VecDeque<(u32, u32)>,
    hot: Vec<u32>,
    pairs: HashMap<(u32, u32), PairState>,
}

impl BackgroundGen {
    /// A generator over `world`, seeded independently of the world seed.
    pub fn new(world: World, cfg: BackgroundConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x05ca_1ab1_e0dd_ba11);
        let n_hot = (((world.n_prefixes as f64) * cfg.hot_fraction) as u32).max(1);
        // hot subset drawn once per generator, world-independent
        let mut hot = Vec::with_capacity(n_hot as usize);
        while (hot.len() as u32) < n_hot.min(world.n_prefixes) {
            let p = rng.gen_range(0..world.n_prefixes);
            if !hot.contains(&p) {
                hot.push(p);
            }
        }
        BackgroundGen {
            world,
            cfg,
            rng,
            t_ms: 0,
            burst_left: 0,
            recent: VecDeque::new(),
            hot,
            pairs: HashMap::new(),
        }
    }

    /// The current virtual time (time of the last emitted update).
    pub fn now_ms(&self) -> u64 {
        self.t_ms
    }

    /// Clamped bounded-Pareto sample with scale `l`, bound `h`.
    fn pareto(&mut self, l: f64, h: f64, alpha: f64) -> f64 {
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        (l * u.powf(-1.0 / alpha)).min(h)
    }

    fn pick_pair(&mut self) -> (u32, u32) {
        if !self.recent.is_empty() && self.rng.gen::<f64>() < self.cfg.flap_memory {
            let i = self.rng.gen_range(0..self.recent.len());
            return self.recent[i];
        }
        let p = if self.rng.gen::<f64>() < self.cfg.hot_weight {
            let i = self.rng.gen_range(0..self.hot.len());
            self.hot[i]
        } else {
            self.rng.gen_range(0..self.world.n_prefixes)
        };
        (self.rng.gen_range(0..self.world.n_vps), p)
    }
}

impl Iterator for BackgroundGen {
    type Item = BgpUpdate;

    fn next(&mut self) -> Option<BgpUpdate> {
        // advance time: a fresh Pareto silence at burst start, a short
        // uniform gap inside a burst
        if self.burst_left == 0 {
            let (l, h, a) = (
                self.cfg.gap_scale_ms as f64,
                self.cfg.max_gap_ms as f64,
                self.cfg.gap_alpha,
            );
            let gap = self.pareto(l, h, a) as u64;
            let (bl, bh, ba) = (
                self.cfg.burst_scale as f64,
                self.cfg.max_burst as f64,
                self.cfg.burst_alpha,
            );
            self.burst_left = (self.pareto(bl, bh, ba) as u64).max(1);
            self.t_ms += gap.max(1);
        } else {
            self.t_ms += self.rng.gen_range(1..=self.cfg.intra_gap_ms.max(1) * 2);
        }
        self.burst_left -= 1;

        let (vp_i, p) = self.pick_pair();
        self.recent.push_back((vp_i, p));
        while self.recent.len() > self.cfg.memory_depth.max(1) {
            self.recent.pop_front();
        }

        let vp = self.world.vp(vp_i);
        let prefix = self.world.prefix(p);
        let at = Timestamp::from_millis(self.t_ms);
        let state = self.pairs.entry((vp_i, p)).or_default();
        let u = if state.announced && self.rng.gen::<f64>() < self.cfg.withdraw_prob {
            state.announced = false;
            UpdateBuilder::withdraw(vp, prefix).at(at).build()
        } else {
            state.announced = true;
            state.variant = (state.variant + 1) & 0x3;
            let variant = state.variant;
            UpdateBuilder::announce(vp, prefix)
                .at(at)
                .path(self.world.path(vp_i, p, variant))
                .community((1_000 + vp_i) as u16, variant as u16)
                .build()
        };
        Some(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::burst::{burst_report, BurstBand};

    fn world() -> World {
        World {
            n_vps: 8,
            n_prefixes: 64,
            seed: 3,
            dual_stack: false,
        }
    }

    #[test]
    fn generator_is_deterministic_and_time_sorted() {
        let a: Vec<_> = BackgroundGen::new(world(), BackgroundConfig::default(), 7)
            .take(3_000)
            .collect();
        let b: Vec<_> = BackgroundGen::new(world(), BackgroundConfig::default(), 7)
            .take(3_000)
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        let c: Vec<_> = BackgroundGen::new(world(), BackgroundConfig::default(), 8)
            .take(3_000)
            .collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn announce_withdraw_states_are_consistent() {
        // a withdraw for a pair only ever follows an announce for that pair
        let mut announced = std::collections::HashSet::new();
        for u in BackgroundGen::new(world(), BackgroundConfig::default(), 11).take(5_000) {
            let key = (u.vp, u.prefix);
            if u.is_announce() {
                announced.insert(key);
            } else {
                assert!(announced.remove(&key), "withdraw without announce");
            }
        }
    }

    #[test]
    fn arrivals_are_bursty_for_multiple_seeds() {
        for seed in [1u64, 2, 3, 17, 99] {
            let times: Vec<u64> = BackgroundGen::new(world(), BackgroundConfig::default(), seed)
                .take(8_000)
                .map(|u| u.time.as_millis())
                .collect();
            let report = burst_report(&times, 1_000, 8);
            report
                .in_band(&BurstBand::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn uniform_arrivals_fail_the_band() {
        // power check: a memoryless uniform process must NOT pass, so the
        // estimator genuinely distinguishes bursty from flat traffic
        let times: Vec<u64> = (0..8_000u64).map(|i| i * 37).collect();
        let report = burst_report(&times, 1_000, 8);
        assert!(report.in_band(&BurstBand::default()).is_err());
    }

    #[test]
    fn duration_estimate_is_in_the_right_ballpark() {
        let cfg = BackgroundConfig::default();
        let n = 6_000;
        let gen = BackgroundGen::new(world(), cfg, 5);
        let last = gen.take(n).last().unwrap().time.as_millis();
        let predicted = cfg.duration_for(n) as f64;
        let ratio = last as f64 / predicted;
        assert!(
            (0.2..5.0).contains(&ratio),
            "span {last} vs predicted {predicted}"
        );
    }
}
