//! FNV-1a transcript digests — the same constants as the collector
//! harness's `Transcript::digest`, exposed as a streaming hasher so a
//! 500k-update soak never materializes its transcript.
//!
//! Equal digests mean two runs were observationally identical, bit for
//! bit; the soak's determinism acceptance check is exactly "same seed ⇒
//! same digest".

use bgp_types::BgpUpdate;

/// Streaming FNV-1a (64-bit) over lines.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }

    /// Absorbs one transcript line plus a terminating newline.
    pub fn write_line(&mut self, line: &str) {
        self.write(line.as_bytes());
        self.write(b"\n");
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Canonical one-line rendering of an update for transcripts: every field
/// that affects pipeline behavior, none that depends on the host.
pub fn update_line(u: &BgpUpdate) -> String {
    let kind = if u.is_announce() { 'A' } else { 'W' };
    let path: Vec<String> = u
        .path
        .hops()
        .iter()
        .map(|a| a.value().to_string())
        .collect();
    let comms: Vec<String> = u.communities.iter().map(|c| c.to_string()).collect();
    format!(
        "{kind} t={} vp={}#{} p={} path={} comms={}",
        u.time.as_millis(),
        u.vp.asn.value(),
        u.vp.router,
        u.prefix,
        path.join("-"),
        comms.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Asn, Prefix, Timestamp, UpdateBuilder, VpId};

    #[test]
    fn digest_matches_reference_constants() {
        // FNV-1a of "a\n" from the offset basis
        let mut h = Fnv64::new();
        h.write_line("a");
        let mut manual: u64 = 0xcbf2_9ce4_8422_2325;
        for b in b"a\n" {
            manual ^= u64::from(*b);
            manual = manual.wrapping_mul(0x1_0000_01b3);
        }
        assert_eq!(h.finish(), manual);
    }

    #[test]
    fn update_line_distinguishes_fields() {
        let base = UpdateBuilder::announce(VpId::from_asn(Asn(65_001)), Prefix::synthetic(4))
            .at(Timestamp::from_millis(10))
            .path([65_001, 2, 3])
            .community(9, 9)
            .build();
        let mut other = base.clone();
        other.communities.clear();
        assert_ne!(update_line(&base), update_line(&other));
    }
}
