//! The `bgp-sim` event stream as a scenario source: the satellite contract
//! that `Simulator::event_stream` is reusable outside `synthesize_stream`.
//!
//! The scenario engine merges a simulated window (pulled batch-by-batch
//! through the iterator API) with its own background and campaign sources,
//! and the result is still deterministic and time-sorted.

use as_topology::TopologyBuilder;
use bgp_sim::{Simulator, StreamConfig};
use bgp_types::BgpUpdate;
use gill_scenario::{
    BackgroundConfig, CampaignConfig, CampaignKind, ScenarioConfig, ScenarioEngine, Source, World,
};

/// Pulls one simulated window through the iterator API.
fn sim_window(seed: u64) -> Vec<BgpUpdate> {
    let topo = TopologyBuilder::artificial(120, 5).build();
    let mut sim = Simulator::new(&topo);
    let vps = topo.pick_vps(0.2, 3);
    let cfg = StreamConfig::default().events(25).seed(seed);
    let mut stream = sim.event_stream(&vps, &cfg);
    let mut updates = stream.take_initial_updates();
    let mut batches = 0usize;
    for batch in stream.by_ref() {
        assert_eq!(
            batch.event.emitted_updates,
            batch.updates.len(),
            "batch count out of sync with its ground-truth record"
        );
        updates.extend(batch.updates);
        batches += 1;
    }
    assert!(batches > 0, "no events executed");
    assert_eq!(stream.pending_events(), 0, "queue must drain");
    updates
}

#[test]
fn event_stream_batches_match_synthesize_stream() {
    // the iterator path and the one-shot path agree update-for-update
    let topo = TopologyBuilder::artificial(120, 5).build();
    let mut sim = Simulator::new(&topo);
    let vps = topo.pick_vps(0.2, 3);
    let cfg = StreamConfig::default().events(25).seed(3);
    let whole = sim.synthesize_stream(&vps, cfg);

    let mut pulled = sim_window(3);
    pulled.sort_by_key(|u| (u.time, u.vp, u.prefix));
    assert_eq!(pulled.len(), whole.updates.len());
    for (a, b) in pulled.iter().zip(&whole.updates) {
        // synthesize_stream additionally annotates Lw/Cw by replay; the
        // raw batches agree on everything else
        assert_eq!(a.time, b.time);
        assert_eq!(a.vp, b.vp);
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.path, b.path);
        assert_eq!(a.communities, b.communities);
    }
}

#[test]
fn scenario_engine_merges_a_simulated_window() {
    let world = World {
        n_vps: 4,
        n_prefixes: 32,
        seed: 6,
        dual_stack: false,
    };
    let bg = BackgroundConfig::default();
    let cfg = ScenarioConfig {
        world,
        background: bg,
        duration_ms: bg.duration_for(1_500),
        campaigns: vec![CampaignConfig {
            kind: CampaignKind::WithdrawalAvalanche,
            start_ms: 60_000,
            duration_ms: 30_000,
            n_targets: 8,
            repeats: 1,
            actor: 64_009,
            seed: 21,
        }],
        seed: 44,
    };

    let run = || {
        let mut engine = ScenarioEngine::new(&cfg);
        engine.add_extra(sim_window(9));
        engine.collect::<Vec<_>>()
    };
    let merged = run();
    let again = run();

    assert!(merged
        .windows(2)
        .all(|w| w[0].update.time <= w[1].update.time));
    let n_extra = merged.iter().filter(|i| i.source == Source::Extra).count();
    assert_eq!(n_extra, sim_window(9).len(), "every sim update merged");
    assert!(merged.iter().any(|i| i.source == Source::Background));
    assert!(merged.iter().any(|i| i.source == Source::Campaign(0)));
    assert_eq!(merged.len(), again.len(), "merge must be deterministic");
    for (a, b) in merged.iter().zip(&again) {
        assert_eq!(a.update, b.update);
        assert_eq!(a.source, b.source);
    }
}
