//! Property tests: every campaign generator against its own ground truth.
//!
//! The campaign shapes come from `bgp_types::testgen::arb_campaign_shape`,
//! the same strategy vocabulary the workspace's other proptests draw from,
//! so widening the shape distribution stresses every consumer at once.

use bgp_types::testgen::{arb_campaign_shape, CampaignShape};
use bgp_types::BgpUpdate;
use gill_scenario::{generate_campaign, path_transits, CampaignConfig, CampaignKind, World};
use proptest::prelude::*;
use std::collections::HashMap;

fn world() -> World {
    World {
        n_vps: 5,
        n_prefixes: 32,
        seed: 77,
        dual_stack: false,
    }
}

fn cfg(kind: CampaignKind, s: CampaignShape) -> CampaignConfig {
    CampaignConfig {
        kind,
        start_ms: s.start_ms,
        duration_ms: s.duration_ms,
        n_targets: s.n_targets,
        repeats: s.repeats,
        actor: s.actor,
        seed: s.seed,
    }
}

/// Shared truth checks: emitted count, window containment, targeted
/// prefixes only.
fn check_common(kind: CampaignKind, updates: &[BgpUpdate], w: &World, truth_prefixes: &[u32]) {
    for u in updates {
        let p = u
            .prefix
            .synthetic_index()
            .expect("campaigns emit synthetic prefixes");
        assert!(
            truth_prefixes.contains(&p),
            "{kind:?} touched untargeted prefix {p}"
        );
        assert!(w.vp_index(u.vp).is_some(), "{kind:?} used a foreign VP");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hijack_waves_always_conflict_with_the_legitimate_origin(s in arb_campaign_shape()) {
        let w = world();
        let (updates, truth) = generate_campaign(&w, &cfg(CampaignKind::HijackWave, s), 0);
        prop_assert_eq!(truth.emitted, updates.len());
        check_common(CampaignKind::HijackWave, &updates, &w, &truth.prefixes);
        for u in &updates {
            prop_assert!(u.is_announce());
            let origin = u.path.origin().expect("announce has a path").value();
            // the MOAS signature: origin is the actor, never the world's
            prop_assert_eq!(origin, truth.actor);
            let p = u.prefix.synthetic_index().unwrap();
            prop_assert_ne!(origin, w.origin(p));
        }
    }

    #[test]
    fn flap_storms_strictly_alternate_per_pair(s in arb_campaign_shape()) {
        let w = world();
        let (updates, truth) = generate_campaign(&w, &cfg(CampaignKind::FlapStorm, s), 0);
        prop_assert_eq!(truth.emitted, updates.len());
        check_common(CampaignKind::FlapStorm, &updates, &w, &truth.prefixes);
        // per (vp, prefix): starts with announce, alternates strictly,
        // 2·repeats updates, ends withdrawn
        let mut per_pair: HashMap<_, Vec<bool>> = HashMap::new();
        for u in &updates {
            per_pair.entry((u.vp, u.prefix)).or_default().push(u.is_announce());
        }
        let repeats = s.repeats.max(1) as usize;
        for ((vp, prefix), seq) in per_pair {
            prop_assert_eq!(
                seq.len(),
                2 * repeats,
                "pair {:?}/{} flapped {} times",
                vp,
                prefix,
                seq.len()
            );
            for (i, announce) in seq.iter().enumerate() {
                prop_assert_eq!(*announce, i % 2 == 0, "alternation broken at {}", i);
            }
        }
    }

    #[test]
    fn route_leaks_always_transit_the_actor(s in arb_campaign_shape()) {
        let w = world();
        let (updates, truth) = generate_campaign(&w, &cfg(CampaignKind::RouteLeak, s), 0);
        prop_assert_eq!(truth.emitted, updates.len());
        check_common(CampaignKind::RouteLeak, &updates, &w, &truth.prefixes);
        for u in &updates {
            prop_assert!(u.is_announce());
            prop_assert!(
                path_transits(u.path.hops(), truth.actor),
                "leak path missing actor transit"
            );
            // still ends at the legitimate origin — that is what makes it a
            // leak rather than a hijack
            let p = u.prefix.synthetic_index().unwrap();
            prop_assert_eq!(u.path.origin().unwrap().value(), w.origin(p));
        }
    }

    #[test]
    fn community_floods_churn_communities_on_constant_paths(s in arb_campaign_shape()) {
        let w = world();
        let (updates, truth) = generate_campaign(&w, &cfg(CampaignKind::CommunityFlood, s), 0);
        prop_assert_eq!(truth.emitted, updates.len());
        check_common(CampaignKind::CommunityFlood, &updates, &w, &truth.prefixes);
        let mut paths: HashMap<_, Vec<_>> = HashMap::new();
        let mut comm_sets: HashMap<_, Vec<_>> = HashMap::new();
        for u in &updates {
            prop_assert!(u.is_announce());
            prop_assert!(!u.communities.is_empty(), "flood update without communities");
            paths.entry((u.vp, u.prefix)).or_default().push(u.path.clone());
            comm_sets
                .entry((u.vp, u.prefix))
                .or_default()
                .push(u.communities.clone());
        }
        for (pair, ps) in paths {
            prop_assert!(
                ps.windows(2).all(|w| w[0] == w[1]),
                "path churned for {:?}",
                pair
            );
            let cs = &comm_sets[&pair];
            if cs.len() > 1 {
                prop_assert!(
                    cs.windows(2).all(|w| w[0] != w[1]),
                    "communities did not churn for {:?}",
                    pair
                );
            }
        }
    }

    #[test]
    fn withdrawal_avalanches_withdraw_every_targeted_pair(s in arb_campaign_shape()) {
        let w = world();
        let (updates, truth) = generate_campaign(&w, &cfg(CampaignKind::WithdrawalAvalanche, s), 0);
        prop_assert_eq!(truth.emitted, updates.len());
        check_common(CampaignKind::WithdrawalAvalanche, &updates, &w, &truth.prefixes);
        prop_assert_eq!(
            updates.len(),
            truth.prefixes.len() * w.n_vps as usize,
            "one withdrawal per targeted pair"
        );
        for u in &updates {
            prop_assert!(!u.is_announce());
        }
    }

    #[test]
    fn campaigns_are_pure_functions_of_their_config(s in arb_campaign_shape()) {
        let w = world();
        for kind in CampaignKind::all() {
            let (a, ta) = generate_campaign(&w, &cfg(kind, s), 3);
            let (b, tb) = generate_campaign(&w, &cfg(kind, s), 3);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(ta.window, tb.window);
            prop_assert_eq!(&ta.prefixes, &tb.prefixes);
            // truth windows bound every emission
            for u in &a {
                let t = u.time.as_millis();
                prop_assert!(t >= ta.window.0 && t < ta.window.1);
            }
        }
    }
}
