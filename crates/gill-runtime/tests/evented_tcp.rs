//! End-to-end tests for the evented runtime over real TCP: BGP peers and
//! BMP routers against an [`EventedPool`], asserting the same pipeline
//! counters the threaded runtime maintains, the accept-cap shed path,
//! and the bounded-deadline shutdown.

use bgp_types::{Asn, Prefix, UpdateBuilder, VpId};
use bgp_wire::{BgpMessage, Notification, UpdateMessage};
use gill_collector::daemon::{handshake_client, DaemonConfig, MessageStream};
use gill_collector::transport::Transport;
use gill_runtime::{EventedPool, RuntimeConfig};
use gill_scenario::{
    BackgroundConfig, BmpFeed, ScenarioConfig, ScenarioEngine, ScenarioItem, World,
};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn daemon_cfg() -> DaemonConfig {
    DaemonConfig {
        local_asn: 65535,
        queue_capacity: 4096,
        ..DaemonConfig::default()
    }
}

/// Polls `cond` for up to ~5 s.
fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
    for _ in 0..500 {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn send_updates(addr: std::net::SocketAddr, asn: u32, prefixes: &[u32]) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut ms = MessageStream::new(stream);
    handshake_client(&mut ms, asn).unwrap();
    for &p in prefixes {
        let u = UpdateBuilder::announce(VpId::from_asn(Asn(asn)), Prefix::synthetic(p))
            .path([asn, 2, 3])
            .build();
        let wire = UpdateMessage::from_domain(&u).unwrap();
        ms.write_message(&BgpMessage::Update(wire)).unwrap();
    }
    ms.write_message(&BgpMessage::Notification(Notification::cease()))
        .unwrap();
}

#[test]
fn bgp_sessions_flow_through_the_evented_pipeline() {
    let mut pool = EventedPool::start(
        daemon_cfg(),
        RuntimeConfig {
            workers: 2,
            bgp_addr: Some("127.0.0.1:0".into()),
            bmp: None,
        },
        None,
    )
    .unwrap();
    let addr = pool.bgp_addr().unwrap();

    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                send_updates(addr, 65001 + i, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    assert!(
        wait_until(|| pool.stats().received.load(Ordering::Relaxed) >= 80),
        "evented pipeline saw {} of 80 updates",
        pool.stats().received.load(Ordering::Relaxed)
    );
    assert!(wait_until(|| {
        pool.stats().sessions_closed.load(Ordering::Relaxed) >= 8
    }));
    assert_eq!(pool.stats().sessions_opened.load(Ordering::Relaxed), 8);
    assert_eq!(pool.stats().received.load(Ordering::Relaxed), 80);
    // no filters installed: everything received was retained
    assert_eq!(pool.stats().retained.load(Ordering::Relaxed), 80);
    let totals = pool.totals();
    assert_eq!(totals.accepted, 8, "every session admitted to a loop");
    assert!(totals.ready_events > 0);

    pool.stop();
    assert_eq!(pool.totals().sessions, 0, "all sessions drained on stop");
}

#[test]
fn accept_cap_rejects_with_notification_cease() {
    let mut pool = EventedPool::start(
        DaemonConfig {
            max_sessions: 2,
            ..daemon_cfg()
        },
        RuntimeConfig {
            workers: 1,
            bgp_addr: Some("127.0.0.1:0".into()),
            bmp: None,
        },
        None,
    )
    .unwrap();
    let addr = pool.bgp_addr().unwrap();

    // fill the cap with two held-open sessions
    let mut held = Vec::new();
    for i in 0..2 {
        let stream = TcpStream::connect(addr).unwrap();
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, 65101 + i).unwrap();
        held.push(ms);
    }
    assert!(wait_until(|| pool.active_sessions() == 2));

    // the third connection is told to go away before any handshake
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut ms = MessageStream::new(stream);
    match ms.read_message() {
        Ok(Some(BgpMessage::Notification(n))) => {
            assert_eq!(n.code, 6, "NOTIFICATION must be Cease, got code {}", n.code);
        }
        other => panic!("expected NOTIFICATION Cease at accept, got {other:?}"),
    }
    assert!(wait_until(|| {
        pool.stats().accept_rejected.load(Ordering::Relaxed) == 1
    }));
    assert_eq!(pool.totals().accept_shed, 1);

    // capacity frees up once a held session closes
    drop(held.pop());
    assert!(wait_until(|| pool.active_sessions() == 1));
    let stream = TcpStream::connect(addr).unwrap();
    let mut ms = MessageStream::new(stream);
    handshake_client(&mut ms, 65111).unwrap();
    assert!(wait_until(|| pool.active_sessions() == 2));
    pool.stop();
}

/// Builds one BMP session script (Initiation, Peer Ups, Route
/// Monitoring, Termination) and the expected update count.
fn bmp_script() -> (Vec<Vec<u8>>, usize) {
    let world = World {
        n_vps: 4,
        n_prefixes: 64,
        seed: 0xeb1,
        dual_stack: false,
    };
    let background = BackgroundConfig::default();
    let duration_ms = background.duration_for(200);
    let cfg = ScenarioConfig {
        world,
        background,
        duration_ms,
        campaigns: Vec::new(),
        seed: 11,
    };
    let items: Vec<ScenarioItem> = ScenarioEngine::new(&cfg).collect();
    let vps: Vec<_> = (0..4).map(|i| world.vp(i)).collect();
    let feed = BmpFeed::new(&vps);
    let mut frames = vec![BmpFeed::initiation_frame("evented-test")];
    frames.extend(feed.peer_up_frames(0));
    let mut updates = 0;
    for item in &items {
        if let Some(f) = feed.route_monitoring_frame(item) {
            frames.push(f);
            updates += 1;
        }
    }
    frames.push(BmpFeed::termination_frame());
    (frames, updates)
}

#[test]
fn bmp_routers_feed_the_same_pipeline() {
    let (frames, updates) = bmp_script();
    assert!(updates > 0, "scenario produced no monitored updates");
    let mut pool = EventedPool::start(
        daemon_cfg(),
        RuntimeConfig {
            workers: 2,
            bgp_addr: None,
            bmp: Some(gill_bmp::config::BmpConfig::single("127.0.0.1:0")),
        },
        None,
    )
    .unwrap();
    let addr = pool.bmp_addrs()[0];

    let mut router = TcpStream::connect(addr).unwrap();
    for f in &frames {
        router.write_all(f).unwrap();
    }

    assert!(
        wait_until(|| pool.bmp_stats().updates.load(Ordering::Relaxed) >= updates),
        "bmp updates: {} of {updates}",
        pool.bmp_stats().updates.load(Ordering::Relaxed)
    );
    assert!(wait_until(|| {
        pool.bmp_stats().sessions_closed.load(Ordering::Relaxed) == 1
    }));
    assert_eq!(pool.bmp_stats().sessions_opened.load(Ordering::Relaxed), 1);
    assert_eq!(pool.bmp_stats().peers_up.load(Ordering::Relaxed), 4);
    assert_eq!(pool.bmp_stats().terminations.load(Ordering::Relaxed), 1);
    assert_eq!(pool.bmp_stats().unknown_peer.load(Ordering::Relaxed), 0);
    // the shared pipeline counted the same updates as the BMP ledger
    assert_eq!(pool.stats().received.load(Ordering::Relaxed), updates);
    pool.stop();
}

#[test]
fn stop_winds_down_open_sessions_with_a_bounded_deadline() {
    let mut pool = EventedPool::start(
        daemon_cfg(),
        RuntimeConfig {
            workers: 2,
            bgp_addr: Some("127.0.0.1:0".into()),
            bmp: None,
        },
        None,
    )
    .unwrap();
    let addr = pool.bgp_addr().unwrap();

    let mut held = Vec::new();
    for i in 0..4 {
        let stream = TcpStream::connect(addr).unwrap();
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, 65201 + i).unwrap();
        held.push(ms);
    }
    assert!(wait_until(|| pool.active_sessions() == 4));

    let t0 = std::time::Instant::now();
    pool.stop();
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "stop took {:?}",
        t0.elapsed()
    );
    assert_eq!(pool.totals().sessions, 0, "sessions drained");
    assert_eq!(pool.active_sessions(), 0);

    // each held peer got the parting NOTIFICATION Cease (graceful close)
    for ms in &mut held {
        ms.transport_mut()
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        match ms.read_message() {
            Ok(Some(BgpMessage::Notification(n))) => assert_eq!(n.code, 6),
            other => panic!("expected parting NOTIFICATION, got {other:?}"),
        }
    }
}
