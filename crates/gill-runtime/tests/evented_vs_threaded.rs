//! Conformance: the evented runtime drives the very same `SessionFsm`
//! to the very same observable transcript as the deterministic
//! threaded-mode harness (`gill_collector::harness::run_scenario`),
//! fault schedule by fault schedule.
//!
//! The reference runs both FSMs directly over a faulted [`sim_pair`]
//! link. The evented run keeps the client side identical but serves the
//! *server* FSM through an [`EventLoop`] fed by a scripted
//! [`SimReactor`] — timers through the wheel, bytes through
//! `EventedConn`, events through the tap — with seeded spurious and
//! duplicate readiness injected along the way. Equal
//! [`Transcript::digest`]s mean the two runtimes are observationally
//! interchangeable for that fault schedule; the property test asserts
//! this across dozens of seeded random schedules and interleavings.

use bgp_types::Prefix;
use bgp_wire::UpdateMessage;
use gill_bmp::listener::BmpStats;
use gill_collector::daemon::{DaemonStats, SessionCtx};
use gill_collector::fsm::{SessionEvent, SessionFsm, SessionRole};
use gill_collector::harness::{render_event, run_scenario, Scenario, Side, Transcript};
use gill_collector::transport::{
    sim_pair, BackoffPolicy, Clock, FaultSchedule, SimTransport, Transport, VirtualClock,
};
use gill_core::FilterHandle;
use gill_runtime::{Event, EventLoop, Machine, SimReactor, Token};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The server's transport for the conformance run, reproducing two
/// reference-harness behaviors the raw link doesn't have:
///
/// 1. **Close is protocol-level.** The harness never severs the link on
///    session close, so `shutdown` is a no-op here (the event loop calls
///    it on removal, which is correct against real sockets).
/// 2. **Writes are queue-then-write-phase.** The reference server's
///    `pump` writes its queued output at the *start* of each pump
///    round, after the client's read of that round. The event loop
///    instead flushes machine output the moment it appears, so the gate
///    buffers every write — the buffer plays the reference's output
///    queue — and the test's [`release`] plays the write phase,
///    putting bytes on the link at the same virtual instants, in the
///    same order, as the reference would (fault offsets and delays
///    accrue identically).
///
/// A release that finds the link dead marks the gate failed; the next
/// access errors, which the event loop surfaces as EOF — the same
/// instant the reference's failed `write_all` triggers `handle_eof`.
///
/// [`release`]: GatedLink::release
#[derive(Clone)]
struct GatedLink(Arc<Mutex<GateInner>>);

struct GateInner {
    inner: SimTransport,
    buf: Vec<u8>,
    failed: bool,
}

impl GatedLink {
    fn new(inner: SimTransport) -> GatedLink {
        GatedLink(Arc::new(Mutex::new(GateInner {
            inner,
            buf: Vec::new(),
            failed: false,
        })))
    }

    /// The write phase: everything queued since the last release goes
    /// onto the link.
    fn release(&self) {
        let mut g = self.0.lock().unwrap();
        if g.buf.is_empty() {
            return;
        }
        let buf = std::mem::take(&mut g.buf);
        if g.inner.write_all(&buf).is_err() {
            g.failed = true;
        }
    }

    /// Queued bytes not yet on the link (the reference's
    /// `server.fsm.has_output()`).
    fn buffered(&self) -> usize {
        self.0.lock().unwrap().buf.len()
    }
}

fn dead_link() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "link failed at release")
}

impl Transport for GatedLink {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut g = self.0.lock().unwrap();
        if g.failed {
            return Err(dead_link());
        }
        g.inner.read(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut g = self.0.lock().unwrap();
        if g.failed {
            return Err(dead_link());
        }
        g.buf.extend_from_slice(buf);
        Ok(())
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.0.lock().unwrap().inner.set_read_timeout(timeout)
    }

    fn shutdown(&mut self) {}
}

/// The client endpoint, replicated verbatim from the harness: flush all
/// FSM output (write failure surfaces as EOF), then read to
/// `WouldBlock`.
struct ClientEnd {
    fsm: SessionFsm,
    transport: SimTransport,
    eof_seen: bool,
}

impl ClientEnd {
    fn pump(&mut self, now: u64) {
        while self.fsm.has_output() {
            let out = self.fsm.take_output();
            if self.transport.write_all(&out).is_err() {
                if !self.eof_seen {
                    self.eof_seen = true;
                    self.fsm.handle_eof(now);
                }
                return;
            }
        }
        let mut buf = [0u8; 4096];
        loop {
            match self.transport.read(&mut buf) {
                Ok(0) => {
                    if !self.eof_seen {
                        self.eof_seen = true;
                        self.fsm.handle_eof(now);
                    }
                    return;
                }
                Ok(n) => self.fsm.handle_bytes(&buf[..n], now),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    if !self.eof_seen {
                        self.eof_seen = true;
                        self.fsm.handle_eof(now);
                    }
                    return;
                }
            }
        }
    }

    fn drain_into(
        &mut self,
        transcript: &mut Transcript,
        now: u64,
        attempt: u32,
    ) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        while let Some(e) = self.fsm.poll_event() {
            transcript.record(now, attempt, Side::Client, render_event(&e));
            events.push(e);
        }
        events
    }
}

/// What the evented run produced, shaped like `ScenarioOutcome`.
struct EventedOutcome {
    transcript: Transcript,
    delivered: usize,
    attempts: u32,
    completed: bool,
}

/// Runs `scenario` with the server FSM multiplexed by an [`EventLoop`]
/// over a scripted [`SimReactor`], mirroring `run_scenario`'s stepping
/// exactly. `interleave_seed` drives the injected spurious/duplicate
/// readiness — the transcript must not depend on it.
fn run_scenario_evented(scenario: &Scenario, interleave_seed: u64) -> EventedOutcome {
    let clock = VirtualClock::new();
    let backoff = BackoffPolicy {
        seed: scenario.seed,
        ..BackoffPolicy::default()
    };
    let mut rng = SmallRng::seed_from_u64(interleave_seed);
    let mut transcript = Transcript::default();
    let mut delivered_total = 0usize;
    let mut completed = false;
    let mut attempts = 0u32;

    while attempts < scenario.max_attempts.max(1) {
        let attempt = attempts;
        attempts += 1;
        if attempt > 0 {
            let delay = backoff.delay_ms(attempt - 1);
            clock.advance_ms(delay);
            transcript.record(
                clock.now_ms(),
                attempt,
                Side::Client,
                format!("reconnect backoff={delay}"),
            );
        }
        let c_faults = scenario
            .client_faults
            .get(attempt as usize)
            .cloned()
            .unwrap_or_else(FaultSchedule::none);
        let s_faults = scenario
            .server_faults
            .get(attempt as usize)
            .cloned()
            .unwrap_or_else(FaultSchedule::none);
        let (ct, st) = sim_pair(&clock, c_faults, s_faults);
        let mut client = ClientEnd {
            fsm: SessionFsm::new(SessionRole::Active, scenario.client),
            transport: ct,
            eof_seen: false,
        };

        // a fresh loop per attempt, exactly as the threaded runtime
        // spawns a fresh drive loop per accepted connection
        let stats = Arc::new(DaemonStats::default());
        let (tx, _rx) = crossbeam::channel::unbounded();
        let ctx = SessionCtx::new(FilterHandle::empty().view(), tx, stats);
        let mut el: EventLoop<GatedLink, SimReactor> = EventLoop::new(
            SimReactor::new(),
            Arc::new(clock.clone()),
            ctx,
            Arc::new(BmpStats::default()),
        );
        let server_lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let server_closed = Arc::new(AtomicBool::new(false));
        let server_updates = Arc::new(AtomicUsize::new(0));
        {
            let lines = server_lines.clone();
            let closed = server_closed.clone();
            let updates = server_updates.clone();
            el.set_event_tap(Box::new(move |_tok, ev| {
                lines.lock().unwrap().push(render_event(ev));
                match ev {
                    SessionEvent::Update(_) => {
                        updates.fetch_add(1, Ordering::Relaxed);
                    }
                    SessionEvent::Closed(_) => closed.store(true, Ordering::Relaxed),
                    _ => {}
                }
            }));
        }
        let start = clock.now_ms();
        client.fsm.start(start);
        let gate = GatedLink::new(st);
        let token = el
            .add_session(
                gate.clone(),
                None,
                Machine::Bgp(SessionFsm::new(SessionRole::Passive, scenario.server)),
            )
            .unwrap();

        let mut next_send: Option<u64> = None;
        let mut sent = 0usize;
        let mut attempt_established = false;
        let mut other: Vec<Event> = Vec::new();

        loop {
            let now = clock.now_ms();
            client.fsm.tick(now);
            // (the server ticks inside run_once: the wheel fires its
            // due deadline before any I/O at this instant)
            if let Some(due) = next_send {
                if now >= due && sent < scenario.updates.len() {
                    client.fsm.send_update(&scenario.updates[sent]);
                    sent += 1;
                    next_send = Some(now + scenario.send_interval_ms);
                }
            }
            // timer phase: the wheel fires the server's due deadline
            // before any I/O at this instant; its output (a KEEPALIVE,
            // a hold-expiry NOTIFICATION) lands in the gate buffer,
            // exactly like the reference tick queueing output before
            // its pump loop
            other.clear();
            el.run_once(None, &mut other).unwrap();

            // pump until the pair is quiescent at this instant — the
            // reference loop verbatim, with the server's
            // write-then-read pump split into gate release (write
            // phase) and run_once (read phase), plus seeded spurious
            // and duplicate readiness that must change nothing
            loop {
                client.pump(now);
                gate.release();
                let mut batch = vec![readable(token)];
                if rng.gen_bool(0.25) {
                    batch.push(readable(token)); // duplicate event
                }
                if rng.gen_bool(0.15) {
                    batch.push(readable(token + 7)); // stale/unknown token
                }
                el.source_mut().push_batch(batch);
                other.clear();
                el.run_once(None, &mut other).unwrap();
                if !client.fsm.has_output() && gate.buffered() == 0 {
                    break;
                }
            }
            // extra scripted wakeups with nothing behind them: a
            // correct drain loop treats them as pure no-ops
            for _ in 0..rng.gen_range(0u32..3) {
                el.source_mut().push_ready(token);
                other.clear();
                el.run_once(None, &mut other).unwrap();
            }

            for e in client.drain_into(&mut transcript, now, attempt) {
                if let SessionEvent::Established { .. } = e {
                    attempt_established = true;
                    next_send = Some(now);
                }
            }
            for line in server_lines.lock().unwrap().drain(..) {
                transcript.record(now, attempt, Side::Server, line);
            }

            let delivered_this_attempt = server_updates.load(Ordering::Relaxed);
            let script_done = attempt_established
                && sent == scenario.updates.len()
                && delivered_this_attempt == scenario.updates.len();
            if script_done && !client.fsm.is_closed() {
                client.fsm.close_gracefully();
                continue;
            }
            if client.fsm.is_closed() && server_closed.load(Ordering::Relaxed) {
                break;
            }
            if now - start > scenario.attempt_budget_ms {
                transcript.record(
                    now,
                    attempt,
                    Side::Server,
                    "attempt-budget-exhausted".into(),
                );
                break;
            }
            clock.advance_ms(scenario.step_ms);
        }
        let delivered_this_attempt = server_updates.load(Ordering::Relaxed);
        delivered_total += delivered_this_attempt;
        if delivered_this_attempt == scenario.updates.len() && attempt_established {
            completed = true;
            break;
        }
    }

    EventedOutcome {
        transcript,
        delivered: delivered_total,
        attempts,
        completed,
    }
}

fn readable(token: Token) -> Event {
    Event {
        token,
        readable: true,
        writable: false,
        closed: false,
        error: false,
    }
}

fn updates(n: u32) -> Vec<UpdateMessage> {
    (0..n)
        .map(|i| UpdateMessage::withdraw(Prefix::synthetic(i)))
        .collect()
}

/// A seeded scenario family mixing clean runs with random fault
/// schedules on either direction.
fn scenario_for(seed: u64) -> Scenario {
    let mut s = Scenario {
        seed,
        updates: updates(4 + (seed % 4) as u32),
        max_attempts: 3,
        ..Scenario::default()
    };
    s.server.hold_time = 10;
    s.client.hold_time = 10;
    if !seed.is_multiple_of(5) {
        s.client_faults = vec![FaultSchedule::random(seed.wrapping_mul(2) + 1, 600)];
    }
    if !seed.is_multiple_of(3) {
        s.server_faults = vec![FaultSchedule::random(seed.wrapping_mul(2) + 2, 600)];
    }
    s
}

/// Panics with the first diverging line when two transcripts differ.
fn assert_same_transcript(seed: u64, reference: &Transcript, evented: &Transcript) {
    if reference.digest() == evented.digest() {
        return;
    }
    let a = reference.lines();
    let b = evented.lines();
    for i in 0..a.len().max(b.len()) {
        let ra = a.get(i).map(String::as_str).unwrap_or("<end>");
        let rb = b.get(i).map(String::as_str).unwrap_or("<end>");
        assert_eq!(
            ra, rb,
            "seed {seed}: transcripts diverge at line {i} (threaded vs evented)"
        );
    }
    panic!("seed {seed}: digests differ but no line diverged");
}

#[test]
fn evented_matches_threaded_across_random_fault_schedules() {
    for seed in 0..28u64 {
        let scenario = scenario_for(seed);
        let reference = run_scenario(&scenario);
        let evented = run_scenario_evented(&scenario, 0xFEED ^ seed);
        assert_same_transcript(seed, &reference.transcript, &evented.transcript);
        assert_eq!(
            reference.delivered.len(),
            evented.delivered,
            "seed {seed}: delivered"
        );
        assert_eq!(
            reference.attempts, evented.attempts,
            "seed {seed}: attempts"
        );
        assert_eq!(
            reference.completed, evented.completed,
            "seed {seed}: completion"
        );
    }
}

#[test]
fn spurious_readiness_never_changes_the_transcript() {
    let scenario = scenario_for(7);
    let reference = run_scenario(&scenario).transcript.digest();
    for interleave in 0..6u64 {
        let evented = run_scenario_evented(&scenario, 0xBAD5EED ^ interleave);
        assert_eq!(
            evented.transcript.digest(),
            reference,
            "interleave seed {interleave} changed the transcript"
        );
    }
}

#[test]
fn evented_replays_bit_identically_from_the_same_seeds() {
    let scenario = scenario_for(13);
    let a = run_scenario_evented(&scenario, 99);
    let b = run_scenario_evented(&scenario, 99);
    assert_eq!(a.transcript.digest(), b.transcript.digest());
    assert_eq!(a.transcript.lines(), b.transcript.lines());
}
