//! The evented runtime pool: a small fixed worker set, each running one
//! [`EventLoop`] over its own [`Reactor`], multiplexing thousands of
//! BGP and BMP sessions.
//!
//! Worker 0 additionally owns the listeners. Accepted connections are
//! capacity-checked (same 503-style shed as the threaded runtime),
//! made non-blocking, and dispatched round-robin to the workers over
//! crossbeam channels; the target worker's [`Waker`] interrupts its
//! readiness wait so admission is immediate. Every session feeds the
//! one shared [`DaemonPool`] pipeline (filters → validate → sink →
//! bounded queue), so both runtimes share every downstream accounting
//! invariant — the evented pool only changes *who blocks where*.

use crate::eventloop::{EventLoop, LoopStats, Machine, LISTENER_TOKEN_BASE};
use crate::reactor::{Reactor, Token, Waker};
use crate::sys;
use crossbeam::channel::{unbounded, Receiver, Sender};
use gill_bmp::config::BmpConfig;
use gill_bmp::fsm::{BmpFsm, BmpSessionConfig};
use gill_bmp::listener::BmpStats;
use gill_collector::daemon::UpdateSink;
use gill_collector::daemon::{
    join_with_deadline, reject_over_capacity, DaemonConfig, DaemonPool, DaemonStats,
};
use gill_collector::fsm::{SessionFsm, SessionRole};
use gill_collector::transport::SystemClock;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the evented runtime is shaped.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Event-loop worker threads (listeners live on worker 0).
    pub workers: usize,
    /// BGP listen address (`host:port`, port 0 for ephemeral); `None`
    /// runs without a BGP listener (e.g. BMP-only deployments).
    pub bgp_addr: Option<String>,
    /// BMP listener/policy configuration, if BMP ingest is wanted.
    pub bmp: Option<BmpConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            workers: 4,
            bgp_addr: Some("127.0.0.1:0".to_string()),
            bmp: None,
        }
    }
}

/// Work handed to an event-loop worker.
enum Cmd {
    Bgp(TcpStream),
    Bmp(TcpStream, BmpSessionConfig),
    Shutdown,
}

/// Aggregated per-loop counters (sum over workers).
#[derive(Default, Debug, Clone, Copy)]
pub struct RuntimeTotals {
    /// Fds currently registered across all loops.
    pub registered: usize,
    /// Sessions currently multiplexed across all loops.
    pub sessions: usize,
    /// Readiness events processed.
    pub ready_events: usize,
    /// Timer-wheel fires delivered.
    pub timer_fires: usize,
    /// Cross-thread wakes observed.
    pub wakes: usize,
    /// Sessions admitted over all time.
    pub accepted: usize,
    /// Connections shed at accept by the session cap.
    pub accept_shed: usize,
}

/// The evented runtime: listeners + workers around a shared
/// [`DaemonPool`] pipeline.
pub struct EventedPool {
    pool: DaemonPool,
    bmp_stats: Arc<BmpStats>,
    loop_stats: Vec<Arc<LoopStats>>,
    txs: Vec<Sender<Cmd>>,
    wakers: Vec<Waker>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    bgp_addr: Option<SocketAddr>,
    bmp_addrs: Vec<SocketAddr>,
}

/// Listener-side state owned by worker 0.
struct Acceptor {
    bgp: Option<(TcpListener, Token)>,
    bmp: Vec<(TcpListener, Token, BmpSessionConfig)>,
    txs: Vec<Sender<Cmd>>,
    wakers: Vec<Waker>,
    next: usize,
    max_sessions: usize,
    bmp_max_sessions: usize,
    active: Arc<AtomicUsize>,
    bmp_active: Arc<AtomicUsize>,
    stats: Arc<DaemonStats>,
    bmp_stats: Arc<BmpStats>,
    loop_stats: Arc<LoopStats>,
}

impl Acceptor {
    /// Drains one ready listener to `WouldBlock` (mandatory under edge
    /// triggering), shedding over-capacity connections and dispatching
    /// the rest round-robin.
    fn accept_burst(&mut self, token: Token) {
        // split the borrows: listeners are read while dispatch state
        // (round-robin cursor, channels) is written
        let txs = &self.txs;
        let wakers = &self.wakers;
        let next = &mut self.next;
        let mut dispatch = |cmd: Cmd| {
            let i = *next % txs.len();
            *next = next.wrapping_add(1);
            if txs[i].send(cmd).is_ok() {
                wakers[i].wake();
            }
        };
        if let Some((l, t)) = &self.bgp {
            if *t == token {
                loop {
                    match l.accept() {
                        Ok((stream, _)) => {
                            if self.max_sessions > 0
                                && self.active.load(Ordering::Relaxed) >= self.max_sessions
                            {
                                self.loop_stats.accept_shed.fetch_add(1, Ordering::Relaxed);
                                reject_over_capacity(stream, &self.stats);
                                continue;
                            }
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            self.active.fetch_add(1, Ordering::Relaxed);
                            dispatch(Cmd::Bgp(stream));
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
                return;
            }
        }
        let Some((listener, _, cfg)) = self.bmp.iter().find(|(_, t, _)| *t == token) else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    if self.bmp_max_sessions > 0
                        && self.bmp_active.load(Ordering::Relaxed) >= self.bmp_max_sessions
                    {
                        self.loop_stats.accept_shed.fetch_add(1, Ordering::Relaxed);
                        self.bmp_stats
                            .accept_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        gill_collector::transport::Transport::shutdown(&mut stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.bmp_active.fetch_add(1, Ordering::Relaxed);
                    dispatch(Cmd::Bmp(stream, cfg.clone()));
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }
}

impl EventedPool {
    /// Boots the evented runtime: builds the shared pipeline, binds the
    /// configured listeners, and spawns `rt.workers` event-loop
    /// threads. `sink` is the optional live-stream tee (as in
    /// [`DaemonPool::start_with_sink`]).
    pub fn start(
        cfg: DaemonConfig,
        rt: RuntimeConfig,
        sink: Option<Arc<dyn UpdateSink>>,
    ) -> io::Result<EventedPool> {
        let workers = rt.workers.max(1);
        // thousands of sessions means thousands of fds; ask for headroom
        let _ = sys::raise_nofile(65_536);
        let pool = DaemonPool::pipeline(cfg.clone(), sink);
        let bmp_stats = Arc::new(BmpStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let bmp_active = Arc::new(AtomicUsize::new(0));
        let known_peers = Arc::new(Mutex::new(HashSet::new()));
        let clock = Arc::new(SystemClock::new());

        let bgp_listener = match &rt.bgp_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let bgp_addr = bgp_listener.as_ref().map(|l| l.local_addr()).transpose()?;
        let mut bmp_listeners = Vec::new();
        let mut bmp_addrs = Vec::new();
        let mut bmp_max_sessions = 0;
        if let Some(bmp_cfg) = &rt.bmp {
            bmp_max_sessions = bmp_cfg.max_sessions;
            for lst in &bmp_cfg.listeners {
                let l = TcpListener::bind(&lst.bind)?;
                bmp_addrs.push(l.local_addr()?);
                l.set_nonblocking(true)?;
                let session_cfg = BmpSessionConfig {
                    idle_timeout_ms: lst.idle_timeout_ms,
                    policy: bmp_cfg.policy.clone(),
                };
                bmp_listeners.push((l, session_cfg));
            }
        }

        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..workers {
            let (tx, rx) = unbounded::<Cmd>();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut loops = Vec::new();
        let mut wakers = Vec::new();
        let mut loop_stats = Vec::new();
        for _ in 0..workers {
            let reactor = Reactor::new()?;
            let mut ctx = pool.session_ctx();
            ctx.shutdown = stop.clone();
            let mut el: EventLoop<TcpStream, Reactor> =
                EventLoop::new(reactor, clock.clone(), ctx, bmp_stats.clone());
            el.set_active_counter(active.clone());
            el.set_bmp_active_counter(bmp_active.clone());
            el.set_known_peers(known_peers.clone());
            wakers.push(el.source_mut().waker());
            loop_stats.push(el.stats());
            loops.push(el);
        }

        // worker 0 owns the listeners
        let mut acceptor = None;
        {
            let el = &mut loops[0];
            let bgp = match bgp_listener {
                Some(l) => {
                    el.register_external(l.as_raw_fd(), LISTENER_TOKEN_BASE)?;
                    Some((l, LISTENER_TOKEN_BASE))
                }
                None => None,
            };
            let mut bmp = Vec::new();
            for (i, (l, scfg)) in bmp_listeners.into_iter().enumerate() {
                let token = LISTENER_TOKEN_BASE + 1 + i as Token;
                el.register_external(l.as_raw_fd(), token)?;
                bmp.push((l, token, scfg));
            }
            if bgp.is_some() || !bmp.is_empty() {
                acceptor = Some(Acceptor {
                    bgp,
                    bmp,
                    txs: txs.clone(),
                    wakers: wakers.clone(),
                    next: 0,
                    max_sessions: cfg.max_sessions,
                    bmp_max_sessions,
                    active: active.clone(),
                    bmp_active: bmp_active.clone(),
                    stats: pool.session_ctx().stats.clone(),
                    bmp_stats: bmp_stats.clone(),
                    loop_stats: loop_stats[0].clone(),
                });
            }
        }

        let mut handles = Vec::new();
        for (i, el) in loops.into_iter().enumerate() {
            let rx = rxs[i].clone();
            let acceptor = if i == 0 { acceptor.take() } else { None };
            let session_cfg = cfg.session_config();
            let clock = clock.clone();
            let bmp_active = bmp_active.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("gill-evented-{i}"))
                    .spawn(move || worker_loop(el, rx, acceptor, session_cfg, clock, bmp_active))?,
            );
        }

        Ok(EventedPool {
            pool,
            bmp_stats,
            loop_stats,
            txs,
            wakers,
            workers: handles,
            stop,
            active,
            bgp_addr,
            bmp_addrs,
        })
    }

    /// The shared pipeline (filters, counters, storage queue, §14
    /// services). Query layers and storage drains attach here exactly
    /// as they do for the threaded runtime.
    pub fn pool(&self) -> &DaemonPool {
        &self.pool
    }

    /// Mutable pipeline access (e.g. to attach an orchestrator).
    pub fn pool_mut(&mut self) -> &mut DaemonPool {
        &mut self.pool
    }

    /// Address BGP peers should connect to, when a listener is bound.
    pub fn bgp_addr(&self) -> Option<SocketAddr> {
        self.bgp_addr
    }

    /// Addresses BMP routers should connect to, one per listener.
    pub fn bmp_addrs(&self) -> &[SocketAddr] {
        &self.bmp_addrs
    }

    /// BGP pipeline counters (shared with every session).
    pub fn stats(&self) -> &DaemonStats {
        self.pool.stats()
    }

    /// BMP subsystem counters.
    pub fn bmp_stats(&self) -> &Arc<BmpStats> {
        &self.bmp_stats
    }

    /// Per-worker event-loop counters.
    pub fn loop_stats(&self) -> &[Arc<LoopStats>] {
        &self.loop_stats
    }

    /// Live BGP sessions across all loops.
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Sums the per-loop counters.
    pub fn totals(&self) -> RuntimeTotals {
        let mut t = RuntimeTotals::default();
        for s in &self.loop_stats {
            t.registered += s.registered.load(Ordering::Relaxed);
            t.sessions += s.sessions.load(Ordering::Relaxed);
            t.ready_events += s.ready_events.load(Ordering::Relaxed);
            t.timer_fires += s.timer_fires.load(Ordering::Relaxed);
            t.wakes += s.wakes.load(Ordering::Relaxed);
            t.accepted += s.accepted.load(Ordering::Relaxed);
            t.accept_shed += s.accept_shed.load(Ordering::Relaxed);
        }
        t
    }

    /// Stops the runtime: listeners close with worker 0, every session
    /// winds down gracefully (BGP sends NOTIFICATION Cease), and the
    /// workers are joined with a bounded deadline. The pipeline keeps
    /// accepting drained updates until the caller stops the inner
    /// [`DaemonPool`] (or this pool is dropped).
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        for (tx, waker) in self.txs.iter().zip(&self.wakers) {
            let _ = tx.send(Cmd::Shutdown);
            waker.wake();
        }
        let handles = std::mem::take(&mut self.workers);
        let _stragglers = join_with_deadline(handles, Duration::from_secs(5));
    }
}

impl Drop for EventedPool {
    fn drop(&mut self) {
        self.stop();
        self.pool.request_stop();
    }
}

/// One worker thread: readiness turns, inbox admission, accept bursts
/// (worker 0), and the graceful drain on shutdown.
fn worker_loop(
    mut el: EventLoop<TcpStream, Reactor>,
    rx: Receiver<Cmd>,
    mut acceptor: Option<Acceptor>,
    session_cfg: gill_collector::fsm::SessionConfig,
    clock: Arc<SystemClock>,
    bmp_active: Arc<AtomicUsize>,
) {
    use gill_collector::transport::Clock;
    let mut other = Vec::new();
    let mut draining = false;
    let mut drain_deadline = Instant::now();
    loop {
        other.clear();
        if el.run_once(Some(50), &mut other).is_err() {
            break;
        }
        if let Some(acc) = &mut acceptor {
            for ev in &other {
                if ev.token >= LISTENER_TOKEN_BASE && ev.token != crate::reactor::WAKE_TOKEN {
                    acc.accept_burst(ev.token);
                }
            }
        }
        while let Ok(cmd) = rx.try_recv() {
            match cmd {
                Cmd::Bgp(stream) => {
                    if draining {
                        drop(stream);
                        continue;
                    }
                    let fd = stream.as_raw_fd();
                    let fsm = SessionFsm::new(SessionRole::Passive, session_cfg);
                    let _ = el.add_session(stream, Some(fd), Machine::Bgp(fsm));
                }
                Cmd::Bmp(stream, scfg) => {
                    if draining {
                        bmp_active.fetch_sub(1, Ordering::Relaxed);
                        drop(stream);
                        continue;
                    }
                    let fd = stream.as_raw_fd();
                    let fsm = BmpFsm::new(scfg, clock.now_ms());
                    let _ = el.add_session(stream, Some(fd), Machine::Bmp(fsm));
                }
                Cmd::Shutdown => {
                    if !draining {
                        draining = true;
                        drain_deadline = Instant::now() + Duration::from_secs(2);
                        // listeners close with the acceptor
                        acceptor = None;
                        el.graceful_close_all();
                    }
                }
            }
        }
        if draining && (el.session_count() == 0 || Instant::now() >= drain_deadline) {
            break;
        }
    }
}
