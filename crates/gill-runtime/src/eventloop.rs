//! The evented session loop: one thread multiplexing many sans-I/O
//! session machines over a [`ReadinessSource`] and a [`TimerWheel`].
//!
//! The loop owns no protocol logic. `SessionFsm` and `BmpFsm` already
//! decide *what* happens from bytes and ticks; the loop decides *when*,
//! from readiness and timer fires — the exact split PR 2 introduced for
//! the threaded drive loops, now amortized over thousands of sessions
//! per thread. Canonical intra-instant ordering: timers fire **before**
//! I/O at the same clock instant, which matches the deterministic
//! harness's tick-then-pump ordering and is what makes the
//! evented-vs-threaded transcript digests comparable.

use crate::conn::EventedConn;
use crate::reactor::{Event, Interest, ReadinessSource, Token, WAKE_TOKEN};
use crate::sys::RawFd;
use crate::timer::{Expired, TimerId, TimerWheel};
use bgp_types::{Timestamp, VpId};
use gill_bmp::fsm::{BmpCloseReason, BmpEvent, BmpFsm};
use gill_bmp::listener::BmpStats;
use gill_collector::daemon::SessionCtx;
use gill_collector::fsm::{CloseReason, SessionEvent, SessionFsm};
use gill_collector::transport::{Clock, Transport};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tokens at or above this are reserved for listeners (the pool's
/// accept sockets); session tokens are slab indices below it.
pub const LISTENER_TOKEN_BASE: Token = u64::MAX - 1024;

/// Per-loop counters, surfaced alongside `DaemonStats`.
#[derive(Default, Debug)]
pub struct LoopStats {
    /// Gauge: fds currently registered with the readiness source.
    pub registered: AtomicUsize,
    /// Gauge: sessions currently multiplexed on this loop.
    pub sessions: AtomicUsize,
    /// Readiness events processed (sessions only).
    pub ready_events: AtomicUsize,
    /// Timer-wheel fires delivered to sessions.
    pub timer_fires: AtomicUsize,
    /// Cross-thread wakes observed.
    pub wakes: AtomicUsize,
    /// Sessions this loop accepted ownership of.
    pub accepted: AtomicUsize,
    /// Connections shed at accept by the session cap (acceptor-side).
    pub accept_shed: AtomicUsize,
}

/// A protocol machine the loop can drive: both are sans-I/O
/// byte-in/byte-out FSMs; only BGP produces output bytes.
pub enum Machine {
    Bgp(SessionFsm),
    Bmp(BmpFsm),
}

impl Machine {
    fn handle_bytes(&mut self, data: &[u8], now_ms: u64) {
        match self {
            Machine::Bgp(f) => f.handle_bytes(data, now_ms),
            Machine::Bmp(f) => f.handle_bytes(data, now_ms),
        }
    }

    fn handle_eof(&mut self, now_ms: u64) {
        match self {
            Machine::Bgp(f) => f.handle_eof(now_ms),
            Machine::Bmp(f) => f.handle_eof(now_ms),
        }
    }

    fn tick(&mut self, now_ms: u64) {
        match self {
            Machine::Bgp(f) => f.tick(now_ms),
            Machine::Bmp(f) => f.tick(now_ms),
        }
    }

    fn next_deadline_ms(&self) -> Option<u64> {
        match self {
            Machine::Bgp(f) => f.next_deadline_ms(),
            Machine::Bmp(f) => f.next_deadline_ms(),
        }
    }
}

struct Session<T: Transport> {
    conn: EventedConn<T>,
    machine: Machine,
    fd: Option<RawFd>,
    /// Peer identity, known once the BGP handshake (or BMP demux)
    /// settles. BGP updates are attributed to it.
    peer: Option<VpId>,
    timer: Option<TimerId>,
    /// The deadline the current timer is armed for (skip re-arm churn).
    armed_for: Option<u64>,
    /// BGP: whether Established was reached (open/close accounting).
    established: bool,
    /// BMP: whether a valid Initiation was seen.
    bmp_started: bool,
    /// EOF already delivered to the machine (deliver it exactly once,
    /// like the harness endpoints and the threaded drive loop).
    eof_sent: bool,
}

/// Observer callback for BGP session events (transcript-building tests).
pub type EventTap = Box<dyn FnMut(Token, &SessionEvent) + Send>;

/// The event loop. Generic over transport and readiness source so the
/// identical code path serves real sockets under epoll and simulated
/// links under [`crate::sim::SimReactor`].
pub struct EventLoop<T: Transport, S: ReadinessSource> {
    source: S,
    wheel: TimerWheel,
    clock: Arc<dyn Clock>,
    sessions: Vec<Option<Session<T>>>,
    free: Vec<usize>,
    ctx: SessionCtx,
    bmp_stats: Arc<BmpStats>,
    stats: Arc<LoopStats>,
    /// Peer identities seen before, for the reconnect counter (shared
    /// across a pool's loops).
    known_peers: Arc<Mutex<HashSet<VpId>>>,
    /// Pool-wide live BGP session count (the accept cap's denominator).
    active: Option<Arc<AtomicUsize>>,
    /// Pool-wide live BMP session count (its cap is independent).
    bmp_active: Option<Arc<AtomicUsize>>,
    /// Observable session events, for transcript-building tests.
    tap: Option<EventTap>,
    scratch: Vec<u8>,
    events: Vec<Event>,
    fired: Vec<Expired>,
}

impl<T: Transport, S: ReadinessSource> EventLoop<T, S> {
    /// A loop over `source`, feeding accepted updates through `ctx`.
    /// `clock` is the time base for every FSM instant (virtual in
    /// tests).
    pub fn new(
        source: S,
        clock: Arc<dyn Clock>,
        ctx: SessionCtx,
        bmp_stats: Arc<BmpStats>,
    ) -> EventLoop<T, S> {
        let now = clock.now_ms();
        EventLoop {
            source,
            wheel: TimerWheel::new(now),
            clock,
            sessions: Vec::new(),
            free: Vec::new(),
            ctx,
            bmp_stats,
            stats: Arc::new(LoopStats::default()),
            known_peers: Arc::new(Mutex::new(HashSet::new())),
            active: None,
            bmp_active: None,
            tap: None,
            scratch: vec![0u8; 16 * 1024],
            events: Vec::new(),
            fired: Vec::new(),
        }
    }

    /// Shares the pool-wide live BGP session counter: decremented when
    /// a BGP session slot is freed (the accept cap's bookkeeping).
    pub fn set_active_counter(&mut self, active: Arc<AtomicUsize>) {
        self.active = Some(active);
    }

    /// Shares the pool-wide live BMP session counter (independent cap).
    pub fn set_bmp_active_counter(&mut self, active: Arc<AtomicUsize>) {
        self.bmp_active = Some(active);
    }

    /// Shares the pool-wide reconnect-identity set.
    pub fn set_known_peers(&mut self, peers: Arc<Mutex<HashSet<VpId>>>) {
        self.known_peers = peers;
    }

    /// Installs an observer for every BGP session event (transcript
    /// tests). The token identifies the session.
    pub fn set_event_tap(&mut self, tap: EventTap) {
        self.tap = Some(tap);
    }

    /// This loop's counters (shareable).
    pub fn stats(&self) -> Arc<LoopStats> {
        self.stats.clone()
    }

    /// The readiness source (e.g. to mint a waker before moving the
    /// loop onto its thread).
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }

    /// Live sessions on this loop.
    pub fn session_count(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_some()).count()
    }

    /// Adds a session over `transport` (already non-blocking) driven by
    /// `machine`. `fd` registers the connection with the readiness
    /// source (None for simulated transports). Starts the machine,
    /// pumps any initial output (an OPEN for active BGP roles) and arms
    /// its first deadline.
    pub fn add_session(
        &mut self,
        transport: T,
        fd: Option<RawFd>,
        machine: Machine,
    ) -> io::Result<Token> {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.sessions.push(None);
                self.sessions.len() - 1
            }
        };
        let token = idx as Token;
        if let Some(fd) = fd {
            if let Err(e) = self.source.register_fd(fd, token, Interest::BOTH) {
                self.free.push(idx);
                return Err(e);
            }
            self.stats.registered.fetch_add(1, Ordering::Relaxed);
        }
        let mut machine = machine;
        let now = self.clock.now_ms();
        if let Machine::Bgp(f) = &mut machine {
            f.start(now);
        }
        self.sessions[idx] = Some(Session {
            conn: EventedConn::new(transport),
            machine,
            fd,
            peer: None,
            timer: None,
            armed_for: None,
            established: false,
            bmp_started: false,
            eof_sent: false,
        });
        self.stats.sessions.fetch_add(1, Ordering::Relaxed);
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        self.drive(idx, now);
        Ok(token)
    }

    /// Registers a non-session fd (listener) under a caller-chosen
    /// token at or above [`LISTENER_TOKEN_BASE`]; its readiness events
    /// are handed back out of [`run_once`].
    ///
    /// [`run_once`]: EventLoop::run_once
    pub fn register_external(&mut self, fd: RawFd, token: Token) -> io::Result<()> {
        debug_assert!(token >= LISTENER_TOKEN_BASE);
        self.source.register_fd(fd, token, Interest::READ)?;
        self.stats.registered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// One loop turn: fire due timers, wait for readiness (bounded by
    /// `max_wait_ms` and the earliest timer deadline), fire timers that
    /// came due during the wait, then drive every ready session.
    /// Listener and waker events are appended to `other` for the
    /// caller. Timers always fire before I/O at the same instant.
    pub fn run_once(&mut self, max_wait_ms: Option<u64>, other: &mut Vec<Event>) -> io::Result<()> {
        let now = self.clock.now_ms();
        self.fire_timers(now);
        let timeout = {
            let headroom = self
                .wheel
                .next_deadline()
                .map(|d| d.saturating_sub(now).max(1));
            match (max_wait_ms, headroom) {
                (None, None) => None,
                (Some(t), None) => Some(t),
                (None, Some(h)) => Some(h),
                (Some(t), Some(h)) => Some(t.min(h)),
            }
        };
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        self.source.wait(&mut events, timeout)?;
        let now = self.clock.now_ms();
        self.fire_timers(now);
        for ev in events.drain(..) {
            if ev.token == WAKE_TOKEN {
                self.stats.wakes.fetch_add(1, Ordering::Relaxed);
                other.push(ev);
                continue;
            }
            if ev.token >= LISTENER_TOKEN_BASE {
                other.push(ev);
                continue;
            }
            self.stats.ready_events.fetch_add(1, Ordering::Relaxed);
            self.on_ready(ev, now);
        }
        self.events = events;
        Ok(())
    }

    /// Advances the wheel and ticks every session whose deadline fired.
    fn fire_timers(&mut self, now: u64) {
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.advance(now, &mut fired);
        for exp in fired.drain(..) {
            let idx = exp.token as usize;
            if idx >= self.sessions.len() || self.sessions[idx].is_none() {
                continue; // session already gone; stale fire
            }
            self.stats.timer_fires.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = self.sessions[idx].as_mut() {
                s.timer = None;
                s.armed_for = None;
                s.machine.tick(now);
            }
            self.drive(idx, now);
        }
        self.fired = fired;
    }

    /// Handles one readiness event for a session.
    fn on_ready(&mut self, ev: Event, now: u64) {
        let idx = ev.token as usize;
        let Some(s) = self.sessions.get_mut(idx).and_then(|s| s.as_mut()) else {
            return; // spurious or stale: tolerated by construction
        };
        if ev.writable && s.conn.has_pending() {
            let _ = s.conn.flush();
        }
        if ev.readable || ev.closed || ev.error {
            let machine = &mut s.machine;
            let eof = s
                .conn
                .fill(&mut self.scratch, |chunk| machine.handle_bytes(chunk, now))
                .unwrap_or(true);
            if eof && !s.eof_sent {
                s.eof_sent = true;
                s.machine.handle_eof(now);
            }
        }
        self.drive(idx, now);
    }

    /// Drains machine events, pumps output, re-arms the deadline, and
    /// tears the session down when its machine closed. A write that
    /// found the link dead is surfaced as EOF (then its close events
    /// drain on the next pass of the outer loop).
    fn drive(&mut self, idx: usize, now: u64) {
        let mut closed = false;
        'drain: loop {
            let Some(s) = self.sessions.get_mut(idx).and_then(|s| s.as_mut()) else {
                return;
            };
            loop {
                match &mut s.machine {
                    Machine::Bgp(f) => {
                        let Some(event) = f.poll_event() else { break };
                        if let Some(tap) = &mut self.tap {
                            tap(idx as Token, &event);
                        }
                        match event {
                            SessionEvent::Established { peer, .. } => {
                                s.established = true;
                                s.peer = Some(peer);
                                self.ctx
                                    .stats
                                    .sessions_opened
                                    .fetch_add(1, Ordering::Relaxed);
                                if !self.known_peers.lock().insert(peer) {
                                    self.ctx.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            SessionEvent::Update(u) => {
                                if let Some(peer) = s.peer {
                                    if !self.ctx.offer(peer, u, Timestamp::from_millis(now)) {
                                        // storage is gone; wind the session down
                                        f.close_gracefully();
                                    }
                                }
                            }
                            SessionEvent::KeepaliveSent => {
                                self.ctx
                                    .stats
                                    .keepalives_sent
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            SessionEvent::KeepaliveReceived => {
                                self.ctx
                                    .stats
                                    .keepalives_received
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            SessionEvent::NotificationSent { .. } => {
                                self.ctx
                                    .stats
                                    .notifications_sent
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            SessionEvent::Closed(reason) => {
                                if reason == CloseReason::HoldTimerExpired {
                                    self.ctx
                                        .stats
                                        .hold_expirations
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                if s.established {
                                    self.ctx
                                        .stats
                                        .sessions_closed
                                        .fetch_add(1, Ordering::Relaxed);
                                } else {
                                    self.ctx
                                        .stats
                                        .handshake_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                closed = true;
                            }
                        }
                    }
                    Machine::Bmp(f) => {
                        let Some(event) = f.poll_event() else { break };
                        match event {
                            BmpEvent::SessionStarted { .. } => {
                                s.bmp_started = true;
                                self.bmp_stats
                                    .sessions_opened
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            BmpEvent::PeerUp { .. } => {
                                self.bmp_stats.peers_up.fetch_add(1, Ordering::Relaxed);
                            }
                            BmpEvent::PeerDown { .. } => {
                                self.bmp_stats.peers_down.fetch_add(1, Ordering::Relaxed);
                            }
                            BmpEvent::Update { vp, update, ts_ms } => {
                                self.bmp_stats.updates.fetch_add(1, Ordering::Relaxed);
                                self.ctx.offer(vp, update, Timestamp::from_millis(ts_ms));
                            }
                            BmpEvent::Stats { .. } => {
                                self.bmp_stats.stats_reports.fetch_add(1, Ordering::Relaxed);
                            }
                            BmpEvent::Closed(reason) => {
                                let ledger = f.ledger();
                                self.bmp_stats
                                    .unknown_peer
                                    .fetch_add(ledger.unknown_peer as usize, Ordering::Relaxed);
                                self.bmp_stats
                                    .peers_denied
                                    .fetch_add(ledger.denied_peers as usize, Ordering::Relaxed);
                                self.bmp_stats.duplicate_peer_ups.fetch_add(
                                    ledger.duplicate_peer_ups as usize,
                                    Ordering::Relaxed,
                                );
                                if s.bmp_started {
                                    self.bmp_stats
                                        .sessions_closed
                                        .fetch_add(1, Ordering::Relaxed);
                                } else {
                                    self.bmp_stats
                                        .initiation_failures
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                match &reason {
                                    BmpCloseReason::Terminated => {
                                        self.bmp_stats.terminations.fetch_add(1, Ordering::Relaxed);
                                    }
                                    BmpCloseReason::IdleTimeout => {
                                        self.bmp_stats
                                            .idle_timeouts
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                    BmpCloseReason::DecodeError(_)
                                    | BmpCloseReason::ProtocolError(_) => {
                                        self.bmp_stats
                                            .protocol_errors
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                    _ => {}
                                }
                                closed = true;
                            }
                        }
                    }
                }
            }
            // pump whatever the machine wants on the wire (OPEN,
            // KEEPALIVE, a parting NOTIFICATION) and flush as much as
            // the socket takes
            if let Machine::Bgp(f) = &mut s.machine {
                while f.has_output() {
                    let out = f.take_output();
                    s.conn.queue(&out);
                }
            }
            let _ = s.conn.flush();
            if closed {
                break 'drain;
            }
            if s.conn.is_dead() && !s.eof_sent {
                s.eof_sent = true;
                s.machine.handle_eof(now);
                continue 'drain;
            }
            // re-arm the deadline only when it moved
            let want = s.machine.next_deadline_ms();
            if want != s.armed_for {
                if let Some(t) = s.timer.take() {
                    self.wheel.cancel(t);
                }
                s.armed_for = want;
                s.timer = want.map(|d| self.wheel.schedule(d, idx as u64));
            }
            return;
        }
        self.remove(idx);
    }

    /// Frees a session slot: cancels its timer, deregisters its fd and
    /// shuts the transport down.
    fn remove(&mut self, idx: usize) {
        let Some(mut s) = self.sessions.get_mut(idx).and_then(|s| s.take()) else {
            return;
        };
        if let Some(t) = s.timer.take() {
            self.wheel.cancel(t);
        }
        if let Some(fd) = s.fd {
            let _ = self.source.deregister_fd(fd);
            self.stats.registered.fetch_sub(1, Ordering::Relaxed);
        }
        s.conn.shutdown();
        self.free.push(idx);
        self.stats.sessions.fetch_sub(1, Ordering::Relaxed);
        let counter = match &s.machine {
            Machine::Bgp(_) => &self.active,
            Machine::Bmp(_) => &self.bmp_active,
        };
        if let Some(active) = counter {
            active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Gracefully winds down every session: BGP sends NOTIFICATION
    /// Cease, BMP closes its transport. Sessions finish their close
    /// path on subsequent [`run_once`] turns (or immediately, when the
    /// FSM closes synchronously).
    ///
    /// [`run_once`]: EventLoop::run_once
    pub fn graceful_close_all(&mut self) {
        let now = self.clock.now_ms();
        for idx in 0..self.sessions.len() {
            let Some(s) = self.sessions[idx].as_mut() else {
                continue;
            };
            match &mut s.machine {
                Machine::Bgp(f) => f.close_gracefully(),
                Machine::Bmp(f) => {
                    s.conn.shutdown();
                    s.eof_sent = true;
                    f.handle_eof(now);
                }
            }
            self.drive(idx, now);
        }
    }
}
