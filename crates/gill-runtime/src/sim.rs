//! A deterministic in-process [`ReadinessSource`]: tests script exactly
//! which tokens become ready, in exactly what order, and the event loop
//! under test cannot tell it apart from the real reactor.
//!
//! The simulated source also lets tests inject *spurious* readiness
//! (tokens with no pending bytes) and duplicate events — conditions a
//! correct drain loop must tolerate, and ones that are hard to provoke
//! reliably against a kernel.

use crate::reactor::{Event, Interest, ReadinessSource, Token};
use crate::sys::RawFd;
use std::collections::VecDeque;
use std::io;

/// A scripted readiness source. Push batches with
/// [`SimReactor::push_ready`] / [`SimReactor::push_batch`]; each
/// [`wait`] call delivers the next batch (or nothing, simulating a
/// timeout).
///
/// [`wait`]: ReadinessSource::wait
#[derive(Default)]
pub struct SimReactor {
    /// Each entry is one `wait` return's worth of events.
    batches: VecDeque<Vec<Event>>,
    /// Registered tokens, in registration order (inspectable by tests).
    pub registrations: Vec<(RawFd, Token, Interest)>,
    /// Count of `wait` calls that found no batch (timeouts).
    pub empty_waits: usize,
}

impl SimReactor {
    pub fn new() -> SimReactor {
        SimReactor::default()
    }

    /// Queues a single readable event as its own batch.
    pub fn push_ready(&mut self, token: Token) {
        self.push_batch(vec![Event {
            token,
            readable: true,
            writable: false,
            closed: false,
            error: false,
        }]);
    }

    /// Queues one batch: all events delivered by one `wait` return.
    pub fn push_batch(&mut self, batch: Vec<Event>) {
        self.batches.push_back(batch);
    }

    /// Pending batch count.
    pub fn pending(&self) -> usize {
        self.batches.len()
    }
}

impl ReadinessSource for SimReactor {
    fn register_fd(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.registrations.push((fd, token, interest));
        Ok(())
    }

    fn reregister_fd(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        for r in self.registrations.iter_mut() {
            if r.0 == fd {
                *r = (fd, token, interest);
                return Ok(());
            }
        }
        self.registrations.push((fd, token, interest));
        Ok(())
    }

    fn deregister_fd(&mut self, fd: RawFd) -> io::Result<()> {
        self.registrations.retain(|r| r.0 != fd);
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, _timeout_ms: Option<u64>) -> io::Result<usize> {
        match self.batches.pop_front() {
            Some(batch) => {
                let n = batch.len();
                out.extend(batch);
                Ok(n)
            }
            None => {
                self.empty_waits += 1;
                Ok(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_batches_in_order_then_times_out() {
        let mut s = SimReactor::new();
        s.push_ready(3);
        s.push_batch(vec![
            Event {
                token: 1,
                readable: true,
                writable: false,
                closed: false,
                error: false,
            },
            Event {
                token: 2,
                readable: true,
                writable: true,
                closed: false,
                error: false,
            },
        ]);
        let mut out = Vec::new();
        assert_eq!(s.wait(&mut out, Some(10)).unwrap(), 1);
        assert_eq!(out[0].token, 3);
        assert_eq!(s.wait(&mut out, Some(10)).unwrap(), 2);
        assert_eq!(out[1].token, 1);
        assert_eq!(out[2].token, 2);
        assert_eq!(s.wait(&mut out, Some(10)).unwrap(), 0);
        assert_eq!(s.empty_waits, 1);
    }
}
