//! The reactor: fd registration and readiness delivery behind the
//! [`ReadinessSource`] trait.
//!
//! Two implementations exist: [`Reactor`] here (epoll on Linux,
//! edge-triggered; poll(2) level-triggered everywhere else) and the
//! deterministic [`crate::sim::SimReactor`] for tests. The event loop is
//! generic over the trait, so every line of session-driving logic that
//! runs against real sockets also runs — bit for bit — under the
//! simulated source.

use crate::sys::{self, PollFd, RawFd};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// Caller-chosen identifier attached to a registration; readiness events
/// echo it back. The event loop uses slab indices plus sentinel values
/// for listeners and the waker.
pub type Token = u64;

/// What to watch for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// Peer hung up (EPOLLHUP/EPOLLRDHUP). Treated as readable: the
    /// drain observes the EOF through `read() == 0`.
    pub closed: bool,
    /// Error condition on the fd.
    pub error: bool,
}

/// Where readiness comes from. The real [`Reactor`] implements this over
/// epoll/poll; [`crate::sim::SimReactor`] implements it over a script.
pub trait ReadinessSource {
    /// Registers `fd` under `token`. Simulated sources ignore the fd.
    fn register_fd(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Changes the interest set of an existing registration.
    fn reregister_fd(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;

    /// Removes a registration.
    fn deregister_fd(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks up to `timeout_ms` (`None` = forever) for readiness,
    /// appending events to `out`. Returns the number appended. Spurious
    /// returns (zero events, or events with nothing actually readable)
    /// are allowed; the loop tolerates them by construction.
    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: Option<u64>) -> io::Result<usize>;
}

/// Token the waker posts under.
pub const WAKE_TOKEN: Token = u64::MAX;

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { ep: sys::OwnedFd },
    Poll {
        /// interest per fd, rebuilt into a pollfd array per wait
        fds: HashMap<RawFd, (Token, Interest)>,
    },
}

/// The production readiness source. Linux uses epoll in edge-triggered
/// mode — the event loop drains every ready connection to `WouldBlock`,
/// which is exactly the contract edge triggering requires. The portable
/// backend uses poll(2) level-triggered; the same drain loop is simply
/// woken more often.
pub struct Reactor {
    backend: Backend,
    /// Waker read end (registered), write end (shared with [`Waker`]s).
    wake_read: sys::OwnedFd,
    wake_write: Arc<WakeFd>,
    /// Registered fd count (stats).
    registered: usize,
    #[cfg(target_os = "linux")]
    edge_triggered: bool,
    scratch: Vec<PollFd>,
}

/// The writable end of the wake channel (eventfd on Linux with epoll,
/// pipe otherwise), shareable across threads.
struct WakeFd {
    fd: RawFd,
    /// Keeps the pipe write end alive for the portable backend. The
    /// eventfd case stores the same fd as `wake_read` duplicated by the
    /// kernel; `None` means `fd` is borrowed from `wake_read`.
    _own: Mutex<Option<sys::OwnedFd>>,
}

/// Cross-thread wake handle: writing one byte (or one eventfd count)
/// makes a blocked [`Reactor::wait`] return with [`WAKE_TOKEN`].
#[derive(Clone)]
pub struct Waker {
    wake: Arc<WakeFd>,
}

impl Waker {
    /// Wakes the reactor. Best effort: a full pipe already guarantees a
    /// pending wake.
    pub fn wake(&self) {
        let _ = sys::write_fd(self.wake.fd, &1u64.to_ne_bytes());
    }
}

impl Reactor {
    /// Builds the platform-default reactor: epoll (edge-triggered) on
    /// Linux, poll(2) elsewhere.
    pub fn new() -> io::Result<Reactor> {
        #[cfg(target_os = "linux")]
        {
            let ep = sys::epoll_create()?;
            let efd = sys::eventfd_create()?;
            sys::epoll_control(ep.0, sys::EPOLL_CTL_ADD, efd.0, sys::EPOLLIN, WAKE_TOKEN)?;
            let wake_write = Arc::new(WakeFd {
                fd: efd.0,
                _own: Mutex::new(None),
            });
            Ok(Reactor {
                backend: Backend::Epoll { ep },
                wake_read: efd,
                wake_write,
                registered: 0,
                edge_triggered: true,
                scratch: Vec::new(),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Reactor::new_poll()
        }
    }

    /// Builds the portable poll(2) backend explicitly (used by tests on
    /// Linux to exercise the fallback path).
    pub fn new_poll() -> io::Result<Reactor> {
        let (r, w) = sys::pipe_pair()?;
        let wake_write = Arc::new(WakeFd {
            fd: w.0,
            _own: Mutex::new(Some(w)),
        });
        Ok(Reactor {
            backend: Backend::Poll {
                fds: HashMap::new(),
            },
            wake_read: r,
            wake_write,
            registered: 0,
            #[cfg(target_os = "linux")]
            edge_triggered: false,
            scratch: Vec::new(),
        })
    }

    /// A handle other threads can use to interrupt [`wait`].
    ///
    /// [`wait`]: ReadinessSource::wait
    pub fn waker(&self) -> Waker {
        Waker {
            wake: self.wake_write.clone(),
        }
    }

    /// Whether readiness is edge-triggered (drain-to-WouldBlock is then
    /// mandatory, not just an optimization).
    pub fn is_edge_triggered(&self) -> bool {
        #[cfg(target_os = "linux")]
        {
            self.edge_triggered
        }
        #[cfg(not(target_os = "linux"))]
        {
            false
        }
    }

    /// Registered fd count (excluding the waker).
    pub fn registered(&self) -> usize {
        self.registered
    }
}

impl ReadinessSource for Reactor {
    fn register_fd(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { ep } => {
                let bits = {
                    let mut b = sys::EPOLLRDHUP;
                    if interest.readable {
                        b |= sys::EPOLLIN;
                    }
                    if interest.writable {
                        b |= sys::EPOLLOUT;
                    }
                    if self.edge_triggered {
                        b |= sys::EPOLLET;
                    }
                    b
                };
                sys::epoll_control(ep.0, sys::EPOLL_CTL_ADD, fd, bits, token)?;
            }
            Backend::Poll { fds } => {
                fds.insert(fd, (token, interest));
            }
        }
        self.registered += 1;
        Ok(())
    }

    fn reregister_fd(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { ep } => {
                let bits = {
                    let mut b = sys::EPOLLRDHUP;
                    if interest.readable {
                        b |= sys::EPOLLIN;
                    }
                    if interest.writable {
                        b |= sys::EPOLLOUT;
                    }
                    if self.edge_triggered {
                        b |= sys::EPOLLET;
                    }
                    b
                };
                sys::epoll_control(ep.0, sys::EPOLL_CTL_MOD, fd, bits, token)?;
            }
            Backend::Poll { fds } => {
                fds.insert(fd, (token, interest));
            }
        }
        Ok(())
    }

    fn deregister_fd(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { ep } => {
                sys::epoll_control(ep.0, sys::EPOLL_CTL_DEL, fd, 0, 0)?;
            }
            Backend::Poll { fds } => {
                fds.remove(&fd);
            }
        }
        self.registered = self.registered.saturating_sub(1);
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: Option<u64>) -> io::Result<usize> {
        let timeout = timeout_ms.map_or(-1i32, |t| t.min(i32::MAX as u64) as i32);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { ep } => {
                let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
                let n = match sys::epoll_wait_on(ep.0, &mut events, timeout) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                let mut appended = 0;
                for ev in &events[..n] {
                    // copy out of the packed struct before use
                    let (bits, data) = (ev.events, ev.data);
                    if data == WAKE_TOKEN {
                        sys::drain_fd(self.wake_read.0);
                        out.push(Event {
                            token: WAKE_TOKEN,
                            readable: false,
                            writable: false,
                            closed: false,
                            error: false,
                        });
                        appended += 1;
                        continue;
                    }
                    out.push(Event {
                        token: data,
                        readable: bits & sys::EPOLLIN != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        closed: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                        error: bits & sys::EPOLLERR != 0,
                    });
                    appended += 1;
                }
                Ok(appended)
            }
            Backend::Poll { fds } => {
                self.scratch.clear();
                self.scratch.push(PollFd {
                    fd: self.wake_read.0,
                    events: sys::POLLIN,
                    revents: 0,
                });
                let mut tokens = Vec::with_capacity(fds.len() + 1);
                tokens.push(WAKE_TOKEN);
                for (&fd, &(token, interest)) in fds.iter() {
                    let mut bits = 0i16;
                    if interest.readable {
                        bits |= sys::POLLIN;
                    }
                    if interest.writable {
                        bits |= sys::POLLOUT;
                    }
                    self.scratch.push(PollFd {
                        fd,
                        events: bits,
                        revents: 0,
                    });
                    tokens.push(token);
                }
                let n = match sys::poll_on(&mut self.scratch, timeout) {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                if n == 0 {
                    return Ok(0);
                }
                let mut appended = 0;
                for (i, pfd) in self.scratch.iter().enumerate() {
                    if pfd.revents == 0 {
                        continue;
                    }
                    if tokens[i] == WAKE_TOKEN {
                        sys::drain_fd(self.wake_read.0);
                        out.push(Event {
                            token: WAKE_TOKEN,
                            readable: false,
                            writable: false,
                            closed: false,
                            error: false,
                        });
                        appended += 1;
                        continue;
                    }
                    out.push(Event {
                        token: tokens[i],
                        readable: pfd.revents & sys::POLLIN != 0,
                        writable: pfd.revents & sys::POLLOUT != 0,
                        closed: pfd.revents & sys::POLLHUP != 0,
                        error: pfd.revents & sys::POLLERR != 0,
                    });
                    appended += 1;
                }
                Ok(appended)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mut r: Reactor) {
        let waker = r.waker();
        let mut out = Vec::new();
        // timeout path: nothing registered, no wake
        assert_eq!(r.wait(&mut out, Some(0)).unwrap(), 0);
        // wake path
        waker.wake();
        let n = r.wait(&mut out, Some(1000)).unwrap();
        assert!(n >= 1);
        assert!(out.iter().any(|e| e.token == WAKE_TOKEN));
        // the wake is consumed: an immediate zero-timeout wait is quiet
        out.clear();
        assert_eq!(r.wait(&mut out, Some(0)).unwrap(), 0);
    }

    #[test]
    fn default_backend_wakes_and_drains() {
        roundtrip(Reactor::new().unwrap());
    }

    #[test]
    fn poll_backend_wakes_and_drains() {
        roundtrip(Reactor::new_poll().unwrap());
    }

    #[test]
    fn tcp_readiness_is_reported() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        for mut r in [Reactor::new().unwrap(), Reactor::new_poll().unwrap()] {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = std::net::TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            r.register_fd(server.as_raw_fd(), 42, Interest::READ)
                .unwrap();
            let mut out = Vec::new();
            assert_eq!(r.wait(&mut out, Some(0)).unwrap(), 0, "no data yet");
            client.write_all(b"hi").unwrap();
            let n = r.wait(&mut out, Some(1000)).unwrap();
            assert!(n >= 1);
            let ev = out.iter().find(|e| e.token == 42).expect("token echoed");
            assert!(ev.readable);
            r.deregister_fd(server.as_raw_fd()).unwrap();
            assert_eq!(r.registered(), 0);
        }
    }
}
