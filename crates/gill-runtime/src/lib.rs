//! gill-runtime — the readiness-driven session runtime.
//!
//! The threaded runtime (PRs 1–9) spends one OS thread per session:
//! simple, debuggable, and exactly what the paper's per-VP "custom BGP
//! daemon" baseline looks like — but a route collector peering with
//! thousands of vantage points cannot afford thousands of stacks and a
//! scheduler thrashing between them. This crate multiplexes all of
//! those sessions onto a small fixed worker set, without touching the
//! protocol logic: the sans-I/O `SessionFsm` and `BmpFsm` already
//! speak byte-in/byte-out, so the runtime only decides *when* bytes
//! and ticks happen.
//!
//! Layers, bottom up:
//!
//! - [`sys`] — the only unsafe code: direct `extern "C"` bindings to
//!   epoll (Linux) and poll(2), an eventfd/pipe waker, and the
//!   RLIMIT_NOFILE raise. No external crates.
//! - [`timer`] — a hierarchical timer wheel (4 levels × 64 slots, 1 ms
//!   resolution) for hold/keepalive/idle deadlines: O(1) arm/cancel,
//!   deterministic fire order `(deadline, arm id)`.
//! - [`reactor`] — [`reactor::Reactor`], the readiness source:
//!   edge-triggered epoll with a level-triggered poll(2) fallback, and
//!   cross-thread [`reactor::Waker`]s. The [`ReadinessSource`] trait
//!   abstracts it so...
//! - [`sim`] — ...[`sim::SimReactor`] can replay scripted readiness
//!   batches (including spurious wakeups) deterministically in tests.
//! - [`conn`] — [`conn::EventedConn`], per-connection buffering
//!   between a non-blocking transport and an FSM: drain-to-WouldBlock
//!   reads (mandatory under edge triggering), partial-write output
//!   queueing.
//! - [`eventloop`] — [`eventloop::EventLoop`], one thread's worth of
//!   multiplexing: slab of sessions, the wheel, readiness dispatch,
//!   and the same counter semantics as the threaded drive loops.
//! - [`pool`] — [`pool::EventedPool`], the deployable shape: worker 0
//!   owns the listeners, accepted connections are capacity-checked and
//!   dispatched round-robin, everything feeds one shared `DaemonPool`
//!   pipeline.
//!
//! [`ReadinessSource`]: reactor::ReadinessSource

pub mod conn;
pub mod eventloop;
pub mod pool;
pub mod reactor;
pub mod sim;
pub mod sys;
pub mod timer;

pub use conn::EventedConn;
pub use eventloop::{EventLoop, LoopStats, Machine, LISTENER_TOKEN_BASE};
pub use pool::{EventedPool, RuntimeConfig, RuntimeTotals};
pub use reactor::{Event, Interest, Reactor, ReadinessSource, Token, Waker, WAKE_TOKEN};
pub use sim::SimReactor;
pub use timer::{Expired, TimerId, TimerWheel};
