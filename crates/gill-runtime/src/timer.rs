//! Hierarchical timer wheel for session deadlines.
//!
//! Hold timers, keepalive generation, BMP idle timeouts and reconnect
//! backoffs are all "fire once at instant T" deadlines, usually cancelled
//! and re-armed long before they fire (every received message pushes the
//! hold deadline out). A hashed hierarchical wheel makes arm/cancel O(1)
//! and advance proportional to slots crossed: four levels of 64 slots at
//! 1 ms, 64 ms, ~4.1 s and ~262 s granularity cover deadlines out to
//! ~4.6 hours; anything beyond parks in an overflow list and re-enters
//! the wheel as the clock catches up (the cascade).
//!
//! Determinism contract (relied on by the evented-vs-threaded transcript
//! tests): timers never fire early, and [`TimerWheel::advance`] delivers
//! expired timers sorted by `(deadline, arm sequence)` — wall-clock
//! jitter in *when* the loop polls cannot reorder *what* it observes.

/// Opaque handle for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A timer that fired: when it was due and the token it carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expired {
    /// The instant the timer was armed for (≤ the advance instant).
    pub deadline: u64,
    /// Caller token (e.g. session slot).
    pub token: u64,
}

const LEVELS: usize = 4;
const SLOTS: usize = 64;
const SLOT_BITS: u32 = 6;

#[derive(Clone, Copy, Debug)]
struct Entry {
    id: u64,
    deadline: u64,
    token: u64,
}

/// The wheel. All instants are milliseconds on the caller's clock
/// (virtual in tests, monotonic-elapsed in the live loop).
pub struct TimerWheel {
    /// `levels[l][slot]` holds entries due within that slot's span.
    levels: Vec<Vec<Vec<Entry>>>,
    /// Entries too far out for the top level.
    overflow: Vec<Entry>,
    /// Current instant in milliseconds.
    now: u64,
    /// Arm sequence → unique ids and deterministic tie-breaks.
    next_id: u64,
    /// Live (armed, not cancelled, not fired) timer count.
    live: usize,
    /// Cancelled ids not yet swept (lazy cancellation).
    cancelled: std::collections::HashSet<u64>,
    /// Total timers delivered by `advance` (stats).
    pub fired: u64,
}

impl TimerWheel {
    /// An empty wheel starting at instant `now_ms`.
    pub fn new(now_ms: u64) -> TimerWheel {
        TimerWheel {
            levels: (0..LEVELS).map(|_| vec![Vec::new(); SLOTS]).collect(),
            overflow: Vec::new(),
            now: now_ms,
            next_id: 0,
            live: 0,
            cancelled: std::collections::HashSet::new(),
            fired: 0,
        }
    }

    /// Milliseconds covered by one slot of `level`.
    fn slot_span(level: usize) -> u64 {
        1u64 << (SLOT_BITS * level as u32)
    }

    /// Milliseconds covered by the whole of `level`.
    fn level_span(level: usize) -> u64 {
        Self::slot_span(level) * SLOTS as u64
    }

    /// Places an entry in the correct level/slot for its deadline,
    /// relative to the current instant.
    fn place(&mut self, e: Entry) {
        let delta = e.deadline.saturating_sub(self.now);
        for level in 0..LEVELS {
            if delta < Self::level_span(level) {
                let slot = ((e.deadline >> (SLOT_BITS * level as u32)) as usize) % SLOTS;
                self.levels[level][slot].push(e);
                return;
            }
        }
        self.overflow.push(e);
    }

    /// Arms a timer for `deadline_ms` carrying `token`. A deadline at or
    /// before the current instant fires on the next [`advance`] call.
    ///
    /// [`advance`]: TimerWheel::advance
    pub fn schedule(&mut self, deadline_ms: u64, token: u64) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.live += 1;
        let deadline = deadline_ms.max(self.now);
        self.place(Entry {
            id,
            deadline,
            token,
        });
        TimerId(id)
    }

    /// Cancels an armed timer. Lazy: the entry is dropped when its slot
    /// is next swept. Cancelling an already-fired id is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        if self.cancelled.insert(id.0) {
            self.live = self.live.saturating_sub(1);
        }
    }

    /// Number of armed, uncancelled timers.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Advances to `now_ms`, appending every expired timer to `out`
    /// sorted by `(deadline, arm sequence)`. Never fires early. Cost is
    /// proportional to slots crossed per level (≤ 64 each) plus entries
    /// touched.
    pub fn advance(&mut self, now_ms: u64, out: &mut Vec<Expired>) {
        if now_ms < self.now {
            return;
        }
        let prev = self.now;
        self.now = now_ms;
        let mut expired: Vec<Entry> = Vec::new();
        // Per level, sweep the slots whose ticks lie in [prev_tick,
        // cur_tick] (inclusive of prev: entries armed "due now" land in
        // the current slot and must still be caught). A jump of ≥ 64
        // ticks degenerates to a full sweep of the level.
        for level in 0..LEVELS {
            let bits = SLOT_BITS * level as u32;
            let prev_tick = prev >> bits;
            let cur_tick = now_ms >> bits;
            let span = (cur_tick - prev_tick + 1).min(SLOTS as u64);
            for i in 0..span {
                let slot = ((prev_tick + i) as usize) % SLOTS;
                let v = std::mem::take(&mut self.levels[level][slot]);
                for e in v {
                    if e.deadline <= self.now {
                        expired.push(e);
                    } else if level == 0 {
                        // still future, same slot hash — put it back
                        self.levels[0][slot].push(e);
                    } else {
                        // cascade toward finer levels as it comes due
                        self.place(e);
                    }
                }
            }
        }
        // overflow cascade: when the top level has wrapped (or entries
        // have simply come within range), re-place or fire
        if !self.overflow.is_empty() {
            let v = std::mem::take(&mut self.overflow);
            for e in v {
                if e.deadline <= self.now {
                    expired.push(e);
                } else if e.deadline.saturating_sub(self.now) < Self::level_span(LEVELS - 1) {
                    self.place(e);
                } else {
                    self.overflow.push(e);
                }
            }
        }
        expired.sort_by_key(|e| (e.deadline, e.id));
        for e in expired {
            if self.cancelled.remove(&e.id) {
                continue;
            }
            out.push(Expired {
                deadline: e.deadline,
                token: e.token,
            });
            self.live = self.live.saturating_sub(1);
            self.fired += 1;
        }
    }

    /// Earliest armed deadline, if any. Conservative: lazy-cancelled
    /// entries may be reported (a spurious early wake, never a late
    /// one).
    pub fn next_deadline(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut note = |d: u64| {
            best = Some(best.map_or(d, |b: u64| b.min(d)));
        };
        for level in &self.levels {
            for slot in level {
                for e in slot {
                    note(e.deadline);
                }
            }
        }
        for e in &self.overflow {
            note(e.deadline);
        }
        best
    }

    /// The wheel's current instant.
    pub fn now(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel, to: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        w.advance(to, &mut out);
        out.into_iter().map(|e| (e.deadline, e.token)).collect()
    }

    #[test]
    fn fires_in_deadline_order_never_early() {
        let mut w = TimerWheel::new(0);
        w.schedule(50, 1);
        w.schedule(10, 2);
        w.schedule(30, 3);
        assert_eq!(drain(&mut w, 9), vec![]);
        assert_eq!(drain(&mut w, 10), vec![(10, 2)]);
        assert_eq!(drain(&mut w, 100), vec![(30, 3), (50, 1)]);
        assert_eq!(w.live(), 0);
    }

    #[test]
    fn same_deadline_fires_in_arm_order() {
        let mut w = TimerWheel::new(0);
        for t in 0..10 {
            w.schedule(77, t);
        }
        let fired = drain(&mut w, 77);
        assert_eq!(
            fired.iter().map(|&(_, t)| t).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn due_now_fires_on_next_advance_even_without_tick_change() {
        let mut w = TimerWheel::new(500);
        w.schedule(500, 9); // clamped to now
        assert_eq!(drain(&mut w, 500), vec![(500, 9)]);
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut w = TimerWheel::new(0);
        let a = w.schedule(20, 1);
        w.schedule(20, 2);
        w.cancel(a);
        assert_eq!(w.live(), 1);
        assert_eq!(drain(&mut w, 25), vec![(20, 2)]);
    }

    #[test]
    fn cascades_across_levels() {
        let mut w = TimerWheel::new(0);
        // one deadline per level span, plus overflow territory
        let deadlines = [5u64, 100, 5_000, 300_000, 20_000_000, 18_000_000_000];
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(d, i as u64);
        }
        // advance in coarse, deliberately unaligned jumps; every timer
        // must fire exactly once, never early, in deadline order
        let mut fired = Vec::new();
        let mut t: u64 = 0;
        while t < 18_000_000_100 {
            t = (t + 777_773).min(18_000_000_100);
            let before = fired.len();
            w.advance(t, &mut fired);
            for e in &fired[before..] {
                assert!(e.deadline <= w.now(), "fired early");
            }
        }
        let got: Vec<(u64, u64)> = fired.iter().map(|e| (e.deadline, e.token)).collect();
        assert_eq!(
            got,
            deadlines
                .iter()
                .enumerate()
                .map(|(i, &d)| (d, i as u64))
                .collect::<Vec<_>>()
        );
        assert_eq!(w.live(), 0);
    }

    #[test]
    fn fine_grained_advance_hits_every_deadline() {
        let mut w = TimerWheel::new(0);
        for d in 0..2000u64 {
            w.schedule(d * 7 + 3, d);
        }
        let mut fired = Vec::new();
        for t in 0..=14_010u64 {
            w.advance(t, &mut fired);
        }
        assert_eq!(fired.len(), 2000);
        for (i, e) in fired.iter().enumerate() {
            assert_eq!(e.token, i as u64);
            assert_eq!(e.deadline, i as u64 * 7 + 3);
        }
    }

    #[test]
    fn rearm_pattern_like_hold_timer() {
        let mut w = TimerWheel::new(0);
        let mut id = w.schedule(90, 1);
        let mut out = Vec::new();
        // every 30ms a "message arrives": cancel + re-arm 90ms out
        for step in 1..=20u64 {
            w.advance(step * 30, &mut out);
            assert!(out.is_empty(), "hold fired despite re-arms");
            w.cancel(id);
            id = w.schedule(step * 30 + 90, 1);
        }
        // silence: the final deadline fires
        w.advance(20 * 30 + 90, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].deadline, 20 * 30 + 90);
        let _ = id;
    }

    #[test]
    fn next_deadline_is_conservative_lower_bound() {
        let mut w = TimerWheel::new(0);
        assert_eq!(w.next_deadline(), None);
        w.schedule(500, 1);
        let id = w.schedule(100, 2);
        assert_eq!(w.next_deadline(), Some(100));
        w.cancel(id);
        // lazy cancel may keep reporting 100 — allowed (early wake),
        // but never later than the true earliest deadline
        assert!(w.next_deadline().unwrap() <= 500);
        let mut out = Vec::new();
        w.advance(200, &mut out);
        assert!(out.is_empty());
        assert_eq!(w.next_deadline(), Some(500));
    }
}
