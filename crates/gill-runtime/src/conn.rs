//! Per-connection buffering between a non-blocking [`Transport`] and a
//! sans-I/O session machine.
//!
//! The FSMs already speak byte-in/byte-out; what an evented loop adds is
//! *when*: on readable, drain the socket to `WouldBlock` (mandatory
//! under edge triggering) feeding every chunk to the machine; on
//! writable, flush whatever output the machine queued that the socket
//! wouldn't take earlier.

use gill_collector::transport::Transport;
use std::io;

/// A buffered non-blocking connection.
pub struct EventedConn<T: Transport> {
    transport: T,
    /// Output the socket hasn't accepted yet; `off` indexes the unsent
    /// tail so flushing never memmoves.
    out: Vec<u8>,
    off: usize,
    /// A write hit a hard error: the peer is gone. The event loop
    /// surfaces this as EOF to the machine, mirroring the threaded
    /// drive loop (and the deterministic harness), where a failed write
    /// closes the session without waiting for the read side to notice.
    dead: bool,
}

impl<T: Transport> EventedConn<T> {
    /// Wraps a transport already in non-blocking mode.
    pub fn new(transport: T) -> EventedConn<T> {
        EventedConn {
            transport,
            out: Vec::new(),
            off: 0,
            dead: false,
        }
    }

    /// The wrapped transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Reads until `WouldBlock` or EOF, handing each chunk to `sink`.
    /// Returns `Ok(true)` when EOF was observed. Hard I/O errors (e.g.
    /// connection reset) are reported as EOF too: from the session's
    /// perspective the connection is gone either way, and the FSM's
    /// close path owns the bookkeeping.
    pub fn fill(&mut self, scratch: &mut [u8], mut sink: impl FnMut(&[u8])) -> io::Result<bool> {
        loop {
            match self.transport.read(scratch) {
                Ok(0) => return Ok(true),
                Ok(n) => sink(&scratch[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Ok(true),
            }
        }
    }

    /// Queues bytes for transmission (call [`flush`] to push them).
    ///
    /// [`flush`]: EventedConn::flush
    pub fn queue(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        if self.off == self.out.len() {
            self.out.clear();
            self.off = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// Writes as much queued output as the socket will take. Returns
    /// `Ok(true)` when the buffer fully drained. Write failures mean the
    /// peer is gone; they surface as a drained buffer (the next read
    /// reports the close).
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.off < self.out.len() {
            match self.transport.write(&self.out[self.off..]) {
                Ok(0) => break,
                Ok(n) => self.off += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // dead link: drop the buffer and remember it — the
                    // loop reports EOF to the machine
                    self.out.clear();
                    self.off = 0;
                    self.dead = true;
                    return Ok(true);
                }
            }
        }
        self.out.clear();
        self.off = 0;
        Ok(true)
    }

    /// Whether a write ever hit a hard error (the link is gone).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Whether queued output is waiting on socket writability.
    pub fn has_pending(&self) -> bool {
        self.off < self.out.len()
    }

    /// Bytes currently queued and unsent.
    pub fn pending_bytes(&self) -> usize {
        self.out.len() - self.off
    }

    /// Closes both directions (best effort).
    pub fn shutdown(&mut self) {
        self.transport.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gill_collector::transport::{sim_pair, FaultSchedule, VirtualClock};

    #[test]
    fn fill_drains_to_wouldblock_and_reports_eof() {
        let clock = VirtualClock::new();
        let (mut a, b) = sim_pair(&clock, FaultSchedule::default(), FaultSchedule::default());
        a.write_all(b"hello").unwrap();
        let mut conn = EventedConn::new(b);
        let mut got = Vec::new();
        let mut scratch = [0u8; 4096];
        let eof = conn
            .fill(&mut scratch, |c| got.extend_from_slice(c))
            .unwrap();
        assert!(!eof);
        assert_eq!(got, b"hello");
        // nothing more: immediately WouldBlock, no spin
        let eof = conn
            .fill(&mut scratch, |c| got.extend_from_slice(c))
            .unwrap();
        assert!(!eof);
        assert_eq!(got, b"hello");
        a.shutdown();
        let eof = conn
            .fill(&mut scratch, |c| got.extend_from_slice(c))
            .unwrap();
        assert!(eof);
    }

    #[test]
    fn queue_and_flush_roundtrip() {
        let clock = VirtualClock::new();
        let (a, mut b) = sim_pair(&clock, FaultSchedule::default(), FaultSchedule::default());
        let mut conn = EventedConn::new(a);
        conn.queue(b"one ");
        conn.queue(b"two");
        assert!(conn.has_pending());
        assert!(conn.flush().unwrap());
        assert!(!conn.has_pending());
        let mut buf = [0u8; 64];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"one two");
    }
}
