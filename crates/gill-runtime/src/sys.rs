//! Direct `extern "C"` bindings to the handful of OS primitives the
//! reactor needs: epoll + eventfd on Linux, poll(2) + a self-pipe
//! everywhere else, plus `fcntl` (non-blocking mode) and `setrlimit`
//! (fd-limit raise for the session bench).
//!
//! This is the **only** module in the workspace that contains `unsafe`
//! I/O code, and the safety argument is kept deliberately small:
//!
//! * Every syscall here takes either plain integers or a pointer+length
//!   pair derived from a live `&mut [T]` — no pointer outlives the call.
//! * `EpollEvent` matches the kernel ABI: packed on x86_64 (where the
//!   kernel declares `__attribute__((packed))`), natural layout on other
//!   architectures. Field reads below copy out of the packed struct
//!   before use, so no unaligned references are ever created.
//! * File descriptors are owned by the safe wrappers ([`OwnedFd`]) and
//!   closed exactly once on drop; raw fds handed to `epoll_ctl` are
//!   borrowed from callers who keep them alive while registered (the
//!   reactor deregisters before the connection drops).
//! * `EINTR` is mapped to `io::ErrorKind::Interrupted` and retried by
//!   callers; every other failure becomes `io::Error::last_os_error()`.

use std::io;

/// A raw file descriptor (we avoid `std::os::fd` re-exports so the
/// module reads the same on every platform).
pub type RawFd = i32;

/// Close-on-drop fd ownership for reactor-internal descriptors
/// (epoll instance, eventfd, self-pipe ends).
#[derive(Debug)]
pub struct OwnedFd(pub RawFd);

impl Drop for OwnedFd {
    fn drop(&mut self) {
        if self.0 >= 0 {
            unsafe {
                close(self.0);
            }
        }
    }
}

extern "C" {
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

// epoll_ctl ops
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_ADD: i32 = 1;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_DEL: i32 = 2;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_MOD: i32 = 3;

// epoll event bits
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 0x8000_0000;

// poll(2) event bits (same low bits as epoll on Linux; POSIX elsewhere)
pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;

const RLIMIT_NOFILE: i32 = 7;

/// The kernel's `struct epoll_event`. x86_64 declares it packed; other
/// architectures use natural alignment — `cfg_attr` mirrors that split.
#[cfg(target_os = "linux")]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

/// `struct pollfd`, identical layout on every POSIX platform.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    pub fd: i32,
    pub events: i16,
    pub revents: i16,
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Puts `fd` into non-blocking mode.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

/// Raises the soft fd limit toward the hard limit, returning the
/// resulting soft limit. Best effort — a refused raise just returns the
/// current value, so callers can report rather than fail.
pub fn raise_nofile(want: u64) -> u64 {
    let mut lim = Rlimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    let target = want.min(lim.max);
    let new = Rlimit {
        cur: target,
        max: lim.max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        target
    } else {
        lim.cur
    }
}

/// Creates an epoll instance (Linux only).
#[cfg(target_os = "linux")]
pub fn epoll_create() -> io::Result<OwnedFd> {
    // EPOLL_CLOEXEC
    let fd = cvt(unsafe { epoll_create1(0o2000000) })?;
    Ok(OwnedFd(fd))
}

/// One `epoll_ctl` operation.
#[cfg(target_os = "linux")]
pub fn epoll_control(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
    Ok(())
}

/// Waits for readiness on `epfd`, filling `events`. Returns the number
/// of entries filled; `timeout_ms < 0` blocks indefinitely.
#[cfg(target_os = "linux")]
pub fn epoll_wait_on(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let n = cvt(unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) })?;
    Ok(n as usize)
}

/// Creates a non-blocking eventfd for cross-thread wakes (Linux only).
#[cfg(target_os = "linux")]
pub fn eventfd_create() -> io::Result<OwnedFd> {
    // EFD_CLOEXEC | EFD_NONBLOCK
    let fd = cvt(unsafe { eventfd(0, 0o2000000 | 0o4000) })?;
    Ok(OwnedFd(fd))
}

/// Creates a non-blocking pipe pair `(read_end, write_end)` — the
/// portable waker for the poll(2) backend.
pub fn pipe_pair() -> io::Result<(OwnedFd, OwnedFd)> {
    let mut fds = [0i32; 2];
    cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
    let (r, w) = (OwnedFd(fds[0]), OwnedFd(fds[1]));
    set_nonblocking(r.0)?;
    set_nonblocking(w.0)?;
    Ok((r, w))
}

/// Writes `buf` to a raw fd (waker signal); short writes and
/// `WouldBlock` are fine — any byte in flight wakes the loop.
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Drains a waker fd (eventfd counter or pipe bytes) until empty.
pub fn drain_fd(fd: RawFd) {
    let mut buf = [0u8; 64];
    loop {
        let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
        if n <= 0 {
            return;
        }
    }
}

/// poll(2) over `fds`; `timeout_ms < 0` blocks indefinitely.
pub fn poll_on(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let n = cvt(unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) })?;
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_wake_roundtrip() {
        let (r, w) = pipe_pair().unwrap();
        assert_eq!(write_fd(w.0, &[1]).unwrap(), 1);
        let mut fds = [PollFd {
            fd: r.0,
            events: POLLIN,
            revents: 0,
        }];
        let n = poll_on(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].revents & POLLIN != 0);
        drain_fd(r.0);
        // drained: poll with zero timeout reports nothing ready
        fds[0].revents = 0;
        assert_eq!(poll_on(&mut fds, 0).unwrap(), 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_registers_and_reports_pipe_readiness() {
        let ep = epoll_create().unwrap();
        let (r, w) = pipe_pair().unwrap();
        epoll_control(ep.0, EPOLL_CTL_ADD, r.0, EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // nothing ready yet
        assert_eq!(epoll_wait_on(ep.0, &mut events, 0).unwrap(), 0);
        write_fd(w.0, &[1]).unwrap();
        let n = epoll_wait_on(ep.0, &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (evs, data) = (events[0].events, events[0].data);
        assert!(evs & EPOLLIN != 0);
        assert_eq!(data, 7);
        epoll_control(ep.0, EPOLL_CTL_DEL, r.0, 0, 0).unwrap();
    }

    #[test]
    fn nofile_raise_reports_a_limit() {
        // must not panic and must report a sane limit on any platform
        let lim = raise_nofile(4096);
        assert!(lim == 0 || lim >= 256);
    }
}
