//! Fake BGP peers for load experiments (§8, Table 1).
//!
//! "For every BGP daemon that we run, we configure a fake peer that
//! establishes a BGP session with the daemon and sends a stream of BGP
//! updates" at a configured frequency.

use crate::daemon::{handshake_client, MessageStream};
use crate::transport::BackoffPolicy;
use bgp_types::{Asn, BgpUpdate, Prefix, UpdateBuilder, VpId};
use bgp_wire::{BgpMessage, Notification, UpdateMessage};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Configuration of one fake peer.
#[derive(Clone, Debug)]
pub struct FakePeerConfig {
    /// The peer's AS number.
    pub asn: u32,
    /// Updates per second to send (RIS/RV average ≈ 7.8/s = 28k/h; p99
    /// ≈ 67/s = 241k/h).
    pub rate_per_sec: f64,
    /// Total updates to send.
    pub count: usize,
    /// Number of distinct prefixes to cycle through.
    pub prefixes: u32,
}

impl Default for FakePeerConfig {
    fn default() -> Self {
        FakePeerConfig {
            asn: 65001,
            rate_per_sec: 7.8,
            count: 100,
            prefixes: 50,
        }
    }
}

/// Generates the synthetic update stream a fake peer sends.
pub fn synthetic_updates(cfg: &FakePeerConfig) -> Vec<BgpUpdate> {
    (0..cfg.count)
        .map(|i| {
            let p = (i as u32) % cfg.prefixes.max(1);
            UpdateBuilder::announce(VpId::from_asn(Asn(cfg.asn)), Prefix::synthetic(p))
                .path([cfg.asn, 2 + (i as u32 % 3), 7, 1 + p % 5])
                .community((cfg.asn % 60_000) as u16, (100 + i % 50) as u16)
                .build()
        })
        .collect()
}

/// Connects to `addr`, performs the handshake and sends the stream paced
/// at the configured rate. Returns the number of updates sent.
pub fn run_fake_peer(addr: std::net::SocketAddr, cfg: &FakePeerConfig) -> std::io::Result<usize> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut ms = MessageStream::new(stream);
    handshake_client(&mut ms, cfg.asn)?;
    let updates = synthetic_updates(cfg);
    let interval = if cfg.rate_per_sec > 0.0 {
        Duration::from_secs_f64(1.0 / cfg.rate_per_sec)
    } else {
        Duration::ZERO
    };
    let start = Instant::now();
    let mut sent = 0usize;
    for (i, u) in updates.iter().enumerate() {
        // pace: wait until this update's slot
        let due = interval * i as u32;
        let now = start.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        let wire = UpdateMessage::from_domain(u)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        ms.write_message(&BgpMessage::Update(wire))?;
        sent += 1;
    }
    let _ = ms.write_message(&BgpMessage::Notification(Notification::cease()));
    Ok(sent)
}

/// What [`run_resilient_peer`] did.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ResilientPeerReport {
    /// Connection attempts made (including the successful one).
    pub attempts: u32,
    /// Updates delivered on the final, successful session.
    pub sent: usize,
    /// Total backoff slept across retries, in milliseconds.
    pub backoff_ms: u64,
}

/// Like [`run_fake_peer`], but survives connection failures: retries with
/// capped exponential backoff (deterministic jitter from
/// `backoff.seed`) until a session completes or `max_attempts` runs out.
/// A real operator router reconnects exactly like this after a collector
/// restart.
pub fn run_resilient_peer(
    addr: std::net::SocketAddr,
    cfg: &FakePeerConfig,
    backoff: BackoffPolicy,
    max_attempts: u32,
) -> std::io::Result<ResilientPeerReport> {
    let mut report = ResilientPeerReport::default();
    loop {
        report.attempts += 1;
        match run_fake_peer(addr, cfg) {
            Ok(sent) => {
                report.sent = sent;
                return Ok(report);
            }
            Err(e) if report.attempts >= max_attempts => return Err(e),
            Err(_) => {
                let delay = backoff.delay_ms(report.attempts - 1);
                report.backoff_ms += delay;
                std::thread::sleep(Duration::from_millis(delay));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, DaemonPool};
    use crate::storage::MemoryStorage;

    #[test]
    fn fake_peer_delivers_at_roughly_the_configured_rate() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        let addr = pool.local_addr();
        let cfg = FakePeerConfig {
            asn: 65009,
            rate_per_sec: 200.0,
            count: 40,
            prefixes: 10,
        };
        let start = Instant::now();
        let sent = std::thread::spawn(move || run_fake_peer(addr, &cfg).unwrap())
            .join()
            .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(sent, 40);
        // 40 updates at 200/s ≈ 200 ms; allow generous slack
        assert!(elapsed >= Duration::from_millis(150), "{elapsed:?}");
        // deterministic drain: wait on the counter, not wall-clock time
        for _ in 0..500 {
            if pool
                .stats()
                .received
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 40
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 40);
    }

    #[test]
    fn resilient_peer_retries_until_the_collector_appears() {
        // reserve a port, then close the listener: connects will fail
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = FakePeerConfig {
            asn: 65021,
            rate_per_sec: 0.0,
            count: 5,
            prefixes: 5,
        };
        let backoff = BackoffPolicy {
            base_ms: 20,
            cap_ms: 100,
            seed: 3,
        };
        let peer = std::thread::spawn(move || run_resilient_peer(addr, &cfg, backoff, 50));
        // let a few attempts fail, then start the pool on that port
        std::thread::sleep(Duration::from_millis(60));
        let mut pool = DaemonPool::start(&addr.to_string(), DaemonConfig::default()).unwrap();
        let report = peer.join().unwrap().unwrap();
        assert!(report.attempts > 1, "at least one retry expected");
        assert_eq!(report.sent, 5);
        assert!(report.backoff_ms > 0);
        for _ in 0..500 {
            if pool
                .stats()
                .received
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 5
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 5);
    }

    #[test]
    fn synthetic_updates_cycle_prefixes() {
        let cfg = FakePeerConfig {
            count: 10,
            prefixes: 3,
            ..FakePeerConfig::default()
        };
        let ups = synthetic_updates(&cfg);
        assert_eq!(ups.len(), 10);
        let distinct: std::collections::BTreeSet<_> = ups.iter().map(|u| u.prefix).collect();
        assert_eq!(distinct.len(), 3);
    }
}
