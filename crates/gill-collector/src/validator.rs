//! Update-validity checks (§14 — "Preventing fake peering sessions and
//! data").
//!
//! Current collection platforms run no consistency checks on what peers
//! send; GILL's automation makes that gap more pressing. This module
//! implements the checks a collector *can* run without external trust
//! anchors:
//!
//! * **session consistency** — the AS path's first hop must be the peer's
//!   own AS (an eBGP speaker always prepends itself);
//! * **protocol sanity** — no reserved ASN 0 / AS_TRANS in the path, sane
//!   path length, no routing loop (non-adjacent repeats);
//! * **bogon filtering** — no reserved/documentation prefixes;
//! * **plausibility** — optionally, new origin-adjacent links are verified
//!   against a link knowledge base (the DFOH-style check of §12), flagging
//!   potential forged-origin announcements for quarantine rather than
//!   silent storage.

use bgp_types::{Asn, BgpUpdate, Link, Prefix};
use std::collections::{HashMap, HashSet};

/// Maximum plausible AS-path length (longest observed real paths are in
/// the low tens; anything longer is a leak or an attack).
pub const MAX_PATH_LEN: usize = 64;

/// Why an update failed validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Violation {
    /// First hop of the path is not the peering AS.
    FirstHopMismatch,
    /// Path contains ASN 0 or AS_TRANS.
    ReservedAsn,
    /// Path exceeds [`MAX_PATH_LEN`] hops.
    PathTooLong,
    /// Path contains a routing loop (non-adjacent repeat).
    PathLoop,
    /// Prefix is a bogon (reserved/documentation space).
    BogonPrefix,
    /// The origin-adjacent link was never seen before and is topologically
    /// implausible (possible forged-origin announcement).
    SuspiciousOriginLink,
}

/// Verdict for one update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Passes every check.
    Valid,
    /// Hard protocol violation — drop and count.
    Invalid(Violation),
    /// Suspicious but possibly legitimate — store, but flag for review
    /// (the §14 "quarantine" path).
    Quarantine(Violation),
}

/// Stateful validator: tracks the link knowledge base used by the
/// plausibility check.
#[derive(Default)]
pub struct UpdateValidator {
    links: HashMap<Asn, HashSet<Asn>>,
    /// Counters per violation kind (indexed by discriminant order).
    pub stats: ValidatorStats,
}

/// Validation counters.
#[derive(Default, Debug, Clone)]
pub struct ValidatorStats {
    /// Valid updates seen.
    pub valid: usize,
    /// Hard violations.
    pub invalid: usize,
    /// Quarantined updates.
    pub quarantined: usize,
}

impl UpdateValidator {
    /// A fresh validator with an empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the knowledge base with known links (e.g. from archived RIBs).
    pub fn seed_links<I: IntoIterator<Item = Link>>(&mut self, links: I) {
        for l in links {
            self.add_link(l.from, l.to);
        }
    }

    fn add_link(&mut self, a: Asn, b: Asn) {
        self.links.entry(a).or_default().insert(b);
        self.links.entry(b).or_default().insert(a);
    }

    fn has_link(&self, a: Asn, b: Asn) -> bool {
        self.links.get(&a).map(|s| s.contains(&b)).unwrap_or(false)
    }

    fn plausible(&self, a: Asn, b: Asn) -> bool {
        let (Some(na), Some(nb)) = (self.links.get(&a), self.links.get(&b)) else {
            return false;
        };
        !na.is_disjoint(nb)
    }

    /// Validates one update received from `peer`. Withdrawals carry no
    /// attributes to check and are always valid.
    pub fn validate(&mut self, peer: Asn, u: &BgpUpdate) -> Verdict {
        let verdict = self.check(peer, u);
        match &verdict {
            Verdict::Valid => self.valid_update(u),
            Verdict::Invalid(_) => self.stats.invalid += 1,
            Verdict::Quarantine(_) => {
                // quarantined data is stored, so its links become known
                self.valid_update(u);
                self.stats.quarantined += 1;
                self.stats.valid -= 1;
            }
        }
        verdict
    }

    fn valid_update(&mut self, u: &BgpUpdate) {
        for l in u.path.links() {
            self.add_link(l.from, l.to);
        }
        self.stats.valid += 1;
    }

    fn check(&self, peer: Asn, u: &BgpUpdate) -> Verdict {
        if !u.is_announce() {
            return Verdict::Valid;
        }
        if is_bogon(&u.prefix) {
            return Verdict::Invalid(Violation::BogonPrefix);
        }
        let hops = u.path.hops();
        if hops.is_empty() || hops[0] != peer {
            return Verdict::Invalid(Violation::FirstHopMismatch);
        }
        if hops.len() > MAX_PATH_LEN {
            return Verdict::Invalid(Violation::PathTooLong);
        }
        if hops.iter().any(|&a| a == Asn::RESERVED || a == Asn::TRANS) {
            return Verdict::Invalid(Violation::ReservedAsn);
        }
        if u.path.has_loop() {
            return Verdict::Invalid(Violation::PathLoop);
        }
        // plausibility of the origin-adjacent link
        if u.path.unique_len() >= 2 {
            let uniq: Vec<Asn> = {
                let mut v = Vec::new();
                for &h in hops {
                    if v.last() != Some(&h) {
                        v.push(h);
                    }
                }
                v
            };
            let origin = uniq[uniq.len() - 1];
            let before = uniq[uniq.len() - 2];
            if !self.has_link(before, origin) && !self.plausible(before, origin) {
                return Verdict::Quarantine(Violation::SuspiciousOriginLink);
            }
        }
        Verdict::Valid
    }
}

/// Whether a prefix falls in reserved / documentation space that should
/// never be announced (RFC 5735 and friends, the subset relevant to IPv4).
pub fn is_bogon(p: &Prefix) -> bool {
    if p.is_ipv6() {
        return false; // v6 bogons out of scope with v4-only NLRI
    }
    const BOGONS: [(&str, ()); 6] = [
        ("0.0.0.0/8", ()),
        ("127.0.0.0/8", ()),
        ("169.254.0.0/16", ()),
        ("192.0.2.0/24", ()),
        ("198.51.100.0/24", ()),
        ("203.0.113.0/24", ()),
    ];
    BOGONS
        .iter()
        .any(|(cidr, _)| cidr.parse::<Prefix>().map(|b| b.covers(p)).unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Timestamp, UpdateBuilder, VpId};

    fn announce(peer: u32, path: &[u32], pfx: &str) -> BgpUpdate {
        UpdateBuilder::announce(VpId::from_asn(Asn(peer)), pfx.parse().unwrap())
            .at(Timestamp::from_secs(1))
            .path(path.iter().copied())
            .build()
    }

    #[test]
    fn clean_update_is_valid() {
        let mut v = UpdateValidator::new();
        v.seed_links([Link::new(Asn(2), Asn(3))]);
        // seed makes 2-3 known; 1-2 new but origin link is 2-3... the
        // origin-adjacent link here is (2,3), which is known
        let u = announce(1, &[1, 2, 3], "8.8.8.0/24");
        assert_eq!(v.validate(Asn(1), &u), Verdict::Valid);
        assert_eq!(v.stats.valid, 1);
    }

    #[test]
    fn first_hop_must_match_peer() {
        let mut v = UpdateValidator::new();
        let u = announce(1, &[2, 3], "8.8.8.0/24");
        assert_eq!(
            v.validate(Asn(1), &u),
            Verdict::Invalid(Violation::FirstHopMismatch)
        );
        assert_eq!(v.stats.invalid, 1);
    }

    #[test]
    fn reserved_asn_rejected() {
        let mut v = UpdateValidator::new();
        let u = announce(1, &[1, 0, 3], "8.8.8.0/24");
        assert_eq!(
            v.validate(Asn(1), &u),
            Verdict::Invalid(Violation::ReservedAsn)
        );
        let u = announce(1, &[1, 23456, 3], "8.8.8.0/24");
        assert_eq!(
            v.validate(Asn(1), &u),
            Verdict::Invalid(Violation::ReservedAsn)
        );
    }

    #[test]
    fn loops_and_monster_paths_rejected() {
        let mut v = UpdateValidator::new();
        let u = announce(1, &[1, 2, 3, 2, 4], "8.8.8.0/24");
        assert_eq!(
            v.validate(Asn(1), &u),
            Verdict::Invalid(Violation::PathLoop)
        );
        let long: Vec<u32> = (1..=70).collect();
        let u = announce(1, &long, "8.8.8.0/24");
        assert_eq!(
            v.validate(Asn(1), &u),
            Verdict::Invalid(Violation::PathTooLong)
        );
        // prepending is not a loop
        let mut v = UpdateValidator::new();
        v.seed_links([Link::new(Asn(2), Asn(3))]);
        let u = announce(1, &[1, 1, 1, 2, 3], "8.8.8.0/24");
        assert_eq!(v.validate(Asn(1), &u), Verdict::Valid);
    }

    #[test]
    fn bogons_rejected() {
        let mut v = UpdateValidator::new();
        for pfx in ["127.0.0.0/8", "192.0.2.0/24", "203.0.113.128/25"] {
            let u = announce(1, &[1, 2], pfx);
            assert_eq!(
                v.validate(Asn(1), &u),
                Verdict::Invalid(Violation::BogonPrefix),
                "{pfx}"
            );
        }
        assert!(!is_bogon(&"8.8.8.0/24".parse().unwrap()));
    }

    #[test]
    fn unknown_origin_link_is_quarantined_not_dropped() {
        let mut v = UpdateValidator::new();
        v.seed_links([
            Link::new(Asn(2), Asn(3)),
            Link::new(Asn(3), Asn(4)),
            Link::new(Asn(2), Asn(9)),
        ]);
        // (9, 99) never seen, 9 and 99 share no neighbor → quarantine
        let u = announce(1, &[1, 2, 9, 99], "8.8.8.0/24");
        assert_eq!(
            v.validate(Asn(1), &u),
            Verdict::Quarantine(Violation::SuspiciousOriginLink)
        );
        assert_eq!(v.stats.quarantined, 1);
        // quarantined links enter the KB: the same link is now known
        let u2 = announce(1, &[1, 2, 9, 99], "8.8.4.0/24");
        assert_eq!(v.validate(Asn(1), &u2), Verdict::Valid);
    }

    #[test]
    fn plausible_new_link_is_accepted() {
        let mut v = UpdateValidator::new();
        // 5 and 6 share neighbor 4 → a new 5-6 link is plausible
        v.seed_links([Link::new(Asn(4), Asn(5)), Link::new(Asn(4), Asn(6))]);
        let u = announce(1, &[1, 5, 6], "8.8.8.0/24");
        assert_eq!(v.validate(Asn(1), &u), Verdict::Valid);
    }

    #[test]
    fn withdrawals_always_pass() {
        let mut v = UpdateValidator::new();
        let u =
            UpdateBuilder::withdraw(VpId::from_asn(Asn(1)), "8.8.8.0/24".parse().unwrap()).build();
        assert_eq!(v.validate(Asn(1), &u), Verdict::Valid);
    }
}
