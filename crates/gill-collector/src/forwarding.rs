//! Operator forwarding rules (§14 — "Custom services that improve
//! visibility").
//!
//! In return for peering, GILL can forward an operator selected slices of
//! the incoming stream *before* discarding them: typically every update
//! for the operator's own prefixes, from every VP — which is what makes
//! ARTEMIS-style self-monitoring "bulletproof" at high coverage. Rules
//! match on prefix (with covering semantics, so a rule for a /16 also
//! catches announcements of sub-prefixes — the sub-prefix hijack case) and
//! optionally on origin AS.

use bgp_types::{Asn, BgpUpdate, Prefix};
use crossbeam::channel::{unbounded, Receiver, Sender, TrySendError};
use std::collections::HashMap;

/// One forwarding rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForwardRule {
    /// Updates whose prefix is covered by (or covers) this prefix match.
    pub prefix: Prefix,
    /// If set, additionally match updates whose path *origin* equals this
    /// AS (catches re-originations of unrelated space).
    pub origin: Option<Asn>,
}

impl ForwardRule {
    /// Matches announcements of `prefix` and of any more-specific prefix
    /// (sub-prefix hijacks announce more-specifics).
    pub fn for_prefix(prefix: Prefix) -> Self {
        ForwardRule {
            prefix,
            origin: None,
        }
    }

    fn matches(&self, u: &BgpUpdate) -> bool {
        if self.prefix.covers(&u.prefix) || u.prefix.covers(&self.prefix) {
            return true;
        }
        if let Some(origin) = self.origin {
            if u.path.origin() == Some(origin) {
                return true;
            }
        }
        false
    }
}

/// A subscription handle: the operator's side of the feed.
pub struct Subscription {
    /// Delivered updates.
    pub feed: Receiver<BgpUpdate>,
}

/// The forwarding engine: evaluates every incoming update against all
/// operator subscriptions before the discard stage (Fig. 9's tee).
#[derive(Default)]
pub struct Forwarder {
    subs: HashMap<u64, (Vec<ForwardRule>, Sender<BgpUpdate>)>,
    next_id: u64,
    /// Updates forwarded in total.
    pub forwarded: usize,
    /// Updates dropped because a subscriber stopped reading.
    pub dropped: usize,
}

impl Forwarder {
    /// An empty forwarder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subscription with its rules; returns the id and handle.
    pub fn subscribe(&mut self, rules: Vec<ForwardRule>) -> (u64, Subscription) {
        let (tx, rx) = unbounded();
        let id = self.next_id;
        self.next_id += 1;
        self.subs.insert(id, (rules, tx));
        (id, Subscription { feed: rx })
    }

    /// Removes a subscription.
    pub fn unsubscribe(&mut self, id: u64) {
        self.subs.remove(&id);
    }

    /// Number of live subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether there are no subscriptions.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Offers one update to every matching subscription. Call this on the
    /// raw (pre-filter) stream: forwarding happens *prior to discarding*.
    pub fn offer(&mut self, u: &BgpUpdate) {
        let mut dead = Vec::new();
        for (&id, (rules, tx)) in &self.subs {
            if rules.iter().any(|r| r.matches(u)) {
                match tx.try_send(u.clone()) {
                    Ok(()) => self.forwarded += 1,
                    Err(TrySendError::Full(_)) => self.dropped += 1,
                    Err(TrySendError::Disconnected(_)) => dead.push(id),
                }
            }
        }
        for id in dead {
            self.subs.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Timestamp, UpdateBuilder, VpId};
    use std::net::Ipv4Addr;

    fn upd(vp: u32, pfx: &str, path: &[u32]) -> BgpUpdate {
        UpdateBuilder::announce(VpId::from_asn(Asn(vp)), pfx.parse().unwrap())
            .at(Timestamp::from_secs(1))
            .path(path.iter().copied())
            .build()
    }

    #[test]
    fn exact_and_subprefix_matches_forward() {
        let mut f = Forwarder::new();
        let (_, sub) = f.subscribe(vec![ForwardRule::for_prefix(
            "10.1.0.0/16".parse().unwrap(),
        )]);
        f.offer(&upd(1, "10.1.0.0/16", &[1, 2])); // exact
        f.offer(&upd(1, "10.1.42.0/24", &[1, 9])); // sub-prefix (hijack-style)
        f.offer(&upd(1, "10.2.0.0/16", &[1, 2])); // unrelated
        assert_eq!(f.forwarded, 2);
        assert_eq!(sub.feed.try_iter().count(), 2);
    }

    #[test]
    fn covering_prefix_also_matches() {
        // an announcement of the whole /8 affects the operator's /16
        let mut f = Forwarder::new();
        let (_, sub) = f.subscribe(vec![ForwardRule::for_prefix(
            "10.1.0.0/16".parse().unwrap(),
        )]);
        f.offer(&upd(1, "10.0.0.0/8", &[1, 2]));
        assert_eq!(sub.feed.try_iter().count(), 1);
    }

    #[test]
    fn origin_rule_catches_reorigination() {
        let mut f = Forwarder::new();
        let (_, sub) = f.subscribe(vec![ForwardRule {
            prefix: "10.1.0.0/16".parse().unwrap(),
            origin: Some(Asn(64500)),
        }]);
        // our AS originating somewhere else entirely
        f.offer(&upd(7, "172.16.0.0/12", &[7, 64500]));
        assert_eq!(sub.feed.try_iter().count(), 1);
    }

    #[test]
    fn unsubscribe_and_dead_subscriber_cleanup() {
        let mut f = Forwarder::new();
        let (id, sub) = f.subscribe(vec![ForwardRule::for_prefix(Prefix::v4(
            Ipv4Addr::new(10, 1, 0, 0),
            16,
        ))]);
        assert_eq!(f.len(), 1);
        f.unsubscribe(id);
        assert!(f.is_empty());
        drop(sub);

        // dropped receiver gets garbage-collected on the next offer
        let (_, sub2) = f.subscribe(vec![ForwardRule::for_prefix(Prefix::v4(
            Ipv4Addr::new(10, 1, 0, 0),
            16,
        ))]);
        drop(sub2);
        f.offer(&upd(1, "10.1.0.0/16", &[1, 2]));
        assert!(f.is_empty(), "disconnected subscriber must be removed");
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let mut f = Forwarder::new();
        let (_, a) = f.subscribe(vec![ForwardRule::for_prefix(
            "10.1.0.0/16".parse().unwrap(),
        )]);
        let (_, b) = f.subscribe(vec![ForwardRule::for_prefix("10.0.0.0/8".parse().unwrap())]);
        f.offer(&upd(1, "10.1.5.0/24", &[1, 2]));
        assert_eq!(a.feed.try_iter().count(), 1);
        assert_eq!(b.feed.try_iter().count(), 1);
        assert_eq!(f.forwarded, 2);
    }
}
