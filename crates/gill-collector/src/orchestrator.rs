//! The orchestrator (§8, Fig. 9).
//!
//! Periodically executes GILL's sampling algorithms and refreshes the
//! daemons' filters:
//!
//! * component #1 (redundant updates) every 16 days (§7, Fig. 7),
//! * component #2 (anchor VPs) every year (§7, Fig. 8).
//!
//! Between refreshes it *mirrors* the full stream into a temporary buffer
//! (invisible to users) so the next training run has all the data it needs,
//! then drops the mirror — the resolution of the "sampling needs all data"
//! tension described in §8.

use as_topology::AsCategory;
use bgp_types::{Asn, BgpUpdate, Rib, Timestamp, VpId};
use gill_core::{FilterSet, GillAnalysis, GillConfig};
use std::collections::HashMap;
use std::time::Duration;

/// Orchestrator scheduling configuration (simulated time).
#[derive(Clone, Debug)]
pub struct OrchestratorConfig {
    /// Refresh period of component #1 (default 16 days).
    pub comp1_interval: Duration,
    /// Refresh period of component #2 (default 365 days).
    pub comp2_interval: Duration,
    /// Upper bound on the temporary mirror (updates). When a batch pushes
    /// the mirror past the cap, the *oldest* shard is shed (counted in
    /// [`Orchestrator::mirror_shed`]) so memory stays flat and training
    /// runs on the most recent window.
    pub mirror_cap: usize,
    /// GILL algorithm knobs.
    pub gill: GillConfig,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            comp1_interval: Duration::from_secs(16 * 24 * 3600),
            comp2_interval: Duration::from_secs(365 * 24 * 3600),
            mirror_cap: 1_000_000,
            gill: GillConfig::default(),
        }
    }
}

/// What a refresh run recomputed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Refresh {
    /// Only component #1 reran (filters regenerated, anchors kept).
    Component1,
    /// Both components reran.
    Both,
}

/// The orchestrator state machine.
pub struct Orchestrator {
    cfg: OrchestratorConfig,
    mirror: Vec<BgpUpdate>,
    shed: u64,
    initial_ribs: HashMap<VpId, Rib>,
    vps: Vec<VpId>,
    categories: HashMap<Asn, AsCategory>,
    last_comp1: Option<Timestamp>,
    last_comp2: Option<Timestamp>,
    anchors: Vec<VpId>,
    filters: FilterSet,
}

impl Orchestrator {
    /// Creates an orchestrator for the given VP population.
    pub fn new(
        cfg: OrchestratorConfig,
        vps: Vec<VpId>,
        categories: HashMap<Asn, AsCategory>,
    ) -> Self {
        Orchestrator {
            cfg,
            mirror: Vec::new(),
            shed: 0,
            initial_ribs: HashMap::new(),
            vps,
            categories,
            last_comp1: None,
            last_comp2: None,
            anchors: Vec::new(),
            filters: FilterSet::default(),
        }
    }

    /// Supplies the RIB snapshot at mirror start (needed by component #2).
    pub fn set_initial_ribs(&mut self, ribs: HashMap<VpId, Rib>) {
        self.initial_ribs = ribs;
    }

    /// Mirrors a batch of (unfiltered) updates for the next training run.
    ///
    /// The mirror is bounded by [`OrchestratorConfig::mirror_cap`]: on
    /// overflow the oldest shard (at least 1/8 of the cap, so the `Vec`
    /// memmove amortizes) is dropped and counted in
    /// [`Orchestrator::mirror_shed`]. Training then runs on the most
    /// recent retained window.
    pub fn observe(&mut self, updates: impl IntoIterator<Item = BgpUpdate>) {
        let cap = self.cfg.mirror_cap.max(1);
        for u in updates {
            if self.mirror.len() >= cap {
                let chunk = (cap / 8).max(1).min(self.mirror.len());
                self.mirror.drain(..chunk);
                self.shed += chunk as u64;
            }
            self.mirror.push(u);
        }
    }

    /// Size of the temporary mirror.
    pub fn mirror_len(&self) -> usize {
        self.mirror.len()
    }

    /// Updates shed from the mirror because it hit the configured cap.
    pub fn mirror_shed(&self) -> u64 {
        self.shed
    }

    /// The currently installed filters.
    pub fn filters(&self) -> &FilterSet {
        &self.filters
    }

    /// The current anchor list (published on bgproutes.io per §9).
    pub fn anchors(&self) -> &[VpId] {
        &self.anchors
    }

    /// Checks the schedule at (simulated) time `now` and retrains if due.
    /// Returns what was refreshed, if anything. The mirror is dropped
    /// after a successful run.
    pub fn maybe_refresh(&mut self, now: Timestamp) -> Option<Refresh> {
        let comp1_due = match self.last_comp1 {
            None => true,
            Some(t) => now - t >= self.cfg.comp1_interval,
        };
        if !comp1_due {
            return None;
        }
        let comp2_due = match self.last_comp2 {
            None => true,
            Some(t) => now - t >= self.cfg.comp2_interval,
        };
        Some(self.refresh(now, comp2_due))
    }

    /// Forces a retraining run (e.g. to "accommodate bursts of new peering
    /// sessions ... when the platform bootstraps", §7).
    pub fn force_refresh(&mut self, now: Timestamp, both: bool) -> Refresh {
        self.refresh(now, both)
    }

    fn refresh(&mut self, now: Timestamp, run_comp2: bool) -> Refresh {
        self.mirror.sort_by_key(|u| (u.time, u.vp, u.prefix));
        let analysis = GillAnalysis::run_on(
            &self.mirror,
            &self.initial_ribs,
            &self.vps,
            &self.categories,
            &self.cfg.gill,
        );
        self.last_comp1 = Some(now);
        let kind = if run_comp2 {
            self.anchors = analysis.component2.anchors.clone();
            self.last_comp2 = Some(now);
            Refresh::Both
        } else {
            Refresh::Component1
        };
        // regenerate filters: redundant updates from this run's component
        // #1, anchor accept-alls from the latest component-#2 run
        let redundant: Vec<&BgpUpdate> = self
            .mirror
            .iter()
            .zip(&analysis.component1.redundant)
            .filter_map(|(u, &r)| r.then_some(u))
            .collect();
        self.filters = FilterSet::generate(
            self.anchors.iter().copied(),
            redundant,
            self.cfg.gill.granularity,
        );
        // drop the mirror (the §8 out-of-band scheme keeps data only
        // transiently)
        self.mirror.clear();
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::TopologyBuilder;
    use bgp_sim::{Simulator, StreamConfig};
    use gill_core::AnchorConfig;

    fn small_cfg() -> OrchestratorConfig {
        OrchestratorConfig {
            gill: GillConfig {
                anchor: AnchorConfig {
                    events_per_cell: 2,
                    ..AnchorConfig::default()
                },
                ..GillConfig::default()
            },
            ..OrchestratorConfig::default()
        }
    }

    #[test]
    fn first_refresh_runs_both_components() {
        let topo = TopologyBuilder::artificial(100, 5).build();
        let cats: HashMap<Asn, AsCategory> = {
            let c = as_topology::categories::classify(&topo);
            (0..topo.num_ases() as u32)
                .map(|u| (topo.asn(u), c[u as usize]))
                .collect()
        };
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.3, 1);
        let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(25).seed(1));
        let mut orch = Orchestrator::new(small_cfg(), stream.vps.clone(), cats);
        orch.set_initial_ribs(stream.initial_ribs.clone());
        orch.observe(stream.updates.iter().cloned());
        assert!(orch.mirror_len() > 0);
        let r = orch.maybe_refresh(Timestamp::from_secs(3600));
        assert_eq!(r, Some(Refresh::Both));
        assert!(!orch.anchors().is_empty());
        assert_eq!(orch.mirror_len(), 0, "mirror must be dropped");
        assert!(orch.filters().num_rules() > 0 || !orch.anchors().is_empty());
    }

    #[test]
    fn comp1_refreshes_every_16_days_comp2_yearly() {
        let topo = TopologyBuilder::artificial(80, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.3, 1);
        let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(15).seed(2));
        let mut orch = Orchestrator::new(small_cfg(), stream.vps.clone(), HashMap::new());
        orch.set_initial_ribs(stream.initial_ribs.clone());
        orch.observe(stream.updates.iter().cloned());
        let day = 24 * 3600;
        assert_eq!(
            orch.maybe_refresh(Timestamp::from_secs(0)),
            Some(Refresh::Both)
        );
        // a day later: nothing is due
        orch.observe(stream.updates.iter().cloned());
        assert_eq!(orch.maybe_refresh(Timestamp::from_secs(day)), None);
        // 16 days later: component 1 only
        assert_eq!(
            orch.maybe_refresh(Timestamp::from_secs(16 * day)),
            Some(Refresh::Component1)
        );
        // a year later: both again
        orch.observe(stream.updates.iter().cloned());
        assert_eq!(
            orch.maybe_refresh(Timestamp::from_secs(366 * day)),
            Some(Refresh::Both)
        );
    }

    #[test]
    fn mirror_cap_keeps_memory_flat_and_still_retrains() {
        let topo = TopologyBuilder::artificial(60, 5).build();
        let mut sim = Simulator::new(&topo);
        let vps = topo.pick_vps(0.3, 1);
        let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(15).seed(7));
        let cap = 1_000usize;
        let mut cfg = small_cfg();
        cfg.mirror_cap = cap;
        let mut orch = Orchestrator::new(cfg, stream.vps.clone(), HashMap::new());
        orch.set_initial_ribs(stream.initial_ribs.clone());
        // overflow the mirror 10x over and verify memory stays flat
        let mut fed = 0usize;
        let mut peak_len = 0usize;
        let mut peak_capacity = 0usize;
        while fed < 10 * cap {
            orch.observe(stream.updates.iter().cloned());
            fed += stream.updates.len();
            peak_len = peak_len.max(orch.mirror_len());
            peak_capacity = peak_capacity.max(orch.mirror.capacity());
        }
        assert!(peak_len <= cap, "mirror length never exceeds the cap");
        assert!(
            peak_capacity <= 2 * cap,
            "mirror allocation stays flat under 10x overflow (capacity {peak_capacity})"
        );
        assert_eq!(
            orch.mirror_shed() as usize,
            fed - orch.mirror_len(),
            "every shed update is accounted"
        );
        // the retained window still trains
        let r = orch.maybe_refresh(Timestamp::from_secs(3600));
        assert_eq!(r, Some(Refresh::Both));
        assert_eq!(orch.mirror_len(), 0, "mirror dropped after the run");
    }

    #[test]
    fn force_refresh_ignores_schedule() {
        let mut orch = Orchestrator::new(small_cfg(), Vec::new(), HashMap::new());
        assert_eq!(
            orch.force_refresh(Timestamp::ZERO, false),
            Refresh::Component1
        );
        assert_eq!(orch.force_refresh(Timestamp::ZERO, true), Refresh::Both);
    }
}
