//! GILL's collection platform (§8–§9, Fig. 9).
//!
//! * [`daemon`] — the per-peer BGP daemon: real RFC 4271 sessions over
//!   TCP, filter application, bounded storage queue with loss accounting
//!   (the Table-1 measurement hook).
//! * [`peer`] — fake peers that establish sessions and send paced update
//!   streams (the §8 load-test harness).
//! * [`storage`] — storage backends: in-memory, MRT archive (the format
//!   published at bgproutes.io), and a cost-injecting wrapper.
//! * [`orchestrator`] — periodic retraining of components #1/#2 and filter
//!   refresh, with the temporary mirroring scheme of Fig. 9.
//! * [`validator`] — §14's update-validity checks (session consistency,
//!   protocol sanity, bogons, forged-origin quarantine).
//! * [`forwarding`] — §14's operator services: forward selected updates to
//!   subscribers before the discard stage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod forwarding;
pub mod orchestrator;
pub mod peer;
pub mod storage;
pub mod validator;

pub use daemon::{
    handshake_client, handshake_server, run_session, DaemonConfig, DaemonPool, DaemonStats,
    MessageStream,
};
pub use forwarding::{ForwardRule, Forwarder, Subscription};
pub use orchestrator::{Orchestrator, OrchestratorConfig, Refresh};
pub use peer::{run_fake_peer, synthetic_updates, FakePeerConfig};
pub use storage::{received, MemoryStorage, MrtStorage, SlowStorage, Storage, StoredUpdate};
pub use validator::{is_bogon, UpdateValidator, Verdict, Violation};
