//! GILL's collection platform (§8–§9, Fig. 9).
//!
//! * [`daemon`] — the per-peer BGP daemon: real RFC 4271 sessions over
//!   TCP, filter application, bounded storage queue with loss accounting
//!   (the Table-1 measurement hook).
//! * [`peer`] — fake peers that establish sessions and send paced update
//!   streams (the §8 load-test harness).
//! * [`storage`] — storage backends: in-memory, MRT archive (the format
//!   published at bgproutes.io), and a cost-injecting wrapper.
//! * [`orchestrator`] — periodic retraining of components #1/#2 and filter
//!   refresh, with the temporary mirroring scheme of Fig. 9.
//! * [`validator`] — §14's update-validity checks (session consistency,
//!   protocol sanity, bogons, forged-origin quarantine).
//! * [`forwarding`] — §14's operator services: forward selected updates to
//!   subscribers before the discard stage.
//! * [`transport`] — pluggable byte transports (TCP or the in-process
//!   fault-injecting simulator) and clocks (system or virtual).
//! * [`fsm`] — the sans-I/O RFC 4271 session state machine (hold timer,
//!   keepalive generation, NOTIFICATION-on-error).
//! * [`harness`] — the deterministic session harness: whole failure
//!   scenarios (faults, reconnects, backoff) replay bit-identically from
//!   a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod forwarding;
pub mod fsm;
pub mod harness;
pub mod orchestrator;
pub mod peer;
pub mod storage;
pub mod transport;
pub mod validator;

pub use daemon::{
    handshake_client, handshake_server, run_session_with, DaemonConfig, DaemonPool, DaemonStats,
    EstablishedSession, MessageStream, SessionCtx, UpdateSink, EPOCH_SLOTS,
};
pub use forwarding::{ForwardRule, Forwarder, Subscription};
pub use fsm::{CloseReason, SessionConfig, SessionEvent, SessionFsm, SessionRole, SessionState};
pub use harness::{run_scenario, Scenario, ScenarioOutcome, Side, Transcript, TranscriptEntry};
pub use orchestrator::{Orchestrator, OrchestratorConfig, Refresh};
pub use peer::{
    run_fake_peer, run_resilient_peer, synthetic_updates, FakePeerConfig, ResilientPeerReport,
};
pub use storage::{received, MemoryStorage, MrtStorage, SlowStorage, Storage, StoredUpdate};
pub use transport::{
    sim_pair, BackoffPolicy, Clock, Fault, FaultAction, FaultSchedule, SimTransport, SystemClock,
    Transport, VirtualClock,
};
pub use validator::{is_bogon, UpdateValidator, Verdict, Violation};
