//! Deterministic session harness: replays an entire BGP session —
//! handshake, UPDATE flow, keepalives, faults, NOTIFICATION exchange,
//! reconnect with backoff — single-threaded over [`sim_pair`] and a
//! [`VirtualClock`], so a failure scenario is fully described by a
//! [`Scenario`] value and replays **bit-identically** from it.
//!
//! The harness steps virtual time in fixed increments. At every step it
//! pumps bytes between the two [`SessionFsm`]s through the faulted link,
//! ticks both FSMs, and appends every observable protocol event to a
//! [`Transcript`]. Two runs of the same scenario produce transcripts with
//! the same [`Transcript::digest`]; a failing seed therefore reproduces
//! from nothing but the `Scenario` literal (see DESIGN.md §"Reproducing a
//! failing seed").

use crate::fsm::{SessionConfig, SessionEvent, SessionFsm, SessionRole};
use crate::transport::{sim_pair, BackoffPolicy, Clock, FaultSchedule, Transport, VirtualClock};
use bgp_wire::UpdateMessage;
use std::io;

/// A complete, self-describing failure scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Seed for the reconnect backoff jitter.
    pub seed: u64,
    /// Passive (collector) side session parameters.
    pub server: SessionConfig,
    /// Active (peer) side session parameters.
    pub client: SessionConfig,
    /// UPDATEs the client sends once established, in order. On reconnect
    /// the client resends the full script (the collector pipeline is
    /// idempotent under replay — redundancy analysis dedups).
    pub updates: Vec<UpdateMessage>,
    /// Virtual ms between consecutive UPDATE sends.
    pub send_interval_ms: u64,
    /// Per-connection-attempt fault schedules for client→server bytes.
    /// Attempts beyond the list run fault-free.
    pub client_faults: Vec<FaultSchedule>,
    /// Per-attempt schedules for server→client bytes.
    pub server_faults: Vec<FaultSchedule>,
    /// Connection attempts before giving up (1 = no reconnect).
    pub max_attempts: u32,
    /// Virtual time step per harness iteration.
    pub step_ms: u64,
    /// Abort guard: give up when a single attempt exceeds this much
    /// virtual time.
    pub attempt_budget_ms: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            seed: 0,
            server: SessionConfig::default(),
            client: SessionConfig {
                local_asn: 65001,
                ..SessionConfig::default()
            },
            updates: Vec::new(),
            send_interval_ms: 50,
            client_faults: Vec::new(),
            server_faults: Vec::new(),
            max_attempts: 1,
            step_ms: 100,
            attempt_budget_ms: 600_000,
        }
    }
}

/// Which endpoint a transcript entry belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The passive collector side.
    Server,
    /// The active peer side.
    Client,
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Server => write!(f, "server"),
            Side::Client => write!(f, "client"),
        }
    }
}

/// One observable event, stamped with virtual time and attempt number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// Virtual instant of the event.
    pub at_ms: u64,
    /// Connection attempt (0-based).
    pub attempt: u32,
    /// Which endpoint observed it.
    pub side: Side,
    /// Stable textual rendering of the event.
    pub line: String,
}

/// The ordered event log of a scenario run.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    entries: Vec<TranscriptEntry>,
}

impl Transcript {
    /// All entries, in order.
    pub fn entries(&self) -> &[TranscriptEntry] {
        &self.entries
    }

    /// Renders every entry as `t=MS a=N side line`.
    pub fn lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| format!("t={} a={} {} {}", e.at_ms, e.attempt, e.side, e.line))
            .collect()
    }

    /// FNV-1a digest over the rendered lines. Equal digests mean the two
    /// runs were observationally identical, bit for bit.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in self.lines() {
            for b in line.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            h ^= u64::from(b'\n');
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    /// Appends one entry (public for alternative drivers building
    /// digest-comparable transcripts, e.g. the evented runtime tests).
    pub fn record(&mut self, at_ms: u64, attempt: u32, side: Side, line: String) {
        self.push(at_ms, attempt, side, line);
    }

    fn push(&mut self, at_ms: u64, attempt: u32, side: Side, line: String) {
        self.entries.push(TranscriptEntry {
            at_ms,
            attempt,
            side,
            line,
        });
    }
}

/// Canonical textual rendering of a session event — the vocabulary of
/// transcript lines. Public so alternative drivers of the same FSMs
/// (e.g. the evented runtime's conformance tests) can produce
/// digest-comparable transcripts.
pub fn render_event(event: &SessionEvent) -> String {
    render(event)
}

fn render(event: &SessionEvent) -> String {
    match event {
        SessionEvent::Established {
            peer,
            hold_time,
            families,
            add_paths,
        } => {
            let mut line = format!("established peer={peer} hold={hold_time}");
            for fam in families.iter() {
                line.push_str(&format!(" mp={fam}"));
            }
            for fam in add_paths.iter() {
                line.push_str(&format!(" add-path={fam}"));
            }
            line
        }
        SessionEvent::Update(u) => format!(
            "update announce={} withdraw={}",
            u.announced.len(),
            u.withdrawn.len()
        ),
        SessionEvent::KeepaliveReceived => "keepalive-rx".to_string(),
        SessionEvent::KeepaliveSent => "keepalive-tx".to_string(),
        SessionEvent::NotificationSent { code, subcode } => {
            format!("notification-tx code={code} sub={subcode}")
        }
        SessionEvent::Closed(reason) => format!("closed reason={reason:?}"),
    }
}

/// What a scenario run produced.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The full event log (digest it to assert replay identity).
    pub transcript: Transcript,
    /// UPDATEs the server actually received, across all attempts.
    pub delivered: Vec<UpdateMessage>,
    /// Connection attempts made.
    pub attempts: u32,
    /// How many attempts reached Established.
    pub established_count: u32,
    /// True when the final attempt delivered the whole script.
    pub completed: bool,
    /// Virtual time consumed.
    pub elapsed_ms: u64,
}

/// One endpoint under harness control: an FSM plus its transport.
struct Endpoint {
    fsm: SessionFsm,
    transport: SimTransportBox,
    side: Side,
    eof_seen: bool,
}

type SimTransportBox = Box<dyn Transport>;

impl Endpoint {
    /// Flushes FSM output to the link and feeds link bytes to the FSM.
    /// Write failures (severed link) are surfaced as EOF — from the
    /// session's perspective the connection is gone either way.
    fn pump(&mut self, now: u64) {
        while self.fsm.has_output() {
            let out = self.fsm.take_output();
            if self.transport.write_all(&out).is_err() {
                if !self.eof_seen {
                    self.eof_seen = true;
                    self.fsm.handle_eof(now);
                }
                return;
            }
        }
        let mut buf = [0u8; 4096];
        loop {
            match self.transport.read(&mut buf) {
                Ok(0) => {
                    if !self.eof_seen {
                        self.eof_seen = true;
                        self.fsm.handle_eof(now);
                    }
                    return;
                }
                Ok(n) => self.fsm.handle_bytes(&buf[..n], now),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    if !self.eof_seen {
                        self.eof_seen = true;
                        self.fsm.handle_eof(now);
                    }
                    return;
                }
            }
        }
    }

    fn drain_into(
        &mut self,
        transcript: &mut Transcript,
        now: u64,
        attempt: u32,
    ) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        while let Some(e) = self.fsm.poll_event() {
            transcript.push(now, attempt, self.side, render(&e));
            events.push(e);
        }
        events
    }
}

/// Runs `scenario` to completion and returns the outcome. Deterministic:
/// equal scenarios yield equal [`Transcript::digest`]s.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let clock = VirtualClock::new();
    let backoff = BackoffPolicy {
        seed: scenario.seed,
        ..BackoffPolicy::default()
    };
    let mut transcript = Transcript::default();
    let mut delivered = Vec::new();
    let mut established_count = 0u32;
    let mut completed = false;
    let mut attempts = 0u32;

    while attempts < scenario.max_attempts.max(1) {
        let attempt = attempts;
        attempts += 1;
        if attempt > 0 {
            let delay = backoff.delay_ms(attempt - 1);
            clock.advance_ms(delay);
            transcript.push(
                clock.now_ms(),
                attempt,
                Side::Client,
                format!("reconnect backoff={delay}"),
            );
        }
        let c_faults = scenario
            .client_faults
            .get(attempt as usize)
            .cloned()
            .unwrap_or_else(FaultSchedule::none);
        let s_faults = scenario
            .server_faults
            .get(attempt as usize)
            .cloned()
            .unwrap_or_else(FaultSchedule::none);
        // endpoint A = client, so client→server bytes take `c_faults`
        let (ct, st) = sim_pair(&clock, c_faults, s_faults);
        let mut client = Endpoint {
            fsm: SessionFsm::new(SessionRole::Active, scenario.client),
            transport: Box::new(ct),
            side: Side::Client,
            eof_seen: false,
        };
        let mut server = Endpoint {
            fsm: SessionFsm::new(SessionRole::Passive, scenario.server),
            transport: Box::new(st),
            side: Side::Server,
            eof_seen: false,
        };
        let start = clock.now_ms();
        client.fsm.start(start);
        server.fsm.start(start);
        let mut next_send: Option<u64> = None;
        let mut sent = 0usize;
        let mut delivered_this_attempt = 0usize;
        let mut attempt_established = false;

        loop {
            let now = clock.now_ms();
            client.fsm.tick(now);
            server.fsm.tick(now);
            if let Some(due) = next_send {
                if now >= due && sent < scenario.updates.len() {
                    client.fsm.send_update(&scenario.updates[sent]);
                    sent += 1;
                    next_send = Some(now + scenario.send_interval_ms);
                }
            }
            // pump until the pair is quiescent at this instant
            loop {
                client.pump(now);
                server.pump(now);
                if !client.fsm.has_output() && !server.fsm.has_output() {
                    break;
                }
            }
            for e in client.drain_into(&mut transcript, now, attempt) {
                if let SessionEvent::Established { .. } = e {
                    attempt_established = true;
                    established_count += 1;
                    next_send = Some(now);
                }
            }
            for e in server.drain_into(&mut transcript, now, attempt) {
                if let SessionEvent::Update(u) = e {
                    delivered.push(u);
                    delivered_this_attempt += 1;
                }
            }
            let script_done = attempt_established
                && sent == scenario.updates.len()
                && delivered_this_attempt == scenario.updates.len();
            if script_done && !client.fsm.is_closed() {
                // graceful shutdown: cease NOTIFICATION, pump it across
                client.fsm.close_gracefully();
                continue;
            }
            if client.fsm.is_closed() && server.fsm.is_closed() {
                break;
            }
            if now - start > scenario.attempt_budget_ms {
                transcript.push(
                    now,
                    attempt,
                    Side::Server,
                    "attempt-budget-exhausted".into(),
                );
                break;
            }
            clock.advance_ms(scenario.step_ms);
        }
        if delivered_this_attempt == scenario.updates.len() && attempt_established {
            completed = true;
            break;
        }
    }

    ScenarioOutcome {
        transcript,
        delivered,
        attempts,
        established_count,
        completed,
        elapsed_ms: clock.now_ms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Prefix;

    fn updates(n: u32) -> Vec<UpdateMessage> {
        (0..n)
            .map(|i| UpdateMessage::withdraw(Prefix::synthetic(i)))
            .collect()
    }

    fn short_sessions(s: &mut Scenario, hold: u16) {
        s.server.hold_time = hold;
        s.client.hold_time = hold;
    }

    #[test]
    fn clean_scenario_delivers_everything_first_attempt() {
        let mut s = Scenario {
            updates: updates(5),
            ..Scenario::default()
        };
        short_sessions(&mut s, 30);
        let out = run_scenario(&s);
        assert!(out.completed);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.delivered.len(), 5);
        assert_eq!(out.established_count, 1);
    }

    #[test]
    fn identical_scenarios_replay_bit_identically() {
        let mut s = Scenario {
            seed: 42,
            updates: updates(8),
            client_faults: vec![FaultSchedule::parse("stall@200").unwrap()],
            max_attempts: 3,
            ..Scenario::default()
        };
        short_sessions(&mut s, 5);
        let digests: Vec<u64> = (0..3)
            .map(|_| run_scenario(&s).transcript.digest())
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn sever_mid_handshake_triggers_reconnect() {
        let mut s = Scenario {
            seed: 7,
            updates: updates(3),
            // client's OPEN is 37 bytes; cut it off mid-frame
            client_faults: vec![FaultSchedule::parse("sever@20").unwrap()],
            max_attempts: 2,
            ..Scenario::default()
        };
        short_sessions(&mut s, 10);
        let out = run_scenario(&s);
        assert!(out.completed, "second attempt should succeed");
        assert_eq!(out.attempts, 2);
        assert!(out
            .transcript
            .lines()
            .iter()
            .any(|l| l.contains("PeerClosedMidMessage")));
        assert!(out
            .transcript
            .lines()
            .iter()
            .any(|l| l.contains("reconnect")));
    }

    #[test]
    fn different_seeds_change_backoff_but_not_delivery() {
        let mk = |seed| {
            let mut s = Scenario {
                seed,
                updates: updates(2),
                client_faults: vec![FaultSchedule::parse("sever@10").unwrap()],
                max_attempts: 2,
                ..Scenario::default()
            };
            short_sessions(&mut s, 10);
            run_scenario(&s)
        };
        let a = mk(1);
        let b = mk(2);
        assert!(a.completed && b.completed);
        assert_ne!(
            a.transcript.digest(),
            b.transcript.digest(),
            "backoff jitter should differ between seeds"
        );
        assert_eq!(a.delivered.len(), b.delivered.len());
    }
}
