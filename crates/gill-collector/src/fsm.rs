//! A sans-I/O BGP session finite state machine (RFC 4271 §8, simplified
//! to the states this collector actually traverses).
//!
//! The FSM owns *protocol* state only — what to send, what a received
//! byte sequence means, when timers fire — and never touches a socket or
//! a wall clock. Drivers feed it three inputs:
//!
//! * [`SessionFsm::handle_bytes`] — bytes that arrived on the transport,
//! * [`SessionFsm::handle_eof`] — the transport closed,
//! * [`SessionFsm::tick`] — time passed (hold timer, keepalive timer),
//!
//! and consume two outputs: [`SessionFsm::take_output`] (bytes to write)
//! and [`SessionFsm::poll_event`] (decoded protocol events). Because all
//! inputs are explicit, an entire session — including hold-timer expiry
//! and NOTIFICATION exchange — replays bit-identically under the
//! [`crate::transport::VirtualClock`].
//!
//! State graph (`Passive` accepts, `Active` initiates; both collapse to
//! the same OpenConfirm → Established tail):
//!
//! ```text
//! Idle --start(Active)--> OpenSent    --OPEN--> OpenConfirm --KEEPALIVE--> Established
//! Idle --start(Passive)-> AwaitOpen --OPEN--> OpenConfirm --KEEPALIVE--> Established
//! any state --NOTIFICATION | EOF | decode error | hold expiry--> Closed
//! ```

use bgp_types::{FamilySet, VpId};
use bgp_wire::{BgpMessage, DecodeCtx, Notification, OpenMessage, UpdateMessage, WireError};
use bytes::BytesMut;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// Which side of the TCP connection this FSM plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionRole {
    /// Initiates: sends OPEN immediately (fake peers, outbound sessions).
    Active,
    /// Accepts: waits for the peer's OPEN before answering (the daemon).
    Passive,
}

/// The session states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Created, not started.
    Idle,
    /// Passive side waiting for the peer's OPEN.
    AwaitOpen,
    /// Active side sent its OPEN, waiting for the peer's.
    OpenSent,
    /// OPEN exchanged, waiting for the confirming KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
    /// Session over (see the final [`SessionEvent::Closed`]).
    Closed,
}

/// Static session parameters.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Our AS number for the OPEN.
    pub local_asn: u32,
    /// Hold time we propose (seconds; 0 disables timers).
    pub hold_time: u16,
    /// Our router id.
    pub router_id: Ipv4Addr,
    /// Families to advertise in RFC 4760 Multiprotocol capabilities.
    /// Empty keeps the OPEN legacy (implicit v4 unicast, no capability).
    pub families: FamilySet,
    /// Families for which to offer RFC 7911 ADD-PATH (send+receive).
    /// Only honored for families also in `families`.
    pub add_paths: FamilySet,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            local_asn: 65535,
            hold_time: 240,
            router_id: Ipv4Addr::new(10, 255, 0, 254),
            families: FamilySet::EMPTY,
            add_paths: FamilySet::EMPTY,
        }
    }
}

/// Why a session ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer closed cleanly at a message boundary.
    PeerClosed,
    /// Peer closed mid-frame (abrupt disconnect / truncation).
    PeerClosedMidMessage,
    /// Peer sent a NOTIFICATION.
    NotificationReceived {
        /// RFC 4271 §6 error code.
        code: u8,
        /// Error subcode.
        subcode: u8,
    },
    /// Our hold timer expired (we sent NOTIFICATION code 4).
    HoldTimerExpired,
    /// The byte stream failed to decode (we sent the classifying
    /// NOTIFICATION).
    DecodeError(WireError),
    /// A message arrived in a state that cannot accept it (we sent
    /// NOTIFICATION code 5, or code 2 subcode 6 for a bad hold time).
    ProtocolError(&'static str),
}

/// Protocol events a driver consumes. `KeepaliveSent` / `NotificationSent`
/// fire when the FSM *queues* those messages, so a transcript of events is
/// a complete, replayable record of the session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionEvent {
    /// The handshake completed.
    Established {
        /// Peer identity from its OPEN.
        peer: VpId,
        /// Negotiated hold time (min of both proposals), seconds.
        hold_time: u16,
        /// Multiprotocol families both sides advertised (empty on a
        /// legacy session, which carries v4 unicast implicitly).
        families: FamilySet,
        /// Families for which both sides offered ADD-PATH; NLRI in these
        /// families carries RFC 7911 path identifiers.
        add_paths: FamilySet,
    },
    /// An UPDATE arrived.
    Update(UpdateMessage),
    /// A KEEPALIVE arrived (hold timer was refreshed).
    KeepaliveReceived,
    /// The FSM queued a KEEPALIVE.
    KeepaliveSent,
    /// The FSM queued a NOTIFICATION.
    NotificationSent {
        /// Error code.
        code: u8,
        /// Error subcode.
        subcode: u8,
    },
    /// The session ended; no further events follow.
    Closed(CloseReason),
}

/// The state machine. See the module docs for the driving contract.
pub struct SessionFsm {
    role: SessionRole,
    cfg: SessionConfig,
    state: SessionState,
    buf: BytesMut,
    out: BytesMut,
    events: VecDeque<SessionEvent>,
    peer: Option<VpId>,
    /// True once the session reached Established, even if it has since
    /// closed (a fast peer can handshake, send UPDATEs and close within
    /// one read).
    reached_established: bool,
    /// Negotiated hold time in ms (0 = timers disabled).
    hold_ms: u64,
    hold_deadline: Option<u64>,
    keepalive_due: Option<u64>,
    /// Multiprotocol families both OPENs advertised.
    families: FamilySet,
    /// Families with ADD-PATH negotiated; mirrored into `ctx`.
    add_paths: FamilySet,
    /// Decode context for UPDATEs on this session.
    ctx: DecodeCtx,
}

impl SessionFsm {
    /// A new, unstarted FSM.
    pub fn new(role: SessionRole, cfg: SessionConfig) -> Self {
        SessionFsm {
            role,
            cfg,
            state: SessionState::Idle,
            buf: BytesMut::new(),
            out: BytesMut::new(),
            events: VecDeque::new(),
            peer: None,
            reached_established: false,
            hold_ms: 0,
            hold_deadline: None,
            keepalive_due: None,
            families: FamilySet::EMPTY,
            add_paths: FamilySet::EMPTY,
            ctx: DecodeCtx::default(),
        }
    }

    /// Starts the session at virtual instant `now_ms`. Active FSMs queue
    /// their OPEN; passive FSMs wait for the peer's. Until negotiation the
    /// *proposed* hold time bounds how long we wait for the handshake.
    pub fn start(&mut self, now_ms: u64) {
        debug_assert_eq!(self.state, SessionState::Idle);
        self.state = match self.role {
            SessionRole::Active => {
                self.queue(&BgpMessage::Open(self.local_open()));
                SessionState::OpenSent
            }
            SessionRole::Passive => SessionState::AwaitOpen,
        };
        if self.cfg.hold_time > 0 {
            self.hold_deadline = Some(now_ms + u64::from(self.cfg.hold_time) * 1000);
        }
    }

    fn local_open(&self) -> OpenMessage {
        OpenMessage::new(
            bgp_types::Asn(self.cfg.local_asn),
            self.cfg.hold_time,
            self.cfg.router_id,
        )
        .with_families(self.cfg.families.iter())
        .with_add_paths(self.cfg.add_paths.intersect(self.cfg.families).iter())
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Peer identity once its OPEN has been seen.
    pub fn peer(&self) -> Option<VpId> {
        self.peer
    }

    /// Negotiated hold time in milliseconds (0 until negotiated or when
    /// timers are disabled).
    pub fn hold_ms(&self) -> u64 {
        self.hold_ms
    }

    /// Multiprotocol families both sides advertised (empty until the
    /// peer's OPEN is seen, and on legacy v4-only sessions).
    pub fn families(&self) -> FamilySet {
        self.families
    }

    /// Families with ADD-PATH negotiated in both directions.
    pub fn add_paths(&self) -> FamilySet {
        self.add_paths
    }

    /// The UPDATE decode context this session negotiated.
    pub fn decode_ctx(&self) -> &DecodeCtx {
        &self.ctx
    }

    /// True once the session reached [`SessionState::Closed`].
    pub fn is_closed(&self) -> bool {
        self.state == SessionState::Closed
    }

    /// True once the session has reached [`SessionState::Established`] at
    /// any point — it may have closed again since, with the close reason
    /// (and any UPDATEs received in between) still queued as events.
    pub fn reached_established(&self) -> bool {
        self.reached_established
    }

    /// Bytes the driver must write to the transport (drained).
    pub fn take_output(&mut self) -> Vec<u8> {
        let len = self.out.len();
        self.out.split_to(len).to_vec()
    }

    /// True when [`SessionFsm::take_output`] would return bytes.
    pub fn has_output(&self) -> bool {
        !self.out.is_empty()
    }

    /// The next pending event, if any.
    pub fn poll_event(&mut self) -> Option<SessionEvent> {
        self.events.pop_front()
    }

    /// The earliest virtual instant at which [`SessionFsm::tick`] would
    /// act (hold expiry or keepalive emission). `None` when no timer is
    /// armed.
    pub fn next_deadline_ms(&self) -> Option<u64> {
        match (self.hold_deadline, self.keepalive_due) {
            (Some(h), Some(k)) => Some(h.min(k)),
            (Some(h), None) => Some(h),
            (None, Some(k)) => Some(k),
            (None, None) => None,
        }
    }

    /// Leftover undecoded bytes (useful when a driver hands the stream
    /// over to manual framing after the handshake).
    pub fn take_residual(&mut self) -> BytesMut {
        let len = self.buf.len();
        self.buf.split_to(len)
    }

    /// Enqueues an UPDATE for sending. Only valid once established (the
    /// FSM silently drops it otherwise — the session is gone anyway).
    pub fn send_update(&mut self, u: &UpdateMessage) {
        if self.state == SessionState::Established {
            self.queue(&BgpMessage::Update(u.clone()));
        }
    }

    /// Queues a Cease NOTIFICATION and closes (graceful local shutdown).
    pub fn close_gracefully(&mut self) {
        if self.state != SessionState::Closed {
            self.send_notification(Notification::cease());
            self.close(CloseReason::PeerClosed);
        }
    }

    /// Feeds received bytes at virtual instant `now_ms`.
    pub fn handle_bytes(&mut self, data: &[u8], now_ms: u64) {
        if self.state == SessionState::Closed {
            return;
        }
        self.buf.extend_from_slice(data);
        loop {
            if self.state == SessionState::Closed {
                return;
            }
            match BgpMessage::decode_ctx(&mut self.buf, &self.ctx) {
                Ok(Some(msg)) => self.handle_message(msg, now_ms),
                Ok(None) => return,
                Err(e) => {
                    self.send_notification(Notification::for_wire_error(&e));
                    self.close(CloseReason::DecodeError(e));
                    return;
                }
            }
        }
    }

    /// The transport reported EOF.
    pub fn handle_eof(&mut self, _now_ms: u64) {
        if self.state == SessionState::Closed {
            return;
        }
        if self.buf.is_empty() {
            self.close(CloseReason::PeerClosed);
        } else {
            self.close(CloseReason::PeerClosedMidMessage);
        }
    }

    /// Advances timers to virtual instant `now_ms`: expires the hold
    /// timer (NOTIFICATION code 4 + close) or emits a due KEEPALIVE.
    pub fn tick(&mut self, now_ms: u64) {
        if self.state == SessionState::Closed {
            return;
        }
        if let Some(deadline) = self.hold_deadline {
            if now_ms >= deadline {
                self.send_notification(Notification::hold_timer_expired());
                self.close(CloseReason::HoldTimerExpired);
                return;
            }
        }
        if self.state == SessionState::Established {
            if let Some(due) = self.keepalive_due {
                if now_ms >= due {
                    self.queue(&BgpMessage::Keepalive);
                    self.events.push_back(SessionEvent::KeepaliveSent);
                    self.keepalive_due = Some(now_ms + self.keepalive_interval_ms());
                }
            }
        }
    }

    fn keepalive_interval_ms(&self) -> u64 {
        // RFC 4271 suggests one third of the hold time
        (self.hold_ms / 3).max(1)
    }

    fn handle_message(&mut self, msg: BgpMessage, now_ms: u64) {
        // any complete, well-formed message refreshes the hold timer
        if self.hold_deadline.is_some() && self.hold_ms > 0 {
            self.hold_deadline = Some(now_ms + self.hold_ms);
        }
        match (self.state, msg) {
            (SessionState::AwaitOpen, BgpMessage::Open(open)) => {
                if !self.negotiate(&open, now_ms) {
                    return;
                }
                self.queue(&BgpMessage::Open(self.local_open()));
                self.queue(&BgpMessage::Keepalive);
                self.events.push_back(SessionEvent::KeepaliveSent);
                self.state = SessionState::OpenConfirm;
            }
            (SessionState::OpenSent, BgpMessage::Open(open)) => {
                if !self.negotiate(&open, now_ms) {
                    return;
                }
                self.queue(&BgpMessage::Keepalive);
                self.events.push_back(SessionEvent::KeepaliveSent);
                self.state = SessionState::OpenConfirm;
            }
            (SessionState::OpenConfirm, BgpMessage::Keepalive) => {
                self.state = SessionState::Established;
                self.reached_established = true;
                if self.hold_ms > 0 {
                    self.keepalive_due = Some(now_ms + self.keepalive_interval_ms());
                }
                self.events.push_back(SessionEvent::Established {
                    peer: self.peer.expect("peer set during negotiation"),
                    hold_time: (self.hold_ms / 1000) as u16,
                    families: self.families,
                    add_paths: self.add_paths,
                });
            }
            (SessionState::Established, BgpMessage::Update(u)) => {
                self.events.push_back(SessionEvent::Update(u));
            }
            (SessionState::Established, BgpMessage::Keepalive) => {
                self.events.push_back(SessionEvent::KeepaliveReceived);
            }
            (_, BgpMessage::Notification(n)) => {
                self.close(CloseReason::NotificationReceived {
                    code: n.code,
                    subcode: n.subcode,
                });
            }
            (SessionState::Established, BgpMessage::Open(_)) => {
                self.send_notification(Notification::cease());
                self.close(CloseReason::ProtocolError("OPEN while established"));
            }
            (_, _) => {
                self.send_notification(Notification::fsm_error());
                self.close(CloseReason::ProtocolError("message in wrong state"));
            }
        }
    }

    /// Validates the peer's OPEN and fixes the negotiated timers. Returns
    /// false (after closing) when the proposal is unacceptable.
    fn negotiate(&mut self, open: &OpenMessage, now_ms: u64) -> bool {
        // RFC 4271: hold time must be 0 or >= 3 seconds
        if open.hold_time == 1 || open.hold_time == 2 {
            self.send_notification(Notification::new(
                bgp_wire::error_code::OPEN,
                bgp_wire::error_code::open::UNACCEPTABLE_HOLD_TIME,
            ));
            self.close(CloseReason::ProtocolError("unacceptable hold time"));
            return false;
        }
        self.peer = Some(VpId::from_asn(open.asn));
        let hold = self.cfg.hold_time.min(open.hold_time);
        self.hold_ms = u64::from(hold) * 1000;
        self.hold_deadline = (self.hold_ms > 0).then(|| now_ms + self.hold_ms);
        // RFC 4760 / RFC 7911: a capability is in effect only when both
        // sides advertised it, so the negotiated sets are intersections.
        // No Multiprotocol capability from either side leaves the session
        // legacy (implicit v4 unicast) and the intersections empty.
        let peer_families: FamilySet = open.mp_families.iter().copied().collect();
        let peer_add_paths: FamilySet = open.add_paths.iter().copied().collect();
        self.families = self.cfg.families.intersect(peer_families);
        self.add_paths = self
            .cfg
            .add_paths
            .intersect(peer_add_paths)
            .intersect(self.families);
        self.ctx = DecodeCtx::from_families(self.add_paths.iter());
        true
    }

    fn queue(&mut self, msg: &BgpMessage) {
        // encoding of the messages the FSM itself builds cannot fail
        let bytes = msg.encode_to_vec().expect("FSM-built message encodes");
        self.out.extend_from_slice(&bytes);
    }

    fn send_notification(&mut self, n: Notification) {
        let (code, subcode) = (n.code, n.subcode);
        self.queue(&BgpMessage::Notification(n));
        self.events
            .push_back(SessionEvent::NotificationSent { code, subcode });
    }

    fn close(&mut self, reason: CloseReason) {
        self.state = SessionState::Closed;
        self.hold_deadline = None;
        self.keepalive_due = None;
        self.events.push_back(SessionEvent::Closed(reason));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Asn;

    fn pump(a: &mut SessionFsm, b: &mut SessionFsm, now: u64) {
        // cross-feed outputs until both sides are quiescent
        loop {
            let ab = a.take_output();
            let ba = b.take_output();
            if ab.is_empty() && ba.is_empty() {
                return;
            }
            if !ab.is_empty() {
                b.handle_bytes(&ab, now);
            }
            if !ba.is_empty() {
                a.handle_bytes(&ba, now);
            }
        }
    }

    fn drain(f: &mut SessionFsm) -> Vec<SessionEvent> {
        std::iter::from_fn(|| f.poll_event()).collect()
    }

    fn cfg(asn: u32, hold: u16) -> SessionConfig {
        SessionConfig {
            local_asn: asn,
            hold_time: hold,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn handshake_establishes_both_sides_and_negotiates_hold() {
        let mut client = SessionFsm::new(SessionRole::Active, cfg(65001, 90));
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 240));
        client.start(0);
        server.start(0);
        pump(&mut client, &mut server, 0);
        assert_eq!(client.state(), SessionState::Established);
        assert_eq!(server.state(), SessionState::Established);
        assert_eq!(server.peer(), Some(VpId::from_asn(Asn(65001))));
        assert_eq!(client.peer(), Some(VpId::from_asn(Asn(65535))));
        // negotiated hold = min(90, 240)
        assert_eq!(client.hold_ms(), 90_000);
        assert_eq!(server.hold_ms(), 90_000);
        assert!(drain(&mut server)
            .iter()
            .any(|e| matches!(e, SessionEvent::Established { hold_time: 90, .. })));
    }

    #[test]
    fn capability_negotiation_intersects_families_and_add_paths() {
        use bgp_types::AddressFamily;
        // client offers dual-stack with ADD-PATH on both; server offers
        // dual-stack with ADD-PATH only on v6
        let mut ccfg = cfg(65001, 90);
        ccfg.families = FamilySet::ALL;
        ccfg.add_paths = FamilySet::ALL;
        let mut scfg = cfg(65535, 240);
        scfg.families = FamilySet::ALL;
        scfg.add_paths = FamilySet::only(AddressFamily::Ipv6Unicast);
        let mut client = SessionFsm::new(SessionRole::Active, ccfg);
        let mut server = SessionFsm::new(SessionRole::Passive, scfg);
        client.start(0);
        server.start(0);
        pump(&mut client, &mut server, 0);
        for side in [&client, &server] {
            assert_eq!(side.state(), SessionState::Established);
            assert_eq!(side.families(), FamilySet::ALL);
            assert_eq!(
                side.add_paths(),
                FamilySet::only(AddressFamily::Ipv6Unicast)
            );
            assert!(!side.decode_ctx().addpath_v4);
            assert!(side.decode_ctx().addpath_v6);
        }
        assert!(drain(&mut server).iter().any(|e| matches!(
            e,
            SessionEvent::Established { families, add_paths, .. }
                if *families == FamilySet::ALL
                    && *add_paths == FamilySet::only(AddressFamily::Ipv6Unicast)
        )));

        // ADD-PATH UPDATEs now flow: a v6 announce with a path id survives
        // the session codec because both ends share the negotiated context
        let mut u = UpdateMessage::announce_v6(
            "2001:db8::/32".parse().unwrap(),
            bgp_types::AsPath::from_u32s([65001, 174]),
            std::net::Ipv6Addr::new(0x2001, 0xdb8, 0xffff, 0, 0, 0, 0, 9),
            vec![],
        );
        for n in &mut u.announced {
            n.path_id = Some(7);
        }
        client.send_update(&u);
        pump(&mut client, &mut server, 1);
        let evs = drain(&mut server);
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::Update(m) if *m == u)));
    }

    #[test]
    fn legacy_peer_yields_empty_negotiated_sets() {
        // dual-stack server, legacy client: the session falls back to
        // classic v4-only decoding
        let mut scfg = cfg(65535, 240);
        scfg.families = FamilySet::ALL;
        scfg.add_paths = FamilySet::ALL;
        let mut client = SessionFsm::new(SessionRole::Active, cfg(65001, 90));
        let mut server = SessionFsm::new(SessionRole::Passive, scfg);
        client.start(0);
        server.start(0);
        pump(&mut client, &mut server, 0);
        assert_eq!(server.state(), SessionState::Established);
        assert!(server.families().is_empty());
        assert!(server.add_paths().is_empty());
        assert!(!server.decode_ctx().addpath_v4);
        assert!(!server.decode_ctx().addpath_v6);
    }

    #[test]
    fn updates_flow_after_establishment() {
        let mut client = SessionFsm::new(SessionRole::Active, cfg(65001, 90));
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 240));
        client.start(0);
        server.start(0);
        pump(&mut client, &mut server, 0);
        drain(&mut client);
        drain(&mut server);
        let u = UpdateMessage::withdraw("10.0.0.0/8".parse().unwrap());
        client.send_update(&u);
        pump(&mut client, &mut server, 1);
        let evs = drain(&mut server);
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::Update(m) if *m == u)));
    }

    #[test]
    fn hold_timer_expires_with_notification_code_4() {
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 5));
        server.start(0);
        assert_eq!(server.next_deadline_ms(), Some(5_000));
        server.tick(4_999);
        assert!(!server.is_closed());
        server.tick(5_000);
        assert!(server.is_closed());
        let evs = drain(&mut server);
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::NotificationSent { code: 4, .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, SessionEvent::Closed(CloseReason::HoldTimerExpired))));
        assert!(server.has_output(), "the NOTIFICATION must be queued");
    }

    #[test]
    fn keepalives_are_generated_every_third_of_hold() {
        let mut client = SessionFsm::new(SessionRole::Active, cfg(65001, 9));
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 9));
        client.start(0);
        server.start(0);
        pump(&mut client, &mut server, 0);
        drain(&mut client);
        drain(&mut server);
        // 10 virtual seconds with exchanges: nobody expires
        for t in (0..10_000).step_by(500) {
            client.tick(t);
            server.tick(t);
            pump(&mut client, &mut server, t);
        }
        assert_eq!(client.state(), SessionState::Established);
        assert_eq!(server.state(), SessionState::Established);
        let sent = drain(&mut client)
            .iter()
            .filter(|e| matches!(e, SessionEvent::KeepaliveSent))
            .count();
        assert!(
            sent >= 3,
            "expected ≥3 keepalives in 10 s at hold 9 s, got {sent}"
        );
    }

    #[test]
    fn silence_after_establishment_expires_hold() {
        let mut client = SessionFsm::new(SessionRole::Active, cfg(65001, 6));
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 6));
        client.start(0);
        server.start(0);
        pump(&mut client, &mut server, 0);
        // server hears nothing for 6s (client ticks suppressed)
        server.tick(6_001);
        assert!(server.is_closed());
        assert!(drain(&mut server)
            .iter()
            .any(|e| matches!(e, SessionEvent::Closed(CloseReason::HoldTimerExpired))));
    }

    #[test]
    fn garbage_triggers_classified_notification() {
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 240));
        server.start(0);
        server.handle_bytes(b"GET / HTTP/1.1\r\nHost: not-bgp\r\n\r\n", 0);
        assert!(server.is_closed());
        let evs = drain(&mut server);
        assert!(evs.iter().any(|e| matches!(
            e,
            SessionEvent::NotificationSent {
                code: 1,
                subcode: 1
            }
        )));
        assert!(evs.iter().any(|e| matches!(
            e,
            SessionEvent::Closed(CloseReason::DecodeError(WireError::BadMarker))
        )));
    }

    #[test]
    fn eof_mid_message_is_distinguished_from_clean_close() {
        let mut a = SessionFsm::new(SessionRole::Passive, cfg(65535, 240));
        a.start(0);
        a.handle_eof(0);
        assert!(matches!(
            drain(&mut a).last(),
            Some(SessionEvent::Closed(CloseReason::PeerClosed))
        ));

        let mut b = SessionFsm::new(SessionRole::Passive, cfg(65535, 240));
        b.start(0);
        b.handle_bytes(&[0xff; 10], 0); // half a marker
        b.handle_eof(0);
        assert!(matches!(
            drain(&mut b).last(),
            Some(SessionEvent::Closed(CloseReason::PeerClosedMidMessage))
        ));
    }

    #[test]
    fn keepalive_before_open_is_an_fsm_error() {
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 240));
        server.start(0);
        server.handle_bytes(&BgpMessage::Keepalive.encode_to_vec().unwrap(), 0);
        assert!(server.is_closed());
        assert!(drain(&mut server)
            .iter()
            .any(|e| matches!(e, SessionEvent::NotificationSent { code: 5, .. })));
    }

    #[test]
    fn unacceptable_hold_time_is_rejected_with_open_error() {
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 240));
        server.start(0);
        let open = OpenMessage::new(Asn(65001), 2, Ipv4Addr::new(10, 0, 0, 1));
        server.handle_bytes(&BgpMessage::Open(open).encode_to_vec().unwrap(), 0);
        assert!(server.is_closed());
        assert!(drain(&mut server).iter().any(|e| matches!(
            e,
            SessionEvent::NotificationSent {
                code: 2,
                subcode: 6
            }
        )));
    }

    #[test]
    fn notification_closes_quietly() {
        let mut client = SessionFsm::new(SessionRole::Active, cfg(65001, 90));
        let mut server = SessionFsm::new(SessionRole::Passive, cfg(65535, 240));
        client.start(0);
        server.start(0);
        pump(&mut client, &mut server, 0);
        client.close_gracefully();
        pump(&mut client, &mut server, 1);
        assert!(server.is_closed());
        assert!(drain(&mut server).iter().any(|e| matches!(
            e,
            SessionEvent::Closed(CloseReason::NotificationReceived {
                code: 6,
                subcode: 2
            })
        )));
    }
}
