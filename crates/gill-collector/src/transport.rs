//! Pluggable byte transports for BGP sessions.
//!
//! The daemon historically drove [`std::net::TcpStream`] directly, which
//! made session-level faults (half-open peers, truncated frames, stalled
//! reads, reconnect storms) untestable without real sockets and wall-clock
//! sleeps. This module abstracts the byte stream behind [`Transport`]
//! (implemented by `TcpStream` and by the in-process [`SimTransport`]) and
//! abstracts time behind [`Clock`] (implemented by [`SystemClock`] and the
//! test-controlled [`VirtualClock`]), so every failure scenario replays
//! bit-identically from a seed.
//!
//! A [`SimTransport`] pair is wired through two directional channels, each
//! carrying a [`FaultSchedule`]: a sorted list of faults keyed by *byte
//! offset* in that direction's stream. The schedule grammar (also used by
//! [`FaultSchedule::parse`]) is:
//!
//! ```text
//! corrupt@OFF.BIT   flip bit BIT (0-7) of the byte at offset OFF
//! drop@OFF+N        silently discard N bytes starting at offset OFF
//! delay@OFF:MS      bytes from OFF onward become readable MS virtual ms later
//! sever@OFF         connection dies at OFF: earlier bytes deliver, then EOF
//! stall@OFF         delivery stops at OFF but the connection stays open
//! ```
//!
//! `sever` models an abrupt disconnect (and, placed mid-frame, a partial
//! write); `stall` models a half-open peer that keeps the socket up but
//! stops sending — exactly the case a hold timer exists for.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

/// A monotonic millisecond clock. Sessions only ever use *relative* time,
/// so implementations are free to start at zero.
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed since the clock's origin.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time since construction.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A deterministic clock that only moves when the test advances it.
/// Cloning yields a handle onto the same instant.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    ms: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// A bidirectional byte stream a BGP session runs over.
pub trait Transport: Send {
    /// Reads into `buf`. `Ok(0)` means the peer closed; `WouldBlock` /
    /// `TimedOut` mean no data is available yet.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Writes all of `buf`.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Writes as much of `buf` as fits without blocking, returning the
    /// number of bytes taken (`WouldBlock` when nothing fits). The
    /// default suits transports whose `write_all` never blocks (e.g.
    /// the simulated link's unbounded buffer); socket transports
    /// override it so an evented loop can flush incrementally.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_all(buf)?;
        Ok(buf.len())
    }

    /// Bounds how long [`Transport::read`] may block. `None` blocks
    /// indefinitely. Non-blocking transports may ignore this.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;

    /// Closes the transport in both directions (best effort).
    fn shutdown(&mut self);
}

impl Transport for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        io::Read::read(self, buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        io::Write::write(self, buf)
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        // zero means "no timeout" to the socket API; clamp up instead
        let t = timeout.map(|d| d.max(Duration::from_millis(1)));
        TcpStream::set_read_timeout(self, t)
    }

    fn shutdown(&mut self) {
        let _ = TcpStream::shutdown(self, std::net::Shutdown::Both);
    }
}

// ---------------------------------------------------------------------------
// Fault schedules
// ---------------------------------------------------------------------------

/// What a fault does to the byte stream at its offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Flip one bit of the byte at the fault offset.
    Corrupt {
        /// Bit index (0 = least significant).
        bit: u8,
    },
    /// Silently discard this many bytes starting at the fault offset.
    Drop {
        /// Number of bytes to discard.
        count: u64,
    },
    /// Delay the byte at the offset — and every later byte — by this many
    /// virtual milliseconds (delays accumulate).
    Delay {
        /// Added latency in milliseconds.
        ms: u64,
    },
    /// Close the direction at the offset: earlier bytes still deliver,
    /// then the reader sees EOF and later writes fail.
    Sever,
    /// Stop delivering at the offset without closing: the reader blocks
    /// forever (a half-open peer).
    Stall,
}

/// One fault: an action applied at a byte offset of a directional stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Byte offset (counted over everything the sender has written).
    pub offset: u64,
    /// The action.
    pub action: FaultAction,
}

/// A seeded, replayable schedule of faults for one stream direction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// The empty (fault-free) schedule.
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from faults (sorted by offset internally).
    pub fn new(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| f.offset);
        FaultSchedule { faults }
    }

    /// The faults, ordered by offset.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Parses the schedule grammar documented at the module level, e.g.
    /// `"corrupt@60.3 delay@120:500 sever@512"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for term in s.split_whitespace() {
            let (kind, rest) = term
                .split_once('@')
                .ok_or_else(|| format!("`{term}`: expected KIND@OFFSET"))?;
            let num = |s: &str| -> Result<u64, String> {
                s.parse::<u64>()
                    .map_err(|_| format!("`{term}`: bad number"))
            };
            let fault = match kind {
                "corrupt" => {
                    let (off, bit) = rest
                        .split_once('.')
                        .ok_or_else(|| format!("`{term}`: expected corrupt@OFF.BIT"))?;
                    let bit = num(bit)?;
                    if bit > 7 {
                        return Err(format!("`{term}`: bit must be 0-7"));
                    }
                    Fault {
                        offset: num(off)?,
                        action: FaultAction::Corrupt { bit: bit as u8 },
                    }
                }
                "drop" => {
                    let (off, n) = rest
                        .split_once('+')
                        .ok_or_else(|| format!("`{term}`: expected drop@OFF+N"))?;
                    Fault {
                        offset: num(off)?,
                        action: FaultAction::Drop { count: num(n)? },
                    }
                }
                "delay" => {
                    let (off, ms) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("`{term}`: expected delay@OFF:MS"))?;
                    Fault {
                        offset: num(off)?,
                        action: FaultAction::Delay { ms: num(ms)? },
                    }
                }
                "sever" => Fault {
                    offset: num(rest)?,
                    action: FaultAction::Sever,
                },
                "stall" => Fault {
                    offset: num(rest)?,
                    action: FaultAction::Stall,
                },
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            faults.push(fault);
        }
        Ok(FaultSchedule::new(faults))
    }

    /// A seeded random schedule of 1–4 faults within the first
    /// `max_offset` bytes. Identical seeds yield identical schedules.
    pub fn random(seed: u64, max_offset: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..=4);
        let faults = (0..n)
            .map(|_| {
                let offset = rng.gen_range(0..max_offset.max(1));
                let action = match rng.gen_range(0u8..5) {
                    0 => FaultAction::Corrupt {
                        bit: rng.gen_range(0u8..8),
                    },
                    1 => FaultAction::Drop {
                        count: rng.gen_range(1u64..32),
                    },
                    2 => FaultAction::Delay {
                        ms: rng.gen_range(1u64..5_000),
                    },
                    3 => FaultAction::Sever,
                    _ => FaultAction::Stall,
                };
                Fault { offset, action }
            })
            .collect();
        FaultSchedule::new(faults)
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match fault.action {
                FaultAction::Corrupt { bit } => write!(f, "corrupt@{}.{bit}", fault.offset)?,
                FaultAction::Drop { count } => write!(f, "drop@{}+{count}", fault.offset)?,
                FaultAction::Delay { ms } => write!(f, "delay@{}:{ms}", fault.offset)?,
                FaultAction::Sever => write!(f, "sever@{}", fault.offset)?,
                FaultAction::Stall => write!(f, "stall@{}", fault.offset)?,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------------

/// One direction of a simulated link.
struct SimDir {
    schedule: Vec<Fault>,
    next_fault: usize,
    /// Bytes the sender has attempted so far (the fault-offset domain).
    offset: u64,
    /// Bytes still to discard because of an active `Drop` fault.
    drop_left: u64,
    /// Accumulated delivery delay in ms.
    delay_ms: u64,
    /// In-flight bytes tagged with the virtual instant they become
    /// readable.
    queue: VecDeque<(u64, u8)>,
    /// Sender closed (or the direction was severed): reader sees EOF once
    /// the queue drains.
    closed: bool,
    /// Delivery stopped without closing (half-open).
    stalled: bool,
}

impl SimDir {
    fn new(schedule: FaultSchedule) -> Self {
        SimDir {
            schedule: schedule.faults,
            next_fault: 0,
            offset: 0,
            drop_left: 0,
            delay_ms: 0,
            queue: VecDeque::new(),
            closed: false,
            stalled: false,
        }
    }

    fn write(&mut self, data: &[u8], now_ms: u64) -> io::Result<()> {
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "simulated link severed",
            ));
        }
        for &raw in data {
            let mut byte = raw;
            while let Some(f) = self.schedule.get(self.next_fault) {
                if f.offset != self.offset {
                    break;
                }
                self.next_fault += 1;
                match f.action {
                    FaultAction::Corrupt { bit } => byte ^= 1 << bit,
                    FaultAction::Drop { count } => self.drop_left += count,
                    FaultAction::Delay { ms } => self.delay_ms += ms,
                    FaultAction::Sever => {
                        self.closed = true;
                        // bytes already queued still deliver; the rest of
                        // this write vanishes, later writes fail
                        return Ok(());
                    }
                    FaultAction::Stall => self.stalled = true,
                }
            }
            self.offset += 1;
            if self.drop_left > 0 {
                self.drop_left -= 1;
                continue;
            }
            if self.stalled {
                continue; // delivery stopped; connection stays open
            }
            self.queue.push_back((now_ms + self.delay_ms, byte));
        }
        Ok(())
    }

    fn read(&mut self, buf: &mut [u8], now_ms: u64) -> io::Result<usize> {
        let mut n = 0;
        while n < buf.len() {
            match self.queue.front() {
                Some(&(ready_at, byte)) if ready_at <= now_ms => {
                    buf[n] = byte;
                    n += 1;
                    self.queue.pop_front();
                }
                _ => break,
            }
        }
        if n > 0 {
            Ok(n)
        } else if self.closed && self.queue.is_empty() {
            Ok(0)
        } else {
            Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "no simulated bytes ready",
            ))
        }
    }
}

struct SimLink {
    a2b: SimDir,
    b2a: SimDir,
}

/// One endpoint of an in-process simulated link (see the module docs for
/// the fault model). Reads are non-blocking: they return `WouldBlock`
/// until bytes become ready on the shared [`VirtualClock`].
pub struct SimTransport {
    link: Arc<parking_lot::Mutex<SimLink>>,
    clock: VirtualClock,
    is_a: bool,
}

/// Creates a connected pair of simulated endpoints sharing `clock`.
/// `a2b` faults apply to bytes written by the first endpoint, `b2a` to
/// bytes written by the second.
pub fn sim_pair(
    clock: &VirtualClock,
    a2b: FaultSchedule,
    b2a: FaultSchedule,
) -> (SimTransport, SimTransport) {
    let link = Arc::new(parking_lot::Mutex::new(SimLink {
        a2b: SimDir::new(a2b),
        b2a: SimDir::new(b2a),
    }));
    (
        SimTransport {
            link: link.clone(),
            clock: clock.clone(),
            is_a: true,
        },
        SimTransport {
            link,
            clock: clock.clone(),
            is_a: false,
        },
    )
}

impl Transport for SimTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let now = self.clock.now_ms();
        let mut link = self.link.lock();
        let dir = if self.is_a {
            &mut link.b2a
        } else {
            &mut link.a2b
        };
        dir.read(buf, now)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let now = self.clock.now_ms();
        let mut link = self.link.lock();
        let dir = if self.is_a {
            &mut link.a2b
        } else {
            &mut link.b2a
        };
        dir.write(buf, now)
    }

    fn set_read_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(()) // reads are non-blocking; the harness advances the clock
    }

    fn shutdown(&mut self) {
        let mut link = self.link.lock();
        let dir = if self.is_a {
            &mut link.a2b
        } else {
            &mut link.b2a
        };
        dir.closed = true;
    }
}

// ---------------------------------------------------------------------------
// Reconnect backoff
// ---------------------------------------------------------------------------

/// Capped exponential backoff with deterministic jitter, used when
/// re-establishing a dropped session. `delay_ms(attempt)` is in
/// `[cap/2, cap]` once the exponential passes `cap_ms`, and identical
/// `(seed, attempt)` pairs always produce identical delays.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    /// First-retry delay in milliseconds.
    pub base_ms: u64,
    /// Upper bound on the un-jittered delay.
    pub cap_ms: u64,
    /// Jitter seed (vary per peer to de-synchronize reconnect storms).
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 500,
            cap_ms: 60_000,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The jittered delay before reconnect attempt `attempt` (0-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms)
            .max(1);
        // jitter in [exp/2, exp]: keeps retries spread without ever
        // collapsing to zero delay
        let half = exp / 2;
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        half + rng.gen_range(0..=exp - half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_pair_delivers_bytes_both_ways() {
        let clock = VirtualClock::new();
        let (mut a, mut b) = sim_pair(&clock, FaultSchedule::none(), FaultSchedule::none());
        a.write_all(b"hello").unwrap();
        b.write_all(b"world").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(b.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(a.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"world");
        // nothing more: WouldBlock, not EOF
        assert_eq!(
            a.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let clock = VirtualClock::new();
        let sched = FaultSchedule::parse("corrupt@2.0").unwrap();
        let (mut a, mut b) = sim_pair(&clock, sched, FaultSchedule::none());
        a.write_all(&[0, 0, 0, 0]).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(buf, [0, 0, 1, 0]);
    }

    #[test]
    fn drop_discards_a_window() {
        let clock = VirtualClock::new();
        let sched = FaultSchedule::parse("drop@1+2").unwrap();
        let (mut a, mut b) = sim_pair(&clock, sched, FaultSchedule::none());
        a.write_all(&[1, 2, 3, 4, 5]).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], &[1, 4, 5]);
    }

    #[test]
    fn delay_holds_bytes_until_the_clock_advances() {
        let clock = VirtualClock::new();
        let sched = FaultSchedule::parse("delay@2:100").unwrap();
        let (mut a, mut b) = sim_pair(&clock, sched, FaultSchedule::none());
        a.write_all(&[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 2); // bytes before the fault
        assert!(b.read(&mut buf).is_err());
        clock.advance_ms(100);
        assert_eq!(b.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], &[3, 4]);
    }

    #[test]
    fn sever_delivers_prefix_then_eof_and_breaks_writes() {
        let clock = VirtualClock::new();
        let sched = FaultSchedule::parse("sever@3").unwrap();
        let (mut a, mut b) = sim_pair(&clock, sched, FaultSchedule::none());
        a.write_all(&[1, 2, 3, 4, 5]).unwrap(); // tail silently lost
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 3);
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF after sever");
        assert_eq!(
            a.write_all(&[9]).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn stall_blocks_forever_without_eof() {
        let clock = VirtualClock::new();
        let sched = FaultSchedule::parse("stall@2").unwrap();
        let (mut a, mut b) = sim_pair(&clock, sched, FaultSchedule::none());
        a.write_all(&[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 2);
        clock.advance_ms(1_000_000);
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "half-open, not EOF");
        // the writer can keep writing into the void
        a.write_all(&[5]).unwrap();
    }

    #[test]
    fn schedule_grammar_roundtrips() {
        let text = "corrupt@60.3 drop@100+7 delay@120:500 sever@512 stall@900";
        let sched = FaultSchedule::parse(text).unwrap();
        assert_eq!(sched.faults().len(), 5);
        assert_eq!(sched.to_string(), text);
        assert_eq!(FaultSchedule::parse(&sched.to_string()).unwrap(), sched);
        assert!(FaultSchedule::parse("corrupt@5.9").is_err());
        assert!(FaultSchedule::parse("explode@5").is_err());
        assert!(FaultSchedule::parse("drop@x+1").is_err());
    }

    #[test]
    fn random_schedules_are_seed_deterministic() {
        for seed in 0..32 {
            let a = FaultSchedule::random(seed, 1024);
            let b = FaultSchedule::random(seed, 1024);
            assert_eq!(a, b);
            assert!(!a.faults().is_empty() && a.faults().len() <= 4);
        }
        assert_ne!(
            FaultSchedule::random(1, 1024),
            FaultSchedule::random(2, 1024)
        );
    }

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let p = BackoffPolicy {
            base_ms: 100,
            cap_ms: 2_000,
            seed: 7,
        };
        for attempt in 0..20 {
            let d1 = p.delay_ms(attempt);
            let d2 = p.delay_ms(attempt);
            assert_eq!(d1, d2, "same (seed, attempt) must give the same delay");
            let exp = (100u64 << attempt.min(10)).min(2_000);
            assert!(d1 >= exp / 2 && d1 <= exp, "attempt {attempt}: {d1}");
        }
        // different seeds de-synchronize
        let q = BackoffPolicy { seed: 8, ..p };
        assert!((0..20).any(|a| p.delay_ms(a) != q.delay_ms(a)));
    }

    #[test]
    fn virtual_clock_is_shared_across_clones() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance_ms(50);
        assert_eq!(c2.now_ms(), 50);
    }
}
