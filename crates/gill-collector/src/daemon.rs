//! The per-peer BGP daemon (§8).
//!
//! Each daemon owns exactly one BGP session: it runs the RFC 4271 session
//! FSM ([`crate::fsm::SessionFsm`]) over a pluggable [`Transport`],
//! receives UPDATEs, applies GILL's filters, and hands retained updates to
//! a **bounded** storage queue. When the queue is full the update is
//! *lost* — the quantity Table 1 measures under load. Filters can be
//! swapped at runtime by the orchestrator (§7's periodic refresh).
//!
//! The session layer is split in two:
//!
//! * the FSM decides *what* happens (handshake, hold timer, keepalives,
//!   NOTIFICATION-on-error) and is pure;
//! * the drive loops here decide *when*, by blocking on the transport with
//!   timeouts derived from the FSM's next deadline.
//!
//! The same FSM also runs under the deterministic [`crate::harness`].

use crate::forwarding::Forwarder;
use crate::fsm::{CloseReason, SessionEvent, SessionFsm, SessionRole};
use crate::orchestrator::Orchestrator;
use crate::storage::{Storage, StoredUpdate};
use crate::transport::{Clock, SystemClock, Transport};
use crate::validator::{UpdateValidator, Verdict};
use bgp_types::{BgpUpdate, Timestamp, VpId};
use bgp_wire::{BgpMessage, Notification, WireError};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use gill_core::{FilterHandle, FilterSet, FilterView};
use parking_lot::{Mutex, RwLock};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// The collector's AS number sent in our OPEN.
    pub local_asn: u32,
    /// Hold time we propose (seconds; the negotiated value is the minimum
    /// of both sides, 0 disables timers).
    pub hold_time: u16,
    /// Capacity of the bounded storage queue (shared by the pool).
    pub queue_capacity: usize,
    /// Capacity of the bounded mirror channel feeding an attached
    /// orchestrator ([`DaemonPool::attach_orchestrator`]). Overflow is
    /// shed (never blocks a session) and counted in
    /// [`DaemonStats::mirror_dropped`].
    pub mirror_capacity: usize,
    /// Run the §14 validity checks on incoming updates (hard violations
    /// are dropped and counted; suspicious updates are stored but
    /// counted as quarantined).
    pub validate: bool,
    /// Upper bound on concurrently established sessions (0 = unlimited).
    /// Connections beyond the bound are rejected 503-style: a
    /// NOTIFICATION Cease is sent immediately and the connection is
    /// closed, counted in [`DaemonStats::accept_rejected`] — overload
    /// sheds deterministically instead of exhausting threads or fds.
    pub max_sessions: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            local_asn: 65535,
            hold_time: 240,
            queue_capacity: 1024,
            mirror_capacity: 8192,
            validate: false,
            max_sessions: 4096,
        }
    }
}

/// A live-stream tee the collector publishes accepted updates into.
///
/// Defined here (not in the streaming crate) so the dependency chain stays
/// linear: `gill-stream` implements this for its broker and hands the
/// collector an `Arc<dyn UpdateSink>`; the collector never depends on the
/// streaming layer. Implementations must never block — the paper's
/// collection hot path is sacred, distribution sheds instead.
pub trait UpdateSink: Send + Sync {
    /// Offers one post-filter accepted update. Returns `true` if it was
    /// published, `false` if the sink shed it (e.g. no subscribers).
    fn offer(&self, update: &BgpUpdate) -> bool;

    /// Number of consumers currently attached downstream.
    fn subscribers(&self) -> usize;
}

impl DaemonConfig {
    /// The session-layer view of this configuration. The collector
    /// advertises both unicast families and offers ADD-PATH on both: it
    /// archives whatever the peer can send, and a legacy peer's OPEN
    /// intersects the sets back down to a classic v4 session.
    pub fn session_config(&self) -> crate::fsm::SessionConfig {
        crate::fsm::SessionConfig {
            local_asn: self.local_asn,
            hold_time: self.hold_time,
            families: bgp_types::FamilySet::ALL,
            add_paths: bgp_types::FamilySet::ALL,
            ..crate::fsm::SessionConfig::default()
        }
    }
}

/// Counters exposed by a running daemon (pool).
#[derive(Default, Debug)]
pub struct DaemonStats {
    /// UPDATE messages received.
    pub received: AtomicUsize,
    /// Updates that passed the filters and were queued for storage.
    pub retained: AtomicUsize,
    /// Updates discarded by the filters (by design).
    pub filtered: AtomicUsize,
    /// Updates lost because the storage queue was full (overload).
    pub lost: AtomicUsize,
    /// Updates rejected by the §14 validity checks.
    pub invalid: AtomicUsize,
    /// Updates stored but flagged suspicious (§14 quarantine).
    pub quarantined: AtomicUsize,
    /// Updates forwarded to operator subscriptions (§14 services).
    pub forwarded: AtomicUsize,
    /// Sessions that completed the OPEN handshake.
    pub sessions_opened: AtomicUsize,
    /// Sessions that ended (for any reason) after establishing.
    pub sessions_closed: AtomicUsize,
    /// Connections that failed before establishing.
    pub handshake_failures: AtomicUsize,
    /// Connections rejected at accept because the session cap
    /// ([`DaemonConfig::max_sessions`]) was reached.
    pub accept_rejected: AtomicUsize,
    /// KEEPALIVEs this side generated.
    pub keepalives_sent: AtomicUsize,
    /// KEEPALIVEs received from peers.
    pub keepalives_received: AtomicUsize,
    /// NOTIFICATIONs this side sent (errors + graceful cease).
    pub notifications_sent: AtomicUsize,
    /// Sessions closed by hold-timer expiry.
    pub hold_expirations: AtomicUsize,
    /// Handshakes by a peer identity seen before (session re-established).
    pub reconnects: AtomicUsize,
    /// The currently published filter epoch (bumped by every
    /// `install_filters` / orchestrator refresh).
    pub filter_epoch: AtomicU64,
    /// Updates teed into the orchestrator mirror channel.
    pub mirror_fed: AtomicUsize,
    /// Updates the mirror channel shed because it was full (sessions
    /// never block on the mirror).
    pub mirror_dropped: AtomicUsize,
    /// Accepted updates published into the live-stream sink.
    pub stream_published: AtomicUsize,
    /// Accepted updates the stream sink shed (e.g. zero subscribers).
    pub stream_shed: AtomicUsize,
    /// Gauge: stream subscribers attached at the last publish attempt.
    pub stream_subscribers: AtomicUsize,
    /// Per-epoch verdict counters, a ring of the last
    /// [`EPOCH_SLOTS`] epochs.
    epochs: [EpochCounter; EPOCH_SLOTS],
}

/// Ring size of the per-epoch accept/drop counters.
pub const EPOCH_SLOTS: usize = 8;

/// Accept/drop counters for one filter epoch.
#[derive(Default, Debug)]
struct EpochCounter {
    epoch: AtomicU64,
    accepted: AtomicU64,
    dropped: AtomicU64,
}

impl DaemonStats {
    /// Resets the ring slot for `epoch`. The publisher calls this *before*
    /// making the epoch visible to sessions, so the slot can never mix
    /// counts from the epoch it replaces (single-publisher discipline).
    pub fn begin_epoch(&self, epoch: u64) {
        let s = &self.epochs[(epoch as usize) % EPOCH_SLOTS];
        s.accepted.store(0, Ordering::Relaxed);
        s.dropped.store(0, Ordering::Relaxed);
        s.epoch.store(epoch, Ordering::Release);
    }

    /// Records one filter verdict attributed to `epoch`.
    pub fn note_verdict(&self, epoch: u64, retained: bool) {
        let s = &self.epochs[(epoch as usize) % EPOCH_SLOTS];
        if s.epoch.load(Ordering::Acquire) == epoch {
            let c = if retained { &s.accepted } else { &s.dropped };
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(accepted, dropped)` for `epoch`, if its slot has not been
    /// recycled by a newer epoch yet.
    pub fn epoch_counts(&self, epoch: u64) -> Option<(u64, u64)> {
        let s = &self.epochs[(epoch as usize) % EPOCH_SLOTS];
        (s.epoch.load(Ordering::Acquire) == epoch).then(|| {
            (
                s.accepted.load(Ordering::Relaxed),
                s.dropped.load(Ordering::Relaxed),
            )
        })
    }
    /// Proportion of received updates lost to overload.
    pub fn loss_rate(&self) -> f64 {
        let rx = self.received.load(Ordering::Relaxed);
        if rx == 0 {
            0.0
        } else {
            self.lost.load(Ordering::Relaxed) as f64 / rx as f64
        }
    }
}

/// A framed BGP session over any [`Transport`]: keeps a persistent receive
/// buffer so coalesced messages in one segment are never dropped.
///
/// Defaults to [`TcpStream`] so existing `MessageStream::new(tcp)` call
/// sites are unchanged; tests substitute [`crate::transport::SimTransport`].
pub struct MessageStream<T: Transport = TcpStream> {
    transport: T,
    buf: BytesMut,
    chunk: Box<[u8; 16 * 1024]>,
}

impl<T: Transport> MessageStream<T> {
    /// Wraps a connected transport.
    pub fn new(transport: T) -> Self {
        MessageStream {
            transport,
            buf: BytesMut::new(),
            chunk: Box::new([0u8; 16 * 1024]),
        }
    }

    /// The underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Writes one message.
    pub fn write_message(&mut self, msg: &BgpMessage) -> io::Result<()> {
        let bytes = msg
            .encode_to_vec()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.transport.write_all(&bytes)
    }

    /// Reads the next message (blocking, for blocking transports).
    /// `Ok(None)` means the peer closed the connection cleanly at a
    /// message boundary.
    pub fn read_message(&mut self) -> io::Result<Option<BgpMessage>> {
        loop {
            match BgpMessage::decode(&mut self.buf) {
                Ok(Some(m)) => return Ok(Some(m)),
                Ok(None) => {}
                Err(WireError::BadMarker) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "desynchronized"))
                }
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let n = self.transport.read(&mut self.chunk[..])?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-message",
                ));
            }
            self.buf.extend_from_slice(&self.chunk[..n]);
        }
    }
}

/// A session that completed its handshake: carries the FSM (with its
/// negotiated hold/keepalive timers and any residual decode buffer) into
/// the established phase.
pub struct EstablishedSession {
    /// The peer's identity from its OPEN.
    pub peer: VpId,
    fsm: SessionFsm,
}

impl EstablishedSession {
    /// Negotiated hold time in milliseconds (0 = timers disabled).
    pub fn hold_ms(&self) -> u64 {
        self.fsm.hold_ms()
    }
}

fn close_error(reason: &CloseReason) -> io::Error {
    match reason {
        CloseReason::PeerClosed => {
            io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed during handshake")
        }
        CloseReason::PeerClosedMidMessage => {
            io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-message")
        }
        CloseReason::HoldTimerExpired => {
            io::Error::new(io::ErrorKind::TimedOut, "hold timer expired")
        }
        CloseReason::NotificationReceived { code, subcode } => io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("peer sent NOTIFICATION {code}/{subcode}"),
        ),
        CloseReason::DecodeError(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        CloseReason::ProtocolError(what) => {
            io::Error::new(io::ErrorKind::InvalidData, (*what).to_string())
        }
    }
}

/// Upper bound on one blocking read so timer ticks stay responsive even
/// with long hold times.
const MAX_READ_SLICE_MS: u64 = 500;

/// One blocking step of the FSM drive loop: flush pending output, then
/// read with a timeout bounded by the FSM's next deadline and feed the
/// result (bytes, EOF, or a timer tick) back into the FSM.
fn drive_step<T: Transport>(
    s: &mut MessageStream<T>,
    fsm: &mut SessionFsm,
    clock: &dyn Clock,
) -> io::Result<()> {
    while fsm.has_output() {
        let out = fsm.take_output();
        if let Err(e) = s.transport.write_all(&out) {
            // a dead link is a session close, not a caller error
            fsm.handle_eof(clock.now_ms());
            return if fsm.is_closed() { Ok(()) } else { Err(e) };
        }
    }
    if fsm.is_closed() {
        return Ok(());
    }
    let now = clock.now_ms();
    let timeout = fsm
        .next_deadline_ms()
        .map(|d| d.saturating_sub(now).clamp(1, MAX_READ_SLICE_MS))
        .unwrap_or(MAX_READ_SLICE_MS);
    s.transport
        .set_read_timeout(Some(Duration::from_millis(timeout)))?;
    match s.transport.read(&mut s.chunk[..]) {
        Ok(0) => fsm.handle_eof(clock.now_ms()),
        Ok(n) => {
            let data = s.chunk[..n].to_vec();
            fsm.handle_bytes(&data, clock.now_ms());
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            fsm.tick(clock.now_ms());
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
        Err(e) => return Err(e),
    }
    Ok(())
}

/// Drives `fsm` until it establishes or closes. On close, the reason is
/// converted into an `io::Error`.
fn drive_handshake<T: Transport>(
    s: &mut MessageStream<T>,
    fsm: &mut SessionFsm,
    clock: &dyn Clock,
) -> io::Result<()> {
    loop {
        // "reached", not "is": a fast peer can handshake, send UPDATEs
        // and close inside one read — those events stay queued for the
        // established phase
        if fsm.reached_established() {
            // flush the final handshake message (our confirming KEEPALIVE)
            while fsm.has_output() {
                let out = fsm.take_output();
                if s.transport.write_all(&out).is_err() {
                    break; // peer already gone; its events still matter
                }
            }
            return Ok(());
        }
        if fsm.is_closed() {
            let reason = std::iter::from_fn(|| fsm.poll_event())
                .find_map(|e| match e {
                    SessionEvent::Closed(r) => Some(r),
                    _ => None,
                })
                .unwrap_or(CloseReason::PeerClosed);
            return Err(close_error(&reason));
        }
        drive_step(s, fsm, clock)?;
    }
}

/// Server side of the handshake on an accepted connection: runs the
/// passive FSM until Established and returns the session (peer identity +
/// negotiated timers).
pub fn handshake_server<T: Transport>(
    s: &mut MessageStream<T>,
    cfg: &DaemonConfig,
) -> io::Result<EstablishedSession> {
    let clock = SystemClock::new();
    let mut fsm = SessionFsm::new(SessionRole::Passive, cfg.session_config());
    fsm.start(clock.now_ms());
    drive_handshake(s, &mut fsm, &clock)?;
    let peer = fsm
        .peer()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no peer identity"))?;
    Ok(EstablishedSession { peer, fsm })
}

/// Client side of the handshake (used by the fake peers of §8's load test
/// and by operators' routers in the real deployment). Runs the active FSM
/// until Established; any bytes the peer sent beyond the handshake are
/// left in the stream's decode buffer.
pub fn handshake_client<T: Transport>(s: &mut MessageStream<T>, asn: u32) -> io::Result<()> {
    handshake_client_mp(
        s,
        asn,
        bgp_types::FamilySet::EMPTY,
        bgp_types::FamilySet::EMPTY,
    )
    .map(|_| ())
}

/// [`handshake_client`] with Multiprotocol / ADD-PATH capabilities in the
/// OPEN. Returns the negotiated `(families, add_paths)` sets — what the
/// peer in the session's NLRI encoding must follow from then on.
pub fn handshake_client_mp<T: Transport>(
    s: &mut MessageStream<T>,
    asn: u32,
    families: bgp_types::FamilySet,
    add_paths: bgp_types::FamilySet,
) -> io::Result<(bgp_types::FamilySet, bgp_types::FamilySet)> {
    let clock = SystemClock::new();
    let cfg = crate::fsm::SessionConfig {
        local_asn: asn,
        hold_time: 240,
        router_id: std::net::Ipv4Addr::new(10, 255, 0, 1),
        families,
        add_paths,
    };
    let mut fsm = SessionFsm::new(SessionRole::Active, cfg);
    fsm.start(clock.now_ms());
    drive_handshake(s, &mut fsm, &clock)?;
    // hand residual bytes (e.g. a coalesced first UPDATE) to manual framing
    let residual = fsm.take_residual();
    if !residual.is_empty() {
        let mut merged = residual;
        merged.extend_from_slice(&s.buf);
        s.buf = merged;
    }
    Ok((fsm.families(), fsm.add_paths()))
}

/// The shared pipeline a session feeds: filters, the bounded storage
/// queue, counters, and the optional §14 services (validator and
/// forwarding tee).
#[derive(Clone)]
pub struct SessionCtx {
    /// Filter view applied before storage. Each judged update costs one
    /// atomic epoch load plus a hash probe — no lock, no allocation; an
    /// orchestrator refresh swaps the epoch under the sessions without
    /// touching them ([`FilterHandle`]).
    pub filters: FilterView,
    /// The bounded storage queue.
    pub queue: Sender<StoredUpdate>,
    /// Shared counters.
    pub stats: Arc<DaemonStats>,
    /// §14 validity checks (shared so knowledge accumulates).
    pub validator: Option<Arc<RwLock<UpdateValidator>>>,
    /// §14 forwarding tee, evaluated before the discard stage.
    pub forwarder: Option<Arc<RwLock<Forwarder>>>,
    /// Orchestrator mirror tee: the *unfiltered* stream §8 trains on.
    pub mirror: Option<Sender<BgpUpdate>>,
    /// Whether an orchestrator is actually draining the mirror; when
    /// false the tee is skipped entirely (one relaxed load per update).
    pub mirror_on: Arc<AtomicBool>,
    /// Live-stream tee, fed *after* filter-accept (subscribers see exactly
    /// what the archive retains, minus queue overflow losses).
    pub sink: Option<Arc<dyn UpdateSink>>,
    /// Cooperative shutdown signal. Drive loops poll it between read
    /// slices and close their session gracefully (NOTIFICATION Cease /
    /// transport shutdown) when set, so a pool can join its session
    /// threads with a bounded deadline instead of leaking them.
    pub shutdown: Arc<AtomicBool>,
}

impl SessionCtx {
    /// A pipeline over `filters` with no validator, forwarder, or mirror
    /// (tests and embedded uses; the pool wires the full §14 stack).
    pub fn new(
        filters: FilterView,
        queue: Sender<StoredUpdate>,
        stats: Arc<DaemonStats>,
    ) -> SessionCtx {
        SessionCtx {
            filters,
            queue,
            stats,
            validator: None,
            forwarder: None,
            mirror: None,
            mirror_on: Arc::new(AtomicBool::new(false)),
            sink: None,
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Attaches a live-stream sink (builder style).
    pub fn with_sink(mut self, sink: Arc<dyn UpdateSink>) -> SessionCtx {
        self.sink = Some(sink);
        self
    }

    /// Offers one received UPDATE into the pipeline on behalf of `vp`.
    /// This is the entry point for non-BGP ingest paths (the BMP
    /// subsystem demuxes many monitored peers onto it), so every protocol
    /// shares the same mirror → validate → filter → sink → queue
    /// accounting. Returns `false` when the queue is gone.
    pub fn offer(&self, vp: VpId, wire: bgp_wire::UpdateMessage, now: Timestamp) -> bool {
        self.ingest(vp, wire, now)
    }

    /// Runs one received UPDATE through the mirror tee, validation,
    /// forwarding, filtering and the bounded queue. Returns `false` when
    /// the queue is gone.
    fn ingest(&self, vp: VpId, wire: bgp_wire::UpdateMessage, now: Timestamp) -> bool {
        for mut domain in wire.to_domain(vp, now) {
            domain.time = now;
            self.stats.received.fetch_add(1, Ordering::Relaxed);
            // the mirror sees the stream *before* filtering (§8: training
            // needs all the data); shedding on overflow, never blocking
            if let Some(m) = &self.mirror {
                if self.mirror_on.load(Ordering::Relaxed) {
                    match m.try_send(domain.clone()) {
                        Ok(()) => {
                            self.stats.mirror_fed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(_)) => {
                            self.stats.mirror_dropped.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Disconnected(_)) => {}
                    }
                }
            }
            if let Some(v) = &self.validator {
                match v.write().validate(vp.asn, &domain) {
                    Verdict::Invalid(_) => {
                        self.stats.invalid.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    Verdict::Quarantine(_) => {
                        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                    }
                    Verdict::Valid => {}
                }
            }
            if let Some(f) = &self.forwarder {
                let mut fw = f.write();
                let before = fw.forwarded;
                fw.offer(&domain);
                self.stats
                    .forwarded
                    .fetch_add(fw.forwarded - before, Ordering::Relaxed);
            }
            let (keep, epoch) = self.filters.judge(&domain);
            self.stats.note_verdict(epoch, keep);
            if !keep {
                self.stats.filtered.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // live-stream tee: strictly post-filter, never blocking — the
            // sink sheds (and says so) rather than slow a session
            if let Some(sink) = &self.sink {
                let c = if sink.offer(&domain) {
                    &self.stats.stream_published
                } else {
                    &self.stats.stream_shed
                };
                c.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .stream_subscribers
                    .store(sink.subscribers(), Ordering::Relaxed);
            }
            match self.queue.try_send(StoredUpdate { update: domain }) {
                Ok(()) => {
                    self.stats.retained.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(_)) => {
                    self.stats.lost.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
        true
    }
}

/// Runs one established session to completion: drives the FSM (hold
/// timer, keepalive generation, NOTIFICATION-on-error), feeds received
/// UPDATEs through the pipeline, and returns why the session ended. The
/// reception clock is the elapsed time since session start.
pub fn run_session_with<T: Transport>(
    s: &mut MessageStream<T>,
    session: EstablishedSession,
    ctx: &SessionCtx,
) -> io::Result<CloseReason> {
    let EstablishedSession { peer, mut fsm } = session;
    let clock = SystemClock::new();
    let mut closing = false;
    loop {
        if !closing && ctx.shutdown.load(Ordering::Relaxed) {
            closing = true;
            fsm.close_gracefully();
        }
        while let Some(event) = fsm.poll_event() {
            match event {
                SessionEvent::Update(u) => {
                    let now = Timestamp::from_millis(clock.now_ms());
                    if !ctx.ingest(peer, u, now) {
                        return Ok(CloseReason::PeerClosed);
                    }
                }
                SessionEvent::KeepaliveSent => {
                    ctx.stats.keepalives_sent.fetch_add(1, Ordering::Relaxed);
                }
                SessionEvent::KeepaliveReceived => {
                    ctx.stats
                        .keepalives_received
                        .fetch_add(1, Ordering::Relaxed);
                }
                SessionEvent::NotificationSent { .. } => {
                    ctx.stats.notifications_sent.fetch_add(1, Ordering::Relaxed);
                }
                SessionEvent::Closed(reason) => {
                    if reason == CloseReason::HoldTimerExpired {
                        ctx.stats.hold_expirations.fetch_add(1, Ordering::Relaxed);
                    }
                    // flush the parting NOTIFICATION, best effort
                    while fsm.has_output() {
                        let out = fsm.take_output();
                        if s.transport.write_all(&out).is_err() {
                            break;
                        }
                    }
                    s.transport.shutdown();
                    return Ok(reason);
                }
                SessionEvent::Established { .. } => {}
            }
        }
        drive_step(s, &mut fsm, &clock)?;
    }
}

/// A listening daemon pool: accepts sessions on one listener, spawning one
/// session thread per peer (the paper's "custom BGP daemon tailored to
/// peer with a single BGP router", multiplied).
pub struct DaemonPool {
    stats: Arc<DaemonStats>,
    filters: Arc<FilterHandle>,
    validator: Option<Arc<RwLock<UpdateValidator>>>,
    forwarder: Arc<RwLock<Forwarder>>,
    mirror_tx: Sender<BgpUpdate>,
    sink: Option<Arc<dyn UpdateSink>>,
    queue_rx: Receiver<StoredUpdate>,
    queue_tx: Sender<StoredUpdate>,
    mirror_rx: Option<Receiver<BgpUpdate>>,
    mirror_on: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    refresh_thread: Option<std::thread::JoinHandle<()>>,
    session_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    active_sessions: Arc<AtomicUsize>,
    local_addr: std::net::SocketAddr,
}

/// Joins `handles` with a bounded deadline, polling completion; threads
/// still running when the deadline passes are detached (dropped), and
/// their count is returned. Session drive loops poll their shutdown
/// flag at least every read slice (≤500 ms), so a few seconds suffices
/// for a clean exit.
pub fn join_with_deadline(
    mut handles: Vec<std::thread::JoinHandle<()>>,
    deadline: Duration,
) -> usize {
    let t0 = std::time::Instant::now();
    loop {
        handles = handles
            .into_iter()
            .filter_map(|h| {
                if h.is_finished() {
                    let _ = h.join();
                    None
                } else {
                    Some(h)
                }
            })
            .collect();
        if handles.is_empty() {
            return 0;
        }
        if t0.elapsed() >= deadline {
            return handles.len();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

impl DaemonPool {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting peers.
    pub fn start(addr: &str, cfg: DaemonConfig) -> io::Result<DaemonPool> {
        DaemonPool::start_with_sink(addr, cfg, None)
    }

    /// Like [`DaemonPool::start`] with a live-stream tee: every session
    /// offers its post-filter accepted updates to `sink` (the sink must be
    /// wired before accepting, since sessions clone their pipeline at
    /// start).
    pub fn start_with_sink(
        addr: &str,
        cfg: DaemonConfig,
        sink: Option<Arc<dyn UpdateSink>>,
    ) -> io::Result<DaemonPool> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let mut pool = DaemonPool::pipeline(cfg.clone(), sink);
        pool.local_addr = local_addr;
        // identities that have completed a handshake before, for the
        // reconnect counter
        let known_peers: Arc<Mutex<std::collections::HashSet<VpId>>> =
            Arc::new(Mutex::new(std::collections::HashSet::new()));
        let accept_thread = {
            let ctx = pool.session_ctx();
            let stop = pool.stop.clone();
            let threads = pool.session_threads.clone();
            let active = pool.active_sessions.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if cfg.max_sessions > 0
                                && active.load(Ordering::Relaxed) >= cfg.max_sessions
                            {
                                reject_over_capacity(stream, &ctx.stats);
                                continue;
                            }
                            active.fetch_add(1, Ordering::Relaxed);
                            stream.set_nonblocking(false).ok();
                            let ctx = ctx.clone();
                            let cfg = cfg.clone();
                            let known_peers = known_peers.clone();
                            let active = active.clone();
                            let handle = std::thread::spawn(move || {
                                let mut ms = MessageStream::new(stream);
                                match handshake_server(&mut ms, &cfg) {
                                    Ok(session) => {
                                        ctx.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
                                        if !known_peers.lock().insert(session.peer) {
                                            ctx.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                                        }
                                        let _ = run_session_with(&mut ms, session, &ctx);
                                        ctx.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(_) => {
                                        ctx.stats
                                            .handshake_failures
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                active.fetch_sub(1, Ordering::Relaxed);
                            });
                            let mut v = threads.lock();
                            // reap handles of sessions that already ended
                            v.retain(|h| !h.is_finished());
                            v.push(handle);
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                // listener drops here: the socket closes with the loop
            })
        };
        pool.accept_thread = Some(accept_thread);
        Ok(pool)
    }

    /// Builds the shared pipeline — filters, bounded queue, counters,
    /// §14 services, mirror and sink tees — without binding a listener
    /// or spawning an accept thread. The evented runtime
    /// (`gill-runtime`) uses this: it accepts into its own reactor and
    /// mints per-session views via [`DaemonPool::session_ctx`], so both
    /// runtimes share every downstream accounting invariant.
    pub fn pipeline(cfg: DaemonConfig, sink: Option<Arc<dyn UpdateSink>>) -> DaemonPool {
        let (queue_tx, queue_rx) = bounded(cfg.queue_capacity);
        let (mirror_tx, mirror_rx) = bounded(cfg.mirror_capacity.max(1));
        let mirror_on = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(DaemonStats::default());
        let filters = FilterHandle::empty();
        let validator = cfg
            .validate
            .then(|| Arc::new(RwLock::new(UpdateValidator::new())));
        let forwarder = Arc::new(RwLock::new(Forwarder::new()));
        let stop = Arc::new(AtomicBool::new(false));
        DaemonPool {
            stats,
            filters,
            validator,
            forwarder,
            mirror_tx,
            sink,
            queue_rx,
            queue_tx,
            mirror_rx: Some(mirror_rx),
            mirror_on,
            stop,
            accept_thread: None,
            refresh_thread: None,
            session_threads: Arc::new(Mutex::new(Vec::new())),
            active_sessions: Arc::new(AtomicUsize::new(0)),
            local_addr: std::net::SocketAddr::from(([0, 0, 0, 0], 0)),
        }
    }

    /// Registers an operator forwarding subscription (§14): matching
    /// updates are delivered on the returned handle *before* the discard
    /// stage. Returns the subscription id and handle.
    pub fn subscribe(
        &self,
        rules: Vec<crate::forwarding::ForwardRule>,
    ) -> (u64, crate::forwarding::Subscription) {
        self.forwarder.write().subscribe(rules)
    }

    /// Removes a forwarding subscription.
    pub fn unsubscribe(&self, id: u64) {
        self.forwarder.write().unsubscribe(id);
    }

    /// Seeds the validator's link knowledge base (no-op when validation is
    /// disabled).
    pub fn seed_validator<I: IntoIterator<Item = bgp_types::Link>>(&self, links: I) {
        if let Some(v) = &self.validator {
            v.write().seed_links(links);
        }
    }

    /// Address peers should connect to.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Live counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Compiles and publishes `f` as a new filter epoch (an operator
    /// install; the attached orchestrator's refresh takes the same path).
    /// Sessions observe the swap on their next judged update; none is
    /// interrupted. The per-epoch counter slot is reset *before* the
    /// epoch becomes visible, so its counts are attributable exactly.
    pub fn install_filters(&self, f: FilterSet) {
        let compiled = self.filters.compile_next(&f);
        self.stats.begin_epoch(compiled.epoch());
        let e = self.filters.publish(compiled);
        self.stats.filter_epoch.store(e, Ordering::Release);
    }

    /// The filter publication handle (share with e.g. the query layer's
    /// `/filters` endpoint, or hold to publish epochs directly).
    pub fn filter_handle(&self) -> &Arc<FilterHandle> {
        &self.filters
    }

    /// A fresh handle onto the shared session pipeline (its own filter
    /// view cache, everything else shared), for wiring additional ingest
    /// paths (e.g. a BMP listener pool) into the same filters, counters,
    /// stream sink and bounded storage queue as the BGP sessions this
    /// pool accepts.
    pub fn session_ctx(&self) -> SessionCtx {
        SessionCtx {
            filters: self.filters.view(),
            queue: self.queue_tx.clone(),
            stats: self.stats.clone(),
            validator: self.validator.clone(),
            forwarder: Some(self.forwarder.clone()),
            mirror: Some(self.mirror_tx.clone()),
            mirror_on: self.mirror_on.clone(),
            sink: self.sink.clone(),
            shutdown: self.stop.clone(),
        }
    }

    /// Sessions currently being served by this pool's accept loop.
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::Relaxed)
    }

    /// Wires `orch` into the live pool as the §8 background refresh
    /// driver: sessions tee their unfiltered stream into the bounded
    /// mirror channel, a background thread drains it into the
    /// orchestrator, and every `interval` a retraining run compiles and
    /// publishes a new filter epoch — without dropping a single session.
    /// Errors if an orchestrator is already attached.
    pub fn attach_orchestrator(
        &mut self,
        orch: Orchestrator,
        interval: Duration,
    ) -> io::Result<()> {
        let rx = self.mirror_rx.take().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::AlreadyExists,
                "orchestrator already attached",
            )
        })?;
        self.mirror_on.store(true, Ordering::Relaxed);
        let handle = self.filters.clone();
        let stats = self.stats.clone();
        let stop = self.stop.clone();
        self.refresh_thread = Some(std::thread::spawn(move || {
            run_refresh_driver(orch, rx, handle, stats, stop, interval)
        }));
        Ok(())
    }

    /// Drains the retained-update queue into `storage` until the pool is
    /// stopped and the queue is empty, then flushes the backend so buffered
    /// state (e.g. unsealed store segments) reaches disk. Run this on the
    /// storage thread.
    pub fn drain_into<S: Storage>(&self, storage: &mut S) {
        loop {
            match self.queue_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(rec) => storage.store(rec),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if self.stop.load(Ordering::Relaxed) && self.queue_rx.is_empty() {
                        break;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        storage.flush();
    }

    /// A sender handle usable to inject updates bypassing TCP (tests,
    /// mirroring).
    pub fn injector(&self) -> Sender<StoredUpdate> {
        self.queue_tx.clone()
    }

    /// Signals shutdown without joining the accept thread (usable through
    /// a shared reference, e.g. from inside a thread scope while
    /// [`DaemonPool::drain_into`] runs elsewhere).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stops the pool: closes the listener, signals every session (they
    /// send a NOTIFICATION Cease and close), and joins session threads
    /// with a bounded deadline. Returns once everything joined or the
    /// deadline passed (stragglers are detached, not leaked handles).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.refresh_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = self.session_threads.lock().drain(..).collect();
        let _stragglers = join_with_deadline(handles, Duration::from_secs(3));
    }
}

/// 503-style accept rejection: the cap is reached, so tell the peer to
/// go away (NOTIFICATION Cease — the standard administrative-shutdown
/// signal) and close, without spawning anything. Shared with the
/// evented runtime's acceptor so both runtimes shed identically.
pub fn reject_over_capacity(stream: TcpStream, stats: &DaemonStats) {
    stats.accept_rejected.fetch_add(1, Ordering::Relaxed);
    let mut ms = MessageStream::new(stream);
    let _ = ms.write_message(&BgpMessage::Notification(Notification::cease()));
    Transport::shutdown(&mut ms.transport);
}

/// The orchestrator refresh loop: drain the mirror channel in batches,
/// retrain every `interval`, publish the compiled result as a new epoch.
/// The first run refreshes both components (anchors need one); later runs
/// are component-#1-only, matching §7's schedule shape.
fn run_refresh_driver(
    mut orch: Orchestrator,
    rx: Receiver<BgpUpdate>,
    handle: Arc<FilterHandle>,
    stats: Arc<DaemonStats>,
    stop: Arc<AtomicBool>,
    interval: Duration,
) {
    let t0 = std::time::Instant::now();
    let mut last_refresh = std::time::Instant::now();
    let mut first = true;
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(u) => {
                // batch whatever else is already queued to amortize
                orch.observe(std::iter::once(u).chain(rx.try_iter().take(4096)));
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if last_refresh.elapsed() >= interval && orch.mirror_len() > 0 {
            let now = Timestamp::from_millis(t0.elapsed().as_millis() as u64);
            orch.force_refresh(now, first);
            first = false;
            let compiled = handle.compile_next(orch.filters());
            stats.begin_epoch(compiled.epoch());
            let e = handle.publish(compiled);
            stats.filter_epoch.store(e, Ordering::Release);
            last_refresh = std::time::Instant::now();
        }
        if stop.load(Ordering::Relaxed) && rx.is_empty() {
            return;
        }
    }
}

impl Drop for DaemonPool {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use bgp_types::{Asn, Prefix, UpdateBuilder};
    use bgp_wire::{Notification, UpdateMessage};
    use gill_core::FilterGranularity;

    fn send_updates(addr: std::net::SocketAddr, asn: u32, prefixes: &[u32]) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, asn).unwrap();
        for &p in prefixes {
            let u = UpdateBuilder::announce(VpId::from_asn(Asn(asn)), Prefix::synthetic(p))
                .path([asn, 2, 3])
                .build();
            let wire = UpdateMessage::from_domain(&u).unwrap();
            ms.write_message(&BgpMessage::Update(wire)).unwrap();
        }
        // graceful close
        ms.write_message(&BgpMessage::Notification(Notification::cease()))
            .unwrap();
    }

    /// Waits until the pool has received `expect` updates (bounded wait).
    fn wait_received(pool: &DaemonPool, expect: usize) {
        for _ in 0..200 {
            if pool.stats().received.load(Ordering::Relaxed) >= expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Waits until `cond` holds (bounded, for counters without a channel).
    fn wait_until(cond: impl Fn() -> bool) -> bool {
        for _ in 0..500 {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn end_to_end_session_stores_updates() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        let addr = pool.local_addr();
        std::thread::spawn(move || send_updates(addr, 65001, &[1, 2, 3]))
            .join()
            .unwrap();
        wait_received(&pool, 3);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 3);
        assert_eq!(pool.stats().received.load(Ordering::Relaxed), 3);
        assert_eq!(pool.stats().retained.load(Ordering::Relaxed), 3);
        assert_eq!(pool.stats().lost.load(Ordering::Relaxed), 0);
        assert_eq!(pool.stats().sessions_opened.load(Ordering::Relaxed), 1);
        // VP identity comes from the OPEN handshake
        assert!(storage
            .updates
            .iter()
            .all(|u| u.vp == VpId::from_asn(Asn(65001))));
    }

    #[test]
    fn filters_drop_matching_updates() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        // drop (vp 65002, prefix 1)
        let template = UpdateBuilder::announce(VpId::from_asn(Asn(65002)), Prefix::synthetic(1))
            .path([65002, 9])
            .build();
        pool.install_filters(FilterSet::generate(
            [],
            [&template],
            FilterGranularity::VpPrefix,
        ));
        let addr = pool.local_addr();
        std::thread::spawn(move || send_updates(addr, 65002, &[1, 2]))
            .join()
            .unwrap();
        wait_received(&pool, 2);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 1);
        assert_eq!(pool.stats().filtered.load(Ordering::Relaxed), 1);
        assert_eq!(storage.updates[0].prefix, Prefix::synthetic(2));
    }

    #[test]
    fn overload_counts_losses() {
        let mut pool = DaemonPool::start(
            "127.0.0.1:0",
            DaemonConfig {
                queue_capacity: 4,
                ..DaemonConfig::default()
            },
        )
        .unwrap();
        let addr = pool.local_addr();
        // nobody drains the queue while 50 updates arrive
        std::thread::spawn(move || send_updates(addr, 65003, &(0..50).collect::<Vec<_>>()))
            .join()
            .unwrap();
        wait_received(&pool, 50);
        pool.stop();
        let lost = pool.stats().lost.load(Ordering::Relaxed);
        let retained = pool.stats().retained.load(Ordering::Relaxed);
        assert_eq!(retained, 4, "queue capacity bounds retained");
        assert_eq!(lost, 46);
        assert!(pool.stats().loss_rate() > 0.9);
    }

    #[test]
    fn multiple_concurrent_peers() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        let addr = pool.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|k| std::thread::spawn(move || send_updates(addr, 65100 + k, &[k, k + 1])))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        wait_received(&pool, 16);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 16);
        let vps: std::collections::BTreeSet<VpId> = storage.updates.iter().map(|u| u.vp).collect();
        assert_eq!(vps.len(), 8);
        assert_eq!(pool.stats().sessions_opened.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn garbage_handshake_counts_as_failure() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        let addr = pool.local_addr();
        {
            let mut s = TcpStream::connect(addr).unwrap();
            std::io::Write::write_all(&mut s, b"not a bgp open").unwrap();
        }
        assert!(
            wait_until(|| pool.stats().handshake_failures.load(Ordering::Relaxed) >= 1),
            "garbage handshake must be counted"
        );
        pool.stop();
        assert_eq!(pool.stats().sessions_opened.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn same_peer_reconnecting_is_counted() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        let addr = pool.local_addr();
        for round in 0..2 {
            std::thread::spawn(move || send_updates(addr, 65042, &[round]))
                .join()
                .unwrap();
            wait_received(&pool, round as usize + 1);
        }
        assert!(
            wait_until(|| pool.stats().sessions_closed.load(Ordering::Relaxed) >= 2),
            "both sessions should close"
        );
        pool.stop();
        assert_eq!(pool.stats().sessions_opened.load(Ordering::Relaxed), 2);
        assert_eq!(pool.stats().reconnects.load(Ordering::Relaxed), 1);
    }
}

#[cfg(test)]
mod services_tests {
    use super::*;
    use crate::forwarding::ForwardRule;
    use crate::storage::MemoryStorage;
    use bgp_types::{Asn, Link, Prefix, UpdateBuilder};
    use bgp_wire::{Notification, UpdateMessage};

    fn send_raw(addr: std::net::SocketAddr, asn: u32, updates: Vec<bgp_types::BgpUpdate>) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, asn).unwrap();
        for u in updates {
            let wire = UpdateMessage::from_domain(&u).unwrap();
            ms.write_message(&BgpMessage::Update(wire)).unwrap();
        }
        ms.write_message(&BgpMessage::Notification(Notification::cease()))
            .unwrap();
    }

    fn wait_received(pool: &DaemonPool, expect: usize) {
        for _ in 0..200 {
            if pool.stats().received.load(Ordering::Relaxed) >= expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn validation_drops_spoofed_first_hop() {
        let mut pool = DaemonPool::start(
            "127.0.0.1:0",
            DaemonConfig {
                validate: true,
                ..DaemonConfig::default()
            },
        )
        .unwrap();
        pool.seed_validator([Link::new(Asn(2), Asn(3))]);
        let addr = pool.local_addr();
        let vp = VpId::from_asn(Asn(65001));
        let good = UpdateBuilder::announce(vp, Prefix::synthetic(1))
            .path([65001, 2, 3])
            .build();
        // path does not start with the peering AS: spoofed
        let spoofed = UpdateBuilder::announce(vp, Prefix::synthetic(2))
            .path([9999, 2, 3])
            .build();
        std::thread::spawn(move || send_raw(addr, 65001, vec![good, spoofed]))
            .join()
            .unwrap();
        wait_received(&pool, 2);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 1, "spoofed update must be dropped");
        assert_eq!(pool.stats().invalid.load(Ordering::Relaxed), 1);
        assert_eq!(storage.updates[0].prefix, Prefix::synthetic(1));
    }

    #[test]
    fn forwarding_tee_bypasses_filters() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        // filters drop everything this peer sends for prefix 1
        let vp = VpId::from_asn(Asn(65002));
        let template = UpdateBuilder::announce(vp, Prefix::synthetic(1))
            .path([65002, 2])
            .build();
        pool.install_filters(FilterSet::generate(
            [],
            [&template],
            gill_core::FilterGranularity::VpPrefix,
        ));
        // ...but the operator subscribed to that prefix
        let (_, sub) = pool.subscribe(vec![ForwardRule::for_prefix(Prefix::synthetic(1))]);
        let addr = pool.local_addr();
        let u = UpdateBuilder::announce(vp, Prefix::synthetic(1))
            .path([65002, 9, 4])
            .build();
        std::thread::spawn(move || send_raw(addr, 65002, vec![u]))
            .join()
            .unwrap();
        wait_received(&pool, 1);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 0, "filters discarded the update");
        let got: Vec<_> = sub.feed.try_iter().collect();
        assert_eq!(got.len(), 1, "but the subscriber still received it");
        assert_eq!(pool.stats().forwarded.load(Ordering::Relaxed), 1);
    }
}
