//! The per-peer BGP daemon (§8).
//!
//! Each daemon owns exactly one BGP session: it performs the OPEN
//! handshake, receives UPDATEs, applies GILL's filters, and hands retained
//! updates to a **bounded** storage queue. When the queue is full the
//! update is *lost* — the quantity Table 1 measures under load. Filters can
//! be swapped at runtime by the orchestrator (§7's periodic refresh).

use crate::forwarding::Forwarder;
use crate::storage::{Storage, StoredUpdate};
use crate::validator::{UpdateValidator, Verdict};
use bgp_types::{Timestamp, VpId};
use bgp_wire::{BgpMessage, Notification, OpenMessage, WireError};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use gill_core::FilterSet;
use parking_lot::RwLock;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// The collector's AS number sent in our OPEN.
    pub local_asn: u32,
    /// Hold time we propose.
    pub hold_time: u16,
    /// Capacity of the bounded storage queue (shared by the pool).
    pub queue_capacity: usize,
    /// Run the §14 validity checks on incoming updates (hard violations
    /// are dropped and counted; suspicious updates are stored but
    /// counted as quarantined).
    pub validate: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            local_asn: 65535,
            hold_time: 240,
            queue_capacity: 1024,
            validate: false,
        }
    }
}

/// Counters exposed by a running daemon (pool).
#[derive(Default, Debug)]
pub struct DaemonStats {
    /// UPDATE messages received.
    pub received: AtomicUsize,
    /// Updates that passed the filters and were queued for storage.
    pub retained: AtomicUsize,
    /// Updates discarded by the filters (by design).
    pub filtered: AtomicUsize,
    /// Updates lost because the storage queue was full (overload).
    pub lost: AtomicUsize,
    /// Updates rejected by the §14 validity checks.
    pub invalid: AtomicUsize,
    /// Updates stored but flagged suspicious (§14 quarantine).
    pub quarantined: AtomicUsize,
    /// Updates forwarded to operator subscriptions (§14 services).
    pub forwarded: AtomicUsize,
}

impl DaemonStats {
    /// Proportion of received updates lost to overload.
    pub fn loss_rate(&self) -> f64 {
        let rx = self.received.load(Ordering::Relaxed);
        if rx == 0 {
            0.0
        } else {
            self.lost.load(Ordering::Relaxed) as f64 / rx as f64
        }
    }
}

/// A framed BGP session over a TCP stream: keeps a persistent receive
/// buffer so coalesced messages in one TCP segment are never dropped.
pub struct MessageStream {
    stream: TcpStream,
    buf: BytesMut,
    chunk: Box<[u8; 16 * 1024]>,
}

impl MessageStream {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        MessageStream {
            stream,
            buf: BytesMut::new(),
            chunk: Box::new([0u8; 16 * 1024]),
        }
    }

    /// Writes one message.
    pub fn write_message(&mut self, msg: &BgpMessage) -> std::io::Result<()> {
        let bytes = msg
            .encode_to_vec()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        self.stream.write_all(&bytes)
    }

    /// Reads the next message (blocking). `Ok(None)` means the peer closed
    /// the connection cleanly at a message boundary.
    pub fn read_message(&mut self) -> std::io::Result<Option<BgpMessage>> {
        loop {
            match BgpMessage::decode(&mut self.buf) {
                Ok(Some(m)) => return Ok(Some(m)),
                Ok(None) => {}
                Err(WireError::BadMarker) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "desynchronized",
                    ))
                }
                Err(e) => return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut self.chunk[..])?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-message",
                ));
            }
            self.buf.extend_from_slice(&self.chunk[..n]);
        }
    }

    fn expect_message(&mut self, what: &str) -> std::io::Result<BgpMessage> {
        self.read_message()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("peer closed while waiting for {what}"),
            )
        })
    }
}

/// Server side of the OPEN handshake on an accepted connection. Returns
/// the peer's identity.
pub fn handshake_server(s: &mut MessageStream, cfg: &DaemonConfig) -> std::io::Result<VpId> {
    let BgpMessage::Open(open) = s.expect_message("OPEN")? else {
        return Err(bad_proto("expected OPEN"));
    };
    s.write_message(&BgpMessage::Open(OpenMessage::new(
        bgp_types::Asn(cfg.local_asn),
        cfg.hold_time,
        std::net::Ipv4Addr::new(10, 255, 0, 254),
    )))?;
    s.write_message(&BgpMessage::Keepalive)?;
    match s.expect_message("KEEPALIVE")? {
        BgpMessage::Keepalive => Ok(VpId::from_asn(open.asn)),
        _ => Err(bad_proto("expected KEEPALIVE")),
    }
}

/// Client side of the handshake (used by the fake peers of §8's load test
/// and by operators' routers in the real deployment).
pub fn handshake_client(s: &mut MessageStream, asn: u32) -> std::io::Result<()> {
    s.write_message(&BgpMessage::Open(OpenMessage::new(
        bgp_types::Asn(asn),
        240,
        std::net::Ipv4Addr::new(10, 255, 0, 1),
    )))?;
    let BgpMessage::Open(_) = s.expect_message("OPEN")? else {
        return Err(bad_proto("expected OPEN"));
    };
    s.write_message(&BgpMessage::Keepalive)?;
    match s.expect_message("KEEPALIVE")? {
        BgpMessage::Keepalive => Ok(()),
        _ => Err(bad_proto("expected KEEPALIVE")),
    }
}

fn bad_proto(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Runs one established session: read UPDATEs until EOF/NOTIFICATION,
/// filter, enqueue. The reception clock is the elapsed time since session
/// start.
pub fn run_session(
    mut s: MessageStream,
    vp: VpId,
    filters: Arc<RwLock<FilterSet>>,
    queue: Sender<StoredUpdate>,
    stats: Arc<DaemonStats>,
) -> std::io::Result<()> {
    run_session_with(&mut s, vp, filters, queue, stats, None, None)
}

/// [`run_session`] with the optional §14 services: a validator (shared by
/// the pool so its knowledge base accumulates across sessions) and a
/// forwarder tee evaluated *before* the discard stage.
#[allow(clippy::too_many_arguments)]
pub fn run_session_with(
    s: &mut MessageStream,
    vp: VpId,
    filters: Arc<RwLock<FilterSet>>,
    queue: Sender<StoredUpdate>,
    stats: Arc<DaemonStats>,
    validator: Option<Arc<RwLock<UpdateValidator>>>,
    forwarder: Option<Arc<RwLock<Forwarder>>>,
) -> std::io::Result<()> {
    let start = Instant::now();
    loop {
        let Some(msg) = s.read_message()? else {
            return Ok(()); // peer closed
        };
        match msg {
            BgpMessage::Update(u) => {
                let now = Timestamp::from_millis(start.elapsed().as_millis() as u64);
                for mut domain in u.to_domain(vp, now) {
                    domain.time = now;
                    stats.received.fetch_add(1, Ordering::Relaxed);
                    if let Some(v) = &validator {
                        match v.write().validate(vp.asn, &domain) {
                            Verdict::Invalid(_) => {
                                stats.invalid.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            Verdict::Quarantine(_) => {
                                stats.quarantined.fetch_add(1, Ordering::Relaxed);
                            }
                            Verdict::Valid => {}
                        }
                    }
                    if let Some(f) = &forwarder {
                        let mut fw = f.write();
                        let before = fw.forwarded;
                        fw.offer(&domain);
                        stats
                            .forwarded
                            .fetch_add(fw.forwarded - before, Ordering::Relaxed);
                    }
                    let keep = filters.read().accepts(&domain);
                    if !keep {
                        stats.filtered.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    match queue.try_send(StoredUpdate { update: domain }) {
                        Ok(()) => {
                            stats.retained.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(_)) => {
                            stats.lost.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Disconnected(_)) => return Ok(()),
                    }
                }
            }
            BgpMessage::Keepalive => {}
            BgpMessage::Notification(_) => return Ok(()),
            BgpMessage::Open(_) => {
                let _ = s.write_message(&BgpMessage::Notification(Notification::cease()));
                return Err(bad_proto("unexpected OPEN in established state"));
            }
        }
    }
}

/// A listening daemon pool: accepts sessions on one listener, spawning one
/// session thread per peer (the paper's "custom BGP daemon tailored to
/// peer with a single BGP router", multiplied).
pub struct DaemonPool {
    stats: Arc<DaemonStats>,
    filters: Arc<RwLock<FilterSet>>,
    validator: Option<Arc<RwLock<UpdateValidator>>>,
    forwarder: Arc<RwLock<Forwarder>>,
    queue_rx: Receiver<StoredUpdate>,
    queue_tx: Sender<StoredUpdate>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    local_addr: std::net::SocketAddr,
}

impl DaemonPool {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting peers.
    pub fn start(addr: &str, cfg: DaemonConfig) -> std::io::Result<DaemonPool> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (queue_tx, queue_rx) = bounded(cfg.queue_capacity);
        let stats = Arc::new(DaemonStats::default());
        let filters = Arc::new(RwLock::new(FilterSet::default()));
        let validator = cfg
            .validate
            .then(|| Arc::new(RwLock::new(UpdateValidator::new())));
        let forwarder = Arc::new(RwLock::new(Forwarder::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stats = stats.clone();
            let filters = filters.clone();
            let validator = validator.clone();
            let forwarder = forwarder.clone();
            let queue_tx = queue_tx.clone();
            let stop = stop.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false).ok();
                            let stats = stats.clone();
                            let filters = filters.clone();
                            let validator = validator.clone();
                            let forwarder = forwarder.clone();
                            let queue_tx = queue_tx.clone();
                            let cfg = cfg.clone();
                            std::thread::spawn(move || {
                                let mut ms = MessageStream::new(stream);
                                if let Ok(vp) = handshake_server(&mut ms, &cfg) {
                                    let _ = run_session_with(
                                        &mut ms,
                                        vp,
                                        filters,
                                        queue_tx,
                                        stats,
                                        validator,
                                        Some(forwarder),
                                    );
                                }
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(DaemonPool {
            stats,
            filters,
            validator,
            forwarder,
            queue_rx,
            queue_tx,
            stop,
            accept_thread: Some(accept_thread),
            local_addr,
        })
    }

    /// Registers an operator forwarding subscription (§14): matching
    /// updates are delivered on the returned handle *before* the discard
    /// stage. Returns the subscription id and handle.
    pub fn subscribe(
        &self,
        rules: Vec<crate::forwarding::ForwardRule>,
    ) -> (u64, crate::forwarding::Subscription) {
        self.forwarder.write().subscribe(rules)
    }

    /// Removes a forwarding subscription.
    pub fn unsubscribe(&self, id: u64) {
        self.forwarder.write().unsubscribe(id);
    }

    /// Seeds the validator's link knowledge base (no-op when validation is
    /// disabled).
    pub fn seed_validator<I: IntoIterator<Item = bgp_types::Link>>(&self, links: I) {
        if let Some(v) = &self.validator {
            v.write().seed_links(links);
        }
    }

    /// Address peers should connect to.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Live counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Atomically replaces the filters (the orchestrator's refresh).
    pub fn install_filters(&self, f: FilterSet) {
        *self.filters.write() = f;
    }

    /// Drains the retained-update queue into `storage` until the pool is
    /// stopped and the queue is empty. Run this on the storage thread.
    pub fn drain_into<S: Storage>(&self, storage: &mut S) {
        loop {
            match self.queue_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(rec) => storage.store(&rec),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    if self.stop.load(Ordering::Relaxed) && self.queue_rx.is_empty() {
                        return;
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// A sender handle usable to inject updates bypassing TCP (tests,
    /// mirroring).
    pub fn injector(&self) -> Sender<StoredUpdate> {
        self.queue_tx.clone()
    }

    /// Signals shutdown without joining the accept thread (usable through
    /// a shared reference, e.g. from inside a thread scope while
    /// [`DaemonPool::drain_into`] runs elsewhere).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Stops accepting; session threads exit as peers disconnect.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DaemonPool {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemoryStorage;
    use bgp_types::{Asn, Prefix, UpdateBuilder};
    use bgp_wire::UpdateMessage;
    use gill_core::FilterGranularity;

    fn send_updates(addr: std::net::SocketAddr, asn: u32, prefixes: &[u32]) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, asn).unwrap();
        for &p in prefixes {
            let u = UpdateBuilder::announce(VpId::from_asn(Asn(asn)), Prefix::synthetic(p))
                .path([asn, 2, 3])
                .build();
            let wire = UpdateMessage::from_domain(&u).unwrap();
            ms.write_message(&BgpMessage::Update(wire)).unwrap();
        }
        // graceful close
        ms.write_message(&BgpMessage::Notification(Notification::cease()))
            .unwrap();
    }

    /// Waits until the pool has received `expect` updates (bounded wait).
    fn wait_received(pool: &DaemonPool, expect: usize) {
        for _ in 0..200 {
            if pool.stats().received.load(Ordering::Relaxed) >= expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn end_to_end_session_stores_updates() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        let addr = pool.local_addr();
        std::thread::spawn(move || send_updates(addr, 65001, &[1, 2, 3]))
            .join()
            .unwrap();
        wait_received(&pool, 3);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 3);
        assert_eq!(pool.stats().received.load(Ordering::Relaxed), 3);
        assert_eq!(pool.stats().retained.load(Ordering::Relaxed), 3);
        assert_eq!(pool.stats().lost.load(Ordering::Relaxed), 0);
        // VP identity comes from the OPEN handshake
        assert!(storage
            .updates
            .iter()
            .all(|u| u.vp == VpId::from_asn(Asn(65001))));
    }

    #[test]
    fn filters_drop_matching_updates() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        // drop (vp 65002, prefix 1)
        let template = UpdateBuilder::announce(VpId::from_asn(Asn(65002)), Prefix::synthetic(1))
            .path([65002, 9])
            .build();
        pool.install_filters(FilterSet::generate(
            [],
            [&template],
            FilterGranularity::VpPrefix,
        ));
        let addr = pool.local_addr();
        std::thread::spawn(move || send_updates(addr, 65002, &[1, 2]))
            .join()
            .unwrap();
        wait_received(&pool, 2);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 1);
        assert_eq!(pool.stats().filtered.load(Ordering::Relaxed), 1);
        assert_eq!(storage.updates[0].prefix, Prefix::synthetic(2));
    }

    #[test]
    fn overload_counts_losses() {
        let mut pool = DaemonPool::start(
            "127.0.0.1:0",
            DaemonConfig {
                queue_capacity: 4,
                ..DaemonConfig::default()
            },
        )
        .unwrap();
        let addr = pool.local_addr();
        // nobody drains the queue while 50 updates arrive
        std::thread::spawn(move || send_updates(addr, 65003, &(0..50).collect::<Vec<_>>()))
            .join()
            .unwrap();
        wait_received(&pool, 50);
        pool.stop();
        let lost = pool.stats().lost.load(Ordering::Relaxed);
        let retained = pool.stats().retained.load(Ordering::Relaxed);
        assert_eq!(retained, 4, "queue capacity bounds retained");
        assert_eq!(lost, 46);
        assert!(pool.stats().loss_rate() > 0.9);
    }

    #[test]
    fn multiple_concurrent_peers() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        let addr = pool.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|k| std::thread::spawn(move || send_updates(addr, 65100 + k, &[k, k + 1])))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        wait_received(&pool, 16);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 16);
        let vps: std::collections::BTreeSet<VpId> = storage.updates.iter().map(|u| u.vp).collect();
        assert_eq!(vps.len(), 8);
    }
}

#[cfg(test)]
mod services_tests {
    use super::*;
    use crate::forwarding::ForwardRule;
    use crate::storage::MemoryStorage;
    use bgp_types::{Asn, Link, Prefix, UpdateBuilder};
    use bgp_wire::UpdateMessage;

    fn send_raw(addr: std::net::SocketAddr, asn: u32, updates: Vec<bgp_types::BgpUpdate>) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut ms = MessageStream::new(stream);
        handshake_client(&mut ms, asn).unwrap();
        for u in updates {
            let wire = UpdateMessage::from_domain(&u).unwrap();
            ms.write_message(&BgpMessage::Update(wire)).unwrap();
        }
        ms.write_message(&BgpMessage::Notification(Notification::cease()))
            .unwrap();
    }

    fn wait_received(pool: &DaemonPool, expect: usize) {
        for _ in 0..200 {
            if pool.stats().received.load(Ordering::Relaxed) >= expect {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn validation_drops_spoofed_first_hop() {
        let mut pool = DaemonPool::start(
            "127.0.0.1:0",
            DaemonConfig {
                validate: true,
                ..DaemonConfig::default()
            },
        )
        .unwrap();
        pool.seed_validator([Link::new(Asn(2), Asn(3))]);
        let addr = pool.local_addr();
        let vp = VpId::from_asn(Asn(65001));
        let good = UpdateBuilder::announce(vp, Prefix::synthetic(1))
            .path([65001, 2, 3])
            .build();
        // path does not start with the peering AS: spoofed
        let spoofed = UpdateBuilder::announce(vp, Prefix::synthetic(2))
            .path([9999, 2, 3])
            .build();
        std::thread::spawn(move || send_raw(addr, 65001, vec![good, spoofed]))
            .join()
            .unwrap();
        wait_received(&pool, 2);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 1, "spoofed update must be dropped");
        assert_eq!(pool.stats().invalid.load(Ordering::Relaxed), 1);
        assert_eq!(storage.updates[0].prefix, Prefix::synthetic(1));
    }

    #[test]
    fn forwarding_tee_bypasses_filters() {
        let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default()).unwrap();
        // filters drop everything this peer sends for prefix 1
        let vp = VpId::from_asn(Asn(65002));
        let template = UpdateBuilder::announce(vp, Prefix::synthetic(1))
            .path([65002, 2])
            .build();
        pool.install_filters(FilterSet::generate(
            [],
            [&template],
            gill_core::FilterGranularity::VpPrefix,
        ));
        // ...but the operator subscribed to that prefix
        let (_, sub) = pool.subscribe(vec![ForwardRule::for_prefix(Prefix::synthetic(1))]);
        let addr = pool.local_addr();
        let u = UpdateBuilder::announce(vp, Prefix::synthetic(1))
            .path([65002, 9, 4])
            .build();
        std::thread::spawn(move || send_raw(addr, 65002, vec![u]))
            .join()
            .unwrap();
        wait_received(&pool, 1);
        pool.stop();
        let mut storage = MemoryStorage::default();
        pool.drain_into(&mut storage);
        assert_eq!(storage.updates.len(), 0, "filters discarded the update");
        let got: Vec<_> = sub.feed.try_iter().collect();
        assert_eq!(got.len(), 1, "but the subscriber still received it");
        assert_eq!(pool.stats().forwarded.load(Ordering::Relaxed), 1);
    }
}
