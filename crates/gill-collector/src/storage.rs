//! Storage backends for retained updates.
//!
//! The daemon's dominant cost is persisting updates (§8: "less data is
//! written to disk, which is the most time-consuming task of our daemon").
//! Backends implement [`Storage`]; [`SlowStorage`] wraps any backend with a
//! configurable per-record cost so the Table-1 load experiment can emulate
//! disk pressure deterministically.

use bgp_types::{BgpUpdate, Timestamp};
use bgp_wire::{BgpMessage, MrtRecord, MrtWriter, UpdateMessage};
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::time::Duration;

/// A retained update together with its reception time.
#[derive(Clone, Debug)]
pub struct StoredUpdate {
    /// The update (its `time` field is the reception timestamp).
    pub update: BgpUpdate,
}

/// A sink for retained updates.
pub trait Storage: Send {
    /// Persists one update. Records are taken by value: the daemon's drain
    /// loop owns each record exactly once, and passing ownership through
    /// lets in-memory backends keep it without a per-record clone (the hot
    /// path of §8's storage-bound daemon).
    fn store(&mut self, rec: StoredUpdate);

    /// Number of records persisted so far.
    fn stored(&self) -> usize;

    /// Flushes buffered state to durable storage (called when a drain loop
    /// stops). Backends without buffering can ignore it.
    fn flush(&mut self) {}
}

/// Keeps everything in memory (tests, analysis pipelines).
#[derive(Default)]
pub struct MemoryStorage {
    /// The stored updates.
    pub updates: Vec<BgpUpdate>,
}

impl Storage for MemoryStorage {
    fn store(&mut self, rec: StoredUpdate) {
        self.updates.push(rec.update);
    }

    fn stored(&self) -> usize {
        self.updates.len()
    }
}

/// Archives updates as MRT `BGP4MP_MESSAGE_AS4` records (§9's public
/// database format).
pub struct MrtStorage<W: Write + Send> {
    writer: MrtWriter<W>,
    local_as: u32,
}

impl<W: Write + Send> MrtStorage<W> {
    /// Wraps a writer; `local_as` is the collector's AS in the records.
    pub fn new(inner: W, local_as: u32) -> Self {
        MrtStorage {
            writer: MrtWriter::new(inner),
            local_as,
        }
    }

    /// Finishes and returns the inner writer.
    pub fn into_inner(self) -> std::io::Result<W> {
        self.writer.into_inner()
    }
}

impl<W: Write + Send> Storage for MrtStorage<W> {
    fn store(&mut self, rec: StoredUpdate) {
        let Ok(msg) = UpdateMessage::from_domain(&rec.update) else {
            return;
        };
        let msg = msg.without_path_ids();
        // record addresses follow the route's family so v6 days archive
        // as AFI-2 BGP4MP records
        let (peer_ip, local_ip) = if rec.update.prefix.is_ipv6() {
            (
                IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0xff, 0, 0, 0, 0, 1)),
                IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0xff, 0, 0, 0, 0, 0xfe)),
            )
        } else {
            (
                IpAddr::V4(Ipv4Addr::new(10, 255, 0, 1)),
                IpAddr::V4(Ipv4Addr::new(10, 255, 0, 254)),
            )
        };
        let record = MrtRecord {
            time: rec.update.time,
            peer_as: rec.update.vp.asn,
            local_as: bgp_types::Asn(self.local_as),
            peer_ip,
            local_ip,
            message: BgpMessage::Update(msg),
        };
        let _ = self.writer.write_record(&record);
    }

    fn stored(&self) -> usize {
        self.writer.records_written()
    }
}

/// Adds a fixed CPU cost per stored record (busy loop, so the cost is CPU
/// time like real serialization + syscall work, not just sleep).
pub struct SlowStorage<S: Storage> {
    inner: S,
    cost: Duration,
}

impl<S: Storage> SlowStorage<S> {
    /// Wraps `inner` with `cost` per record.
    pub fn new(inner: S, cost: Duration) -> Self {
        SlowStorage { inner, cost }
    }

    /// The wrapped backend.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Storage> Storage for SlowStorage<S> {
    fn store(&mut self, rec: StoredUpdate) {
        let start = std::time::Instant::now();
        self.inner.store(rec);
        while start.elapsed() < self.cost {
            std::hint::spin_loop();
        }
    }

    fn stored(&self) -> usize {
        self.inner.stored()
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// Convenience: wraps an update with a reception timestamp.
pub fn received(update: BgpUpdate, at: Timestamp) -> StoredUpdate {
    let mut u = update;
    u.time = at;
    StoredUpdate { update: u }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Asn, Prefix, UpdateBuilder, VpId};
    use bgp_wire::MrtReader;

    fn upd(pfx: u32) -> BgpUpdate {
        UpdateBuilder::announce(VpId::from_asn(Asn(65001)), Prefix::synthetic(pfx))
            .at(Timestamp::from_secs(1))
            .path([65001, 2, 3])
            .build()
    }

    #[test]
    fn memory_storage_counts() {
        let mut s = MemoryStorage::default();
        s.store(StoredUpdate { update: upd(1) });
        s.store(StoredUpdate { update: upd(2) });
        assert_eq!(s.stored(), 2);
        assert_eq!(s.updates.len(), 2);
    }

    #[test]
    fn mrt_storage_roundtrips_through_reader() {
        let mut s = MrtStorage::new(Vec::new(), 65535);
        for i in 0..5 {
            s.store(StoredUpdate { update: upd(i) });
        }
        assert_eq!(s.stored(), 5);
        let bytes = s.into_inner().unwrap();
        let mut r = MrtReader::new(&bytes[..]);
        let mut n = 0;
        while let Some(rec) = r.next_record().unwrap() {
            assert_eq!(rec.peer_as, Asn(65001));
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn slow_storage_takes_time() {
        let mut s = SlowStorage::new(MemoryStorage::default(), Duration::from_millis(3));
        let start = std::time::Instant::now();
        for i in 0..5 {
            s.store(StoredUpdate { update: upd(i) });
        }
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(s.stored(), 5);
    }

    #[test]
    fn received_overwrites_timestamp() {
        let r = received(upd(1), Timestamp::from_secs(99));
        assert_eq!(r.update.time, Timestamp::from_secs(99));
    }
}
