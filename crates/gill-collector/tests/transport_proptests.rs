//! Property tests for the transport layer's fault-schedule grammar,
//! kept next to the code they constrain (moved here from the root
//! integration suite): every randomly generated schedule must survive a
//! Display → parse round trip unchanged, so a schedule printed in a
//! failing test's output always reproduces the exact same fault pattern
//! when pasted back in.

use gill_collector::transport::FaultSchedule;
use proptest::prelude::*;

proptest! {
    #[test]
    fn fault_schedule_grammar_roundtrip(seed in any::<u64>(), span in 1u64..100_000) {
        let sched = FaultSchedule::random(seed, span);
        let text = sched.to_string();
        let back = FaultSchedule::parse(&text).unwrap();
        prop_assert_eq!(back, sched);
    }

    #[test]
    fn parse_rejects_garbage_without_panicking(noise in collection::vec(any::<u8>(), 0..48)) {
        // arbitrary bytes (lossily stringified) either parse into a
        // schedule that re-Displays consistently, or fail cleanly
        let text = String::from_utf8_lossy(&noise).into_owned();
        if let Ok(sched) = FaultSchedule::parse(&text) {
            let back = FaultSchedule::parse(&sched.to_string()).unwrap();
            prop_assert_eq!(back, sched);
        }
    }
}
