//! Core BGP data model for the GILL reproduction.
//!
//! This crate defines the value types shared by every other crate in the
//! workspace: autonomous-system numbers, IP prefixes, AS paths, BGP
//! communities, vantage points, timestamps, BGP updates with the exact
//! attribute set the paper uses (§4.2: `u(v, t, p, L, Lw, C, Cw)`), and a
//! per-VP Routing Information Base (RIB) that derives the implicitly
//! withdrawn link/community sets when a new update replaces a previous one.
//!
//! The types are deliberately small, `Copy` where possible, and hashable so
//! the redundancy algorithms in `gill-core` can use them as map keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod af;
pub mod asn;
pub mod community;
pub mod internid;
pub mod link;
pub mod path;
pub mod prefix;
pub mod rib;
pub mod time;
pub mod trie;
pub mod update;
pub mod vp;

#[cfg(feature = "testgen")]
pub mod testgen;

pub use af::{AddressFamily, FamilySet};
pub use asn::Asn;
pub use community::Community;
pub use internid::{CommSetId, LinkSetId, PathId, PrefixId};
pub use link::Link;
pub use path::AsPath;
pub use prefix::Prefix;
pub use rib::{Rib, RibEntry};
pub use time::Timestamp;
pub use trie::PrefixTrie;
pub use update::{BgpUpdate, UpdateBuilder, UpdateKind};
pub use vp::VpId;

/// Slack (in seconds) used throughout the paper when comparing update
/// timestamps: two updates are "at the same time" if their timestamps differ
/// by less than 100 s, accommodating typical BGP convergence delay (§4.2,
/// Condition 1; §17.2 footnote).
pub const TIME_SLACK_SECS: u64 = 100;

/// Slack in milliseconds (the internal clock resolution).
pub const TIME_SLACK_MILLIS: u64 = TIME_SLACK_SECS * 1000;
