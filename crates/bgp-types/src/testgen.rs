//! Shared proptest strategies (behind the `testgen` feature).
//!
//! Every suite that property-tests a codec over updates — the BGP wire
//! roundtrips, the stream frame codec — should draw from the *same*
//! distribution, so a generator fix or widening benefits all of them at
//! once. Keep strategies here instead of copying them between test files.

use crate::{Asn, BgpUpdate, Prefix, Timestamp, UpdateBuilder, VpId};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// An arbitrary IPv4 prefix (any bits, len 0..=32; the constructor masks
/// host bits).
pub fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::v4(Ipv4Addr::from(bits), len))
}

/// An arbitrary vantage point (ASN 1..100k, router id 0..4 so multi-router
/// VPs occur).
pub fn arb_vp() -> impl Strategy<Value = VpId> {
    (1u32..100_000, 0u16..4).prop_map(|(asn, router)| VpId::new(Asn(asn), router))
}

/// An arbitrary update: announcements carry a 1..8-hop path and up to 6
/// communities; withdrawals carry neither (matching the wire format).
pub fn arb_update() -> impl Strategy<Value = BgpUpdate> {
    (
        arb_vp(),
        0u64..10_000, // time secs
        arb_prefix_v4(),
        proptest::collection::vec(1u32..1_000_000, 1..8), // path
        proptest::collection::vec((0u16..60_000, 0u16..1_000), 0..6),
        any::<bool>(), // announce?
    )
        .prop_map(|(vp, t, prefix, path, comms, announce)| {
            if announce {
                let mut b = UpdateBuilder::announce(vp, prefix)
                    .at(Timestamp::from_secs(t))
                    .path(path);
                for (a, c) in comms {
                    b = b.community(a, c);
                }
                b.build()
            } else {
                UpdateBuilder::withdraw(vp, prefix)
                    .at(Timestamp::from_secs(t))
                    .build()
            }
        })
}
