//! Shared proptest strategies (behind the `testgen` feature).
//!
//! Every suite that property-tests a codec over updates — the BGP wire
//! roundtrips, the stream frame codec — should draw from the *same*
//! distribution, so a generator fix or widening benefits all of them at
//! once. Keep strategies here instead of copying them between test files.

use crate::{Asn, BgpUpdate, Prefix, Timestamp, UpdateBuilder, VpId};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

/// An arbitrary IPv4 prefix (any bits, len 0..=32; the constructor masks
/// host bits).
pub fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::v4(Ipv4Addr::from(bits), len))
}

/// An arbitrary IPv6 prefix (any bits, len 0..=128; the constructor masks
/// host bits).
pub fn arb_prefix_v6() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Prefix::v6(Ipv6Addr::from(bits), len))
}

/// An arbitrary prefix of either family — the dual-stack default every
/// family-aware codec and store proptest should draw from (v4-weighted
/// 2:1, roughly the collector's real mix).
pub fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        2 => arb_prefix_v4(),
        1 => arb_prefix_v6(),
    ]
}

/// An arbitrary ADD-PATH path identifier: usually absent (classic
/// session), sometimes a small id, occasionally an arbitrary one.
pub fn arb_path_id() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![
        3 => Just(None),
        2 => (0u32..8).prop_map(Some),
        1 => any::<u32>().prop_map(Some),
    ]
}

/// An arbitrary vantage point (ASN 1..100k, router id 0..4 so multi-router
/// VPs occur).
pub fn arb_vp() -> impl Strategy<Value = VpId> {
    (1u32..100_000, 0u16..4).prop_map(|(asn, router)| VpId::new(Asn(asn), router))
}

/// Campaign-shaped workload descriptor: the scenario vocabulary shared by
/// `gill-scenario`'s adversarial generators and plain proptests. Kept here
/// (rather than in `gill-scenario`) so strategy widenings reach every
/// consumer at once.
#[derive(Clone, Copy, Debug)]
pub struct CampaignShape {
    /// Window start, scenario milliseconds.
    pub start_ms: u64,
    /// Window length in milliseconds.
    pub duration_ms: u64,
    /// How many prefixes the campaign targets.
    pub n_targets: u32,
    /// Waves / flap cycles / flood rounds.
    pub repeats: u32,
    /// Adversary ASN, outside VP (65k+) and origin (10k+) ranges.
    pub actor: u32,
    /// Campaign randomness seed.
    pub seed: u64,
}

/// An arbitrary campaign shape: windows from seconds to minutes, target
/// counts and repeat counts that keep one generated campaign small enough
/// to verify exhaustively against its ground truth.
pub fn arb_campaign_shape() -> impl Strategy<Value = CampaignShape> {
    (
        0u64..3_600_000,
        1_000u64..300_000,
        1u32..12,
        1u32..6,
        64_000u32..65_000,
        any::<u64>(),
    )
        .prop_map(
            |(start_ms, duration_ms, n_targets, repeats, actor, seed)| CampaignShape {
                start_ms,
                duration_ms,
                n_targets,
                repeats,
                actor,
                seed,
            },
        )
}

/// A bursty arrival schedule: bursts of tightly spaced events separated by
/// long silences, sorted and strictly advancing. The shape the scenario
/// engine's background process produces, as a plain strategy for codecs and
/// stores that should survive clustered timestamps.
pub fn arb_bursty_schedule() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((500u64..60_000, 1usize..40, 1u64..80), 4..32).prop_map(|bursts| {
        let mut t = 0u64;
        let mut times = Vec::new();
        for (silence, len, intra) in bursts {
            t += silence;
            for _ in 0..len {
                t += intra;
                times.push(t);
            }
        }
        times
    })
}

/// A burst of updates whose timestamps follow a bursty schedule — the
/// high-fan-out input for broker/store proptests.
pub fn arb_update_burst() -> impl Strategy<Value = Vec<BgpUpdate>> {
    (
        arb_bursty_schedule(),
        proptest::collection::vec(arb_update(), 1..16),
    )
        .prop_map(|(times, palette)| {
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let mut u = palette[i % palette.len()].clone();
                    u.time = Timestamp::from_millis(t);
                    u
                })
                .collect()
        })
}

// ---------------------------------------------------------------------------
// BMP (RFC 7854) frame generators
// ---------------------------------------------------------------------------
//
// Byte-level on purpose: `bgp-types` sits below `bgp-wire` and `gill-bmp`,
// so it cannot name their codecs. Callers hand in palettes of already
// encoded BGP PDUs (UPDATEs for Route Monitoring, OPENs for Peer Up) and
// get back whole BMP frames — the one distribution every BMP fuzz suite
// should draw from.

/// Builds one BMP frame: 6-byte common header (version 3, u32 BE total
/// length, u8 type) followed by `body`.
fn bmp_frame(msg_type: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + body.len());
    out.push(3);
    out.extend_from_slice(&((6 + body.len()) as u32).to_be_bytes());
    out.push(msg_type);
    out.extend_from_slice(body);
    out
}

/// A 42-byte BMP per-peer header for a global-instance IPv4 peer.
fn bmp_peer_header(asn: u32, addr: u32, distinguisher: u64, ts_sec: u32) -> [u8; 42] {
    let mut h = [0u8; 42];
    h[2..10].copy_from_slice(&distinguisher.to_be_bytes());
    h[22..26].copy_from_slice(&addr.to_be_bytes()); // v4, right-justified
    h[26..30].copy_from_slice(&asn.to_be_bytes());
    h[30..34].copy_from_slice(&addr.to_be_bytes()); // BGP ID mirrors the addr
    h[34..38].copy_from_slice(&ts_sec.to_be_bytes());
    h
}

/// A BMP Information TLV (`kind`, length, value).
fn bmp_tlv(kind: u16, value: &[u8]) -> Vec<u8> {
    let mut t = Vec::with_capacity(4 + value.len());
    t.extend_from_slice(&kind.to_be_bytes());
    t.extend_from_slice(&(value.len() as u16).to_be_bytes());
    t.extend_from_slice(value);
    t
}

/// An arbitrary **valid** BMP v3 frame covering all six RFC 7854 message
/// types. `updates` supplies encoded BGP UPDATE PDUs (marker included) for
/// Route Monitoring bodies; `opens` supplies encoded OPEN PDUs for Peer
/// Up. Both palettes must be non-empty.
pub fn arb_bmp_frame(updates: Vec<Vec<u8>>, opens: Vec<Vec<u8>>) -> impl Strategy<Value = Vec<u8>> {
    assert!(!updates.is_empty(), "arb_bmp_frame: empty UPDATE palette");
    assert!(!opens.is_empty(), "arb_bmp_frame: empty OPEN palette");
    (
        0u8..6,              // message type
        1u32..100_000,       // peer ASN
        any::<u32>(),        // peer address bits
        any::<u64>(),        // route distinguisher
        0u32..2_000_000_000, // peer timestamp (secs)
        any::<u16>(),        // misc: stat type / FSM code / port
        0usize..1_024,       // palette pick
        any::<u32>(),        // counter value / extra selector
    )
        .prop_map(move |(ty, asn, addr, rd, ts, misc, pick, extra)| {
            let peer = bmp_peer_header(asn, addr, rd, ts);
            match ty {
                // Route Monitoring: peer header + one palette UPDATE
                0 => {
                    let mut body = peer.to_vec();
                    body.extend_from_slice(&updates[pick % updates.len()]);
                    bmp_frame(0, &body)
                }
                // Stats Report: one 4-byte counter + one 8-byte gauge
                1 => {
                    let mut body = peer.to_vec();
                    body.extend_from_slice(&2u32.to_be_bytes());
                    body.extend_from_slice(&bmp_tlv(misc % 7, &extra.to_be_bytes()));
                    body.extend_from_slice(&bmp_tlv(7, &(extra as u64).to_be_bytes()));
                    bmp_frame(1, &body)
                }
                // Peer Down: FSM-code, remote-no-data or deconfigured
                // (notification-carrying reasons live in the golden suite)
                2 => {
                    let mut body = peer.to_vec();
                    match misc % 3 {
                        0 => {
                            body.push(2); // local, FSM event code follows
                            body.extend_from_slice(&(extra as u16).to_be_bytes());
                        }
                        1 => body.push(4), // remote, no data
                        _ => body.push(5), // peer de-configured
                    }
                    bmp_frame(2, &body)
                }
                // Peer Up: local addr + ports + sent/recv OPEN + info TLV
                3 => {
                    let mut body = peer.to_vec();
                    let mut local = [0u8; 16];
                    local[12..].copy_from_slice(&extra.to_be_bytes());
                    body.extend_from_slice(&local);
                    body.extend_from_slice(&179u16.to_be_bytes());
                    body.extend_from_slice(&misc.to_be_bytes());
                    body.extend_from_slice(&opens[pick % opens.len()]);
                    body.extend_from_slice(&opens[(pick + 1) % opens.len()]);
                    body.extend_from_slice(&bmp_tlv(0, b"generated peer"));
                    bmp_frame(3, &body)
                }
                // Initiation: sysDescr + sysName TLVs
                4 => {
                    let mut body = bmp_tlv(1, b"gill testgen router");
                    body.extend_from_slice(&bmp_tlv(2, format!("r{asn}").as_bytes()));
                    bmp_frame(4, &body)
                }
                // Termination: reason string TLV, sometimes empty
                _ => {
                    let body = if misc % 2 == 0 {
                        bmp_tlv(0, b"session over")
                    } else {
                        Vec::new()
                    };
                    bmp_frame(5, &body)
                }
            }
        })
}

/// Applies one deterministic structural mutation to a BMP frame. The
/// mutation is chosen by `kind % 6` and parameterized by `a`/`b`, so a
/// failing input reproduces from the generated tuple alone: truncation,
/// length-field lies, version corruption, bit flips, byte splices, or
/// replacement with pure noise.
pub fn mutate_bmp_frame(mut frame: Vec<u8>, kind: u8, a: u32, b: u32) -> Vec<u8> {
    match kind % 6 {
        // truncate anywhere, including inside the 6-byte common header
        0 => {
            let at = a as usize % (frame.len() + 1);
            frame.truncate(at);
        }
        // lie in the u32 length field at offset 1: zero, below header
        // size, plausible-but-wrong, or absurdly large
        1 => {
            if frame.len() >= 5 {
                let lie: u32 = match b % 4 {
                    0 => 0,
                    1 => b % 6,
                    2 => 7 + (b % 4_096),
                    _ => 0x4000_0000 | b,
                };
                frame[1..5].copy_from_slice(&lie.to_be_bytes());
            }
        }
        // corrupt the version byte
        2 => frame[0] = (b % 256) as u8,
        // flip one bit
        3 => {
            let i = a as usize % frame.len();
            frame[i] ^= 1 << (b % 8);
        }
        // splice one byte
        4 => {
            let i = a as usize % frame.len();
            frame[i] = (b % 256) as u8;
        }
        // replace with noise of a plausible size (xorshift, no RNG dep)
        _ => {
            let n = a as usize % 96;
            let mut x = (u64::from(a) << 32 | u64::from(b)) | 1;
            frame = (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x & 0xff) as u8
                })
                .collect();
        }
    }
    frame
}

/// An arbitrary structurally-mutated BMP frame: a valid frame from
/// [`arb_bmp_frame`] put through one [`mutate_bmp_frame`] mutation.
/// Decoders must answer with a typed error or a clean parse — never a
/// panic.
pub fn arb_bmp_frame_mutated(
    updates: Vec<Vec<u8>>,
    opens: Vec<Vec<u8>>,
) -> impl Strategy<Value = Vec<u8>> {
    (
        arb_bmp_frame(updates, opens),
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(frame, kind, a, b)| mutate_bmp_frame(frame, kind, a, b))
}

/// An arbitrary update: announcements carry a 1..8-hop path and up to 6
/// communities; withdrawals carry neither (matching the wire format).
/// Draws mixed v4/v6 prefixes and occasionally an ADD-PATH path id, so
/// every codec/store proptest exercises the multiprotocol surface.
pub fn arb_update() -> impl Strategy<Value = BgpUpdate> {
    (
        arb_vp(),
        0u64..10_000, // time secs
        arb_prefix(),
        arb_path_id(),
        proptest::collection::vec(1u32..1_000_000, 1..8), // path
        proptest::collection::vec((0u16..60_000, 0u16..1_000), 0..6),
        any::<bool>(), // announce?
    )
        .prop_map(|(vp, t, prefix, path_id, path, comms, announce)| {
            let mut b = if announce {
                let mut b = UpdateBuilder::announce(vp, prefix)
                    .at(Timestamp::from_secs(t))
                    .path(path);
                for (a, c) in comms {
                    b = b.community(a, c);
                }
                b
            } else {
                UpdateBuilder::withdraw(vp, prefix).at(Timestamp::from_secs(t))
            };
            if let Some(id) = path_id {
                b = b.path_id(id);
            }
            b.build()
        })
}

/// An arbitrary v4-only, classic-session update (no v6, no path ids) —
/// for suites pinned to the pre-multiprotocol wire surface.
pub fn arb_update_v4() -> impl Strategy<Value = BgpUpdate> {
    arb_update().prop_map(|mut u| {
        if u.prefix.is_ipv6() {
            let bits = (u.prefix.raw_bits() >> 96) as u32;
            u.prefix = Prefix::v4(Ipv4Addr::from(bits), u.prefix.len().min(32));
        }
        u.path_id = None;
        u
    })
}
