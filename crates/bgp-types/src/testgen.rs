//! Shared proptest strategies (behind the `testgen` feature).
//!
//! Every suite that property-tests a codec over updates — the BGP wire
//! roundtrips, the stream frame codec — should draw from the *same*
//! distribution, so a generator fix or widening benefits all of them at
//! once. Keep strategies here instead of copying them between test files.

use crate::{Asn, BgpUpdate, Prefix, Timestamp, UpdateBuilder, VpId};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// An arbitrary IPv4 prefix (any bits, len 0..=32; the constructor masks
/// host bits).
pub fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::v4(Ipv4Addr::from(bits), len))
}

/// An arbitrary vantage point (ASN 1..100k, router id 0..4 so multi-router
/// VPs occur).
pub fn arb_vp() -> impl Strategy<Value = VpId> {
    (1u32..100_000, 0u16..4).prop_map(|(asn, router)| VpId::new(Asn(asn), router))
}

/// Campaign-shaped workload descriptor: the scenario vocabulary shared by
/// `gill-scenario`'s adversarial generators and plain proptests. Kept here
/// (rather than in `gill-scenario`) so strategy widenings reach every
/// consumer at once.
#[derive(Clone, Copy, Debug)]
pub struct CampaignShape {
    /// Window start, scenario milliseconds.
    pub start_ms: u64,
    /// Window length in milliseconds.
    pub duration_ms: u64,
    /// How many prefixes the campaign targets.
    pub n_targets: u32,
    /// Waves / flap cycles / flood rounds.
    pub repeats: u32,
    /// Adversary ASN, outside VP (65k+) and origin (10k+) ranges.
    pub actor: u32,
    /// Campaign randomness seed.
    pub seed: u64,
}

/// An arbitrary campaign shape: windows from seconds to minutes, target
/// counts and repeat counts that keep one generated campaign small enough
/// to verify exhaustively against its ground truth.
pub fn arb_campaign_shape() -> impl Strategy<Value = CampaignShape> {
    (
        0u64..3_600_000,
        1_000u64..300_000,
        1u32..12,
        1u32..6,
        64_000u32..65_000,
        any::<u64>(),
    )
        .prop_map(
            |(start_ms, duration_ms, n_targets, repeats, actor, seed)| CampaignShape {
                start_ms,
                duration_ms,
                n_targets,
                repeats,
                actor,
                seed,
            },
        )
}

/// A bursty arrival schedule: bursts of tightly spaced events separated by
/// long silences, sorted and strictly advancing. The shape the scenario
/// engine's background process produces, as a plain strategy for codecs and
/// stores that should survive clustered timestamps.
pub fn arb_bursty_schedule() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((500u64..60_000, 1usize..40, 1u64..80), 4..32).prop_map(|bursts| {
        let mut t = 0u64;
        let mut times = Vec::new();
        for (silence, len, intra) in bursts {
            t += silence;
            for _ in 0..len {
                t += intra;
                times.push(t);
            }
        }
        times
    })
}

/// A burst of updates whose timestamps follow a bursty schedule — the
/// high-fan-out input for broker/store proptests.
pub fn arb_update_burst() -> impl Strategy<Value = Vec<BgpUpdate>> {
    (
        arb_bursty_schedule(),
        proptest::collection::vec(arb_update(), 1..16),
    )
        .prop_map(|(times, palette)| {
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let mut u = palette[i % palette.len()].clone();
                    u.time = Timestamp::from_millis(t);
                    u
                })
                .collect()
        })
}

/// An arbitrary update: announcements carry a 1..8-hop path and up to 6
/// communities; withdrawals carry neither (matching the wire format).
pub fn arb_update() -> impl Strategy<Value = BgpUpdate> {
    (
        arb_vp(),
        0u64..10_000, // time secs
        arb_prefix_v4(),
        proptest::collection::vec(1u32..1_000_000, 1..8), // path
        proptest::collection::vec((0u16..60_000, 0u16..1_000), 0..6),
        any::<bool>(), // announce?
    )
        .prop_map(|(vp, t, prefix, path, comms, announce)| {
            if announce {
                let mut b = UpdateBuilder::announce(vp, prefix)
                    .at(Timestamp::from_secs(t))
                    .path(path);
                for (a, c) in comms {
                    b = b.community(a, c);
                }
                b.build()
            } else {
                UpdateBuilder::withdraw(vp, prefix)
                    .at(Timestamp::from_secs(t))
                    .build()
            }
        })
}
