//! Address families (RFC 4760 AFI/SAFI pairs).
//!
//! GILL is multiprotocol: every layer that touches prefixes — wire codecs,
//! session capability negotiation, the store, MRT export — is keyed by an
//! [`AddressFamily`]. Only the two unicast families the platform collects
//! are modelled; the AFI/SAFI numbers are the IANA ones so they can go
//! straight onto the wire (Multiprotocol capability, MP_REACH_NLRI,
//! BGP4MP and TABLE_DUMP_V2 records).

use crate::Prefix;
use std::fmt;

/// An (AFI, SAFI) pair the platform understands.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AddressFamily {
    /// AFI 1 / SAFI 1.
    Ipv4Unicast,
    /// AFI 2 / SAFI 1.
    Ipv6Unicast,
}

impl AddressFamily {
    /// Both supported families, in AFI order.
    pub const ALL: [AddressFamily; 2] = [AddressFamily::Ipv4Unicast, AddressFamily::Ipv6Unicast];

    /// The IANA Address Family Identifier.
    #[inline]
    pub const fn afi(self) -> u16 {
        match self {
            AddressFamily::Ipv4Unicast => 1,
            AddressFamily::Ipv6Unicast => 2,
        }
    }

    /// The IANA Subsequent Address Family Identifier (always unicast here).
    #[inline]
    pub const fn safi(self) -> u8 {
        1
    }

    /// Looks up the family for an (AFI, SAFI) pair; `None` for anything we
    /// do not collect (multicast, VPN, ...).
    pub const fn from_afi_safi(afi: u16, safi: u8) -> Option<AddressFamily> {
        match (afi, safi) {
            (1, 1) => Some(AddressFamily::Ipv4Unicast),
            (2, 1) => Some(AddressFamily::Ipv6Unicast),
            _ => None,
        }
    }

    /// The family a prefix belongs to.
    #[inline]
    pub fn of(prefix: &Prefix) -> AddressFamily {
        if prefix.is_ipv6() {
            AddressFamily::Ipv6Unicast
        } else {
            AddressFamily::Ipv4Unicast
        }
    }

    /// `true` for [`AddressFamily::Ipv6Unicast`].
    #[inline]
    pub const fn is_ipv6(self) -> bool {
        matches!(self, AddressFamily::Ipv6Unicast)
    }
}

impl fmt::Display for AddressFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressFamily::Ipv4Unicast => write!(f, "ipv4-unicast"),
            AddressFamily::Ipv6Unicast => write!(f, "ipv6-unicast"),
        }
    }
}

/// A `Copy` set of address families, for session configuration and
/// negotiation results (capability intersections are set intersections).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FamilySet {
    bits: u8,
}

impl FamilySet {
    /// The empty set (a legacy v4-only session advertises no families).
    pub const EMPTY: FamilySet = FamilySet { bits: 0 };
    /// Both unicast families.
    pub const ALL: FamilySet = FamilySet { bits: 0b11 };

    const fn bit(fam: AddressFamily) -> u8 {
        match fam {
            AddressFamily::Ipv4Unicast => 0b01,
            AddressFamily::Ipv6Unicast => 0b10,
        }
    }

    /// The set holding exactly `fam`.
    pub const fn only(fam: AddressFamily) -> FamilySet {
        FamilySet {
            bits: Self::bit(fam),
        }
    }

    /// Inserts a family.
    pub fn insert(&mut self, fam: AddressFamily) {
        self.bits |= Self::bit(fam);
    }

    /// Membership test.
    pub const fn contains(self, fam: AddressFamily) -> bool {
        self.bits & Self::bit(fam) != 0
    }

    /// True when no family is in the set.
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Set intersection — what two capability advertisements agree on.
    pub const fn intersect(self, other: FamilySet) -> FamilySet {
        FamilySet {
            bits: self.bits & other.bits,
        }
    }

    /// The member families, in AFI order.
    pub fn iter(self) -> impl Iterator<Item = AddressFamily> {
        AddressFamily::ALL
            .into_iter()
            .filter(move |f| self.contains(*f))
    }
}

impl FromIterator<AddressFamily> for FamilySet {
    fn from_iter<I: IntoIterator<Item = AddressFamily>>(iter: I) -> Self {
        let mut set = FamilySet::EMPTY;
        for fam in iter {
            set.insert(fam);
        }
        set
    }
}

impl fmt::Debug for FamilySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn afi_safi_roundtrip() {
        for fam in AddressFamily::ALL {
            assert_eq!(
                AddressFamily::from_afi_safi(fam.afi(), fam.safi()),
                Some(fam)
            );
        }
        assert_eq!(AddressFamily::from_afi_safi(1, 2), None);
        assert_eq!(AddressFamily::from_afi_safi(3, 1), None);
    }

    #[test]
    fn family_of_prefix() {
        let v4: Prefix = "10.0.0.0/8".parse().unwrap();
        let v6: Prefix = "2001:db8::/32".parse().unwrap();
        assert_eq!(AddressFamily::of(&v4), AddressFamily::Ipv4Unicast);
        assert_eq!(AddressFamily::of(&v6), AddressFamily::Ipv6Unicast);
        assert!(AddressFamily::of(&v6).is_ipv6());
    }

    #[test]
    fn display_names() {
        assert_eq!(AddressFamily::Ipv4Unicast.to_string(), "ipv4-unicast");
        assert_eq!(AddressFamily::Ipv6Unicast.to_string(), "ipv6-unicast");
    }

    #[test]
    fn family_set_operations() {
        let mut s = FamilySet::EMPTY;
        assert!(s.is_empty());
        s.insert(AddressFamily::Ipv6Unicast);
        assert!(s.contains(AddressFamily::Ipv6Unicast));
        assert!(!s.contains(AddressFamily::Ipv4Unicast));
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![AddressFamily::Ipv6Unicast]
        );

        let all: FamilySet = AddressFamily::ALL.into_iter().collect();
        assert_eq!(all, FamilySet::ALL);
        assert_eq!(all.intersect(s), s);
        assert_eq!(
            s.intersect(FamilySet::only(AddressFamily::Ipv4Unicast)),
            FamilySet::EMPTY
        );
    }
}
