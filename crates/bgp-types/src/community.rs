//! BGP community values (RFC 1997).

use crate::Asn;
use std::fmt;
use std::str::FromStr;

/// A classic 32-bit BGP community, displayed as `asn:value`.
///
/// The high 16 bits identify the AS that defined the community, the low
/// 16 bits carry the AS-local meaning. The paper distinguishes *informational*
/// communities (e.g. ingress-point tags) from *action* communities (traffic
/// engineering requests — the hardest to observe, use case IV in §10).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Community(pub u32);

impl Community {
    /// Builds a community from an AS part and a value part.
    #[inline]
    pub const fn new(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The AS part (high 16 bits).
    #[inline]
    pub const fn asn_part(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The AS part as an [`Asn`].
    #[inline]
    pub const fn asn(self) -> Asn {
        Asn(self.0 >> 16)
    }

    /// The value part (low 16 bits).
    #[inline]
    pub const fn value_part(self) -> u16 {
        (self.0 & 0xffff) as u16
    }

    /// Raw 32-bit representation.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// `NO_EXPORT` well-known community (RFC 1997).
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// `NO_ADVERTISE` well-known community (RFC 1997).
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);
    /// `NO_EXPORT_SUBCONFED` well-known community (RFC 1997).
    pub const NO_EXPORT_SUBCONFED: Community = Community(0xFFFF_FF03);

    /// Whether this is one of the RFC 1997 well-known communities.
    pub fn is_well_known(self) -> bool {
        self.asn_part() == 0xFFFF
    }

    /// Convention used by the synthetic workload generator: value parts in
    /// `[ACTION_BASE, ACTION_BASE + ACTION_RANGE)` denote *action*
    /// communities (traffic-engineering requests). Mirrors the action/
    /// informational split of \[60\] used by use case IV.
    pub const ACTION_BASE: u16 = 600;
    /// Width of the action-community value range.
    pub const ACTION_RANGE: u16 = 100;

    /// Whether this community encodes a traffic-engineering *action* under
    /// the synthetic-workload convention.
    pub fn is_action(self) -> bool {
        let v = self.value_part();
        !self.is_well_known()
            && (Self::ACTION_BASE..Self::ACTION_BASE + Self::ACTION_RANGE).contains(&v)
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

impl fmt::Debug for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a [`Community`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCommunityError(String);

impl fmt::Display for ParseCommunityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid community: {:?}", self.0)
    }
}

impl std::error::Error for ParseCommunityError {}

impl FromStr for Community {
    type Err = ParseCommunityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCommunityError(s.to_owned());
        let (a, v) = s.split_once(':').ok_or_else(err)?;
        let a: u16 = a.parse().map_err(|_| err())?;
        let v: u16 = v.parse().map_err(|_| err())?;
        Ok(Community::new(a, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack() {
        let c = Community::new(65000, 42);
        assert_eq!(c.asn_part(), 65000);
        assert_eq!(c.value_part(), 42);
        assert_eq!(c.raw(), (65000u32 << 16) | 42);
    }

    #[test]
    fn parse_display_roundtrip() {
        let c: Community = "65000:120".parse().unwrap();
        assert_eq!(c.to_string(), "65000:120");
        assert!("65000".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
        assert!("1:70000".parse::<Community>().is_err());
    }

    #[test]
    fn well_known() {
        assert!(Community::NO_EXPORT.is_well_known());
        assert_eq!(Community::NO_EXPORT.to_string(), "65535:65281");
        assert!(!Community::new(65000, 1).is_well_known());
    }

    #[test]
    fn action_convention() {
        assert!(Community::new(100, 650).is_action());
        assert!(!Community::new(100, 100).is_action());
        assert!(!Community::new(100, 700).is_action());
        // well-known never counts as action
        assert!(!Community::NO_EXPORT.is_action());
    }
}
