//! Autonomous System Numbers.

use std::fmt;
use std::str::FromStr;

/// A 32-bit Autonomous System Number (RFC 6793 four-octet ASN).
///
/// `Asn` is a transparent newtype over `u32`; it exists so that AS numbers,
/// node indices, and prefix identifiers cannot be mixed up silently.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved ASN 0, never valid on the wire (RFC 7607).
    pub const RESERVED: Asn = Asn(0);

    /// AS_TRANS (RFC 6793): stands in for four-octet ASNs in two-octet fields.
    pub const TRANS: Asn = Asn(23456);

    /// Returns the raw numeric value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this ASN fits in the legacy two-octet space.
    #[inline]
    pub const fn is_two_octet(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// Whether this ASN is in a private-use range (RFC 6996).
    #[inline]
    pub const fn is_private(self) -> bool {
        (self.0 >= 64512 && self.0 <= 65534) || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<Asn> for u32 {
    fn from(a: Asn) -> Self {
        a.0
    }
}

/// Error returned when parsing an [`Asn`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsnError(String);

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {:?}", self.0)
    }
}

impl std::error::Error for ParseAsnError {}

impl FromStr for Asn {
    type Err = ParseAsnError;

    /// Accepts `"65000"` and `"AS65000"` (case-insensitive prefix).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseAsnError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = Asn(65001);
        assert_eq!(a.to_string(), "AS65001");
        assert_eq!("AS65001".parse::<Asn>().unwrap(), a);
        assert_eq!("65001".parse::<Asn>().unwrap(), a);
        assert_eq!("as65001".parse::<Asn>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ASX".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
        assert!("AS-1".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err()); // > u32::MAX
    }

    #[test]
    fn two_octet_boundary() {
        assert!(Asn(65535).is_two_octet());
        assert!(!Asn(65536).is_two_octet());
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(3_000).is_private());
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(Asn(1) < Asn(2));
        assert!(Asn(65536) > Asn(65535));
    }
}
