//! AS paths.

use crate::{Asn, Link};
use std::collections::BTreeSet;
use std::fmt;

/// An AS path: the sequence of ASes an announcement traversed, leftmost AS
/// nearest the observing vantage point, rightmost AS the origin.
///
/// Only `AS_SEQUENCE` semantics are modelled (the simulator never produces
/// `AS_SET`s; the wire codec in `bgp-wire` can still parse them but flattens
/// into a sequence).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AsPath(Vec<Asn>);

impl AsPath {
    /// An empty path (used for locally originated routes).
    pub const fn empty() -> Self {
        AsPath(Vec::new())
    }

    /// Builds a path from a sequence of ASNs (leftmost = neighbor of the VP).
    pub fn new(hops: Vec<Asn>) -> Self {
        AsPath(hops)
    }

    /// Convenience constructor from raw `u32`s.
    pub fn from_u32s<I: IntoIterator<Item = u32>>(hops: I) -> Self {
        AsPath(hops.into_iter().map(Asn).collect())
    }

    /// Number of hops, counting prepends.
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.0.len()
    }

    /// Path length with prepends collapsed (the routing-decision length).
    pub fn unique_len(&self) -> usize {
        let mut n = 0;
        let mut prev: Option<Asn> = None;
        for &a in &self.0 {
            if prev != Some(a) {
                n += 1;
            }
            prev = Some(a);
        }
        n
    }

    /// `true` if the path has no hops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The origin AS (rightmost), if any.
    #[inline]
    pub fn origin(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The first hop (the VP's neighbor), if any.
    #[inline]
    pub fn first_hop(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// The hops, leftmost first.
    #[inline]
    pub fn hops(&self) -> &[Asn] {
        &self.0
    }

    /// Whether `asn` appears anywhere in the path.
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// Whether the path contains a routing loop (a non-adjacent repeat);
    /// adjacent repeats are prepending, not loops.
    pub fn has_loop(&self) -> bool {
        let mut seen = BTreeSet::new();
        let mut prev = None;
        for &a in &self.0 {
            if prev == Some(a) {
                continue; // prepend
            }
            if !seen.insert(a) {
                return true;
            }
            prev = Some(a);
        }
        false
    }

    /// Returns a new path with `asn` prepended (as done by the neighbor that
    /// propagates the route).
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(asn);
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// The set `L` of directed AS links in the path (§4.2), prepending
    /// collapsed (self-loops are skipped).
    pub fn links(&self) -> BTreeSet<Link> {
        let mut out = BTreeSet::new();
        for w in self.0.windows(2) {
            let l = Link::new(w[0], w[1]);
            if !l.is_loop() {
                out.insert(l);
            }
        }
        out
    }

    /// Undirected adjacencies, for topology-mapping use cases.
    pub fn undirected_links(&self) -> BTreeSet<Link> {
        self.links().into_iter().map(Link::undirected).collect()
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.0 {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}", a.value())?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self)
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsPath(iter.into_iter().collect())
    }
}

impl From<Vec<u32>> for AsPath {
    fn from(v: Vec<u32>) -> Self {
        AsPath::from_u32s(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(v: &[u32]) -> AsPath {
        AsPath::from_u32s(v.iter().copied())
    }

    #[test]
    fn origin_and_first_hop() {
        let p = path(&[6, 2, 1, 4]);
        assert_eq!(p.origin(), Some(Asn(4)));
        assert_eq!(p.first_hop(), Some(Asn(6)));
        assert_eq!(p.hop_count(), 4);
    }

    #[test]
    fn empty_path() {
        let p = AsPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.origin(), None);
        assert!(p.links().is_empty());
    }

    #[test]
    fn links_are_directed_and_ordered_vp_to_origin() {
        let p = path(&[6, 2, 1, 4]);
        let links = p.links();
        assert!(links.contains(&Link::new(Asn(6), Asn(2))));
        assert!(links.contains(&Link::new(Asn(2), Asn(1))));
        assert!(links.contains(&Link::new(Asn(1), Asn(4))));
        assert!(!links.contains(&Link::new(Asn(2), Asn(6))));
        assert_eq!(links.len(), 3);
    }

    #[test]
    fn prepending_collapses_in_links_and_unique_len() {
        let p = path(&[6, 6, 6, 2, 4]);
        assert_eq!(p.hop_count(), 5);
        assert_eq!(p.unique_len(), 3);
        assert_eq!(p.links().len(), 2);
    }

    #[test]
    fn loop_detection_distinguishes_prepending() {
        assert!(!path(&[3, 3, 2, 1]).has_loop());
        assert!(path(&[3, 2, 3, 1]).has_loop());
        assert!(!path(&[]).has_loop());
    }

    #[test]
    fn prepend_builds_neighbor_path() {
        let p = path(&[2, 1, 4]);
        let q = p.prepend(Asn(6));
        assert_eq!(q, path(&[6, 2, 1, 4]));
        assert_eq!(p, path(&[2, 1, 4])); // original untouched
    }

    #[test]
    fn display_is_space_separated() {
        assert_eq!(path(&[6, 2, 1, 4]).to_string(), "6 2 1 4");
    }

    #[test]
    fn undirected_links_canonicalize() {
        let a = path(&[1, 2]).undirected_links();
        let b = path(&[2, 1]).undirected_links();
        assert_eq!(a, b);
    }
}
