//! Vantage-point identifiers.

use crate::Asn;
use std::fmt;

/// Identifier of a vantage point (a BGP router feeding the collection
/// platform).
///
/// In the simulator every AS hosts at most one VP, so the VP id is the
/// hosting AS number; real platforms may peer with several routers in one AS,
/// which the `router` discriminator supports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VpId {
    /// AS hosting the vantage point.
    pub asn: Asn,
    /// Router discriminator within the AS (0 when the AS hosts a single VP).
    pub router: u16,
}

impl VpId {
    /// VP hosted by `asn`, router 0.
    #[inline]
    pub const fn from_asn(asn: Asn) -> Self {
        VpId { asn, router: 0 }
    }

    /// VP hosted by `asn` with an explicit router discriminator.
    #[inline]
    pub const fn new(asn: Asn, router: u16) -> Self {
        VpId { asn, router }
    }
}

impl fmt::Display for VpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.router == 0 {
            write!(f, "vp({})", self.asn)
        } else {
            write!(f, "vp({}#{})", self.asn, self.router)
        }
    }
}

impl fmt::Debug for VpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Asn> for VpId {
    fn from(a: Asn) -> Self {
        VpId::from_asn(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_groups_by_asn_then_router() {
        let a = VpId::new(Asn(10), 0);
        let b = VpId::new(Asn(10), 1);
        let c = VpId::new(Asn(11), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn display() {
        assert_eq!(VpId::from_asn(Asn(7)).to_string(), "vp(AS7)");
        assert_eq!(VpId::new(Asn(7), 2).to_string(), "vp(AS7#2)");
    }
}
