//! A binary prefix trie with longest-prefix match.
//!
//! Used wherever prefix-containment queries must be fast: forwarding-rule
//! evaluation, bogon checks, and sub-prefix hijack analytics (a hijack of
//! a more-specific prefix is found by enumerating the victims' covered
//! space).

use crate::Prefix;

#[derive(Clone, Debug)]
struct Node<T> {
    children: [Option<usize>; 2],
    /// The stored prefix and value, when a prefix terminates here.
    entry: Option<(Prefix, T)>,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            children: [None, None],
            entry: None,
        }
    }
}

/// A map from [`Prefix`] to `T` supporting exact, longest-match and
/// more-specific queries. IPv4 and IPv6 live in disjoint subtrees.
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    root_v4: usize,
    root_v6: usize,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bit_at(p: &Prefix, i: u8) -> usize {
    // bit i (0-based from the top) of the network bits
    let width = if p.is_ipv6() { 128 } else { 32 };
    ((p.raw_bits() >> (width - 1 - i as usize)) & 1) as usize
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        let nodes = vec![Node::new(), Node::new()];
        PrefixTrie {
            nodes,
            root_v4: 0,
            root_v6: 1,
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn root(&self, p: &Prefix) -> usize {
        if p.is_ipv6() {
            self.root_v6
        } else {
            self.root_v4
        }
    }

    /// Inserts (or replaces) the value for `prefix`; returns the previous
    /// value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut cur = self.root(&prefix);
        for i in 0..prefix.len() {
            let b = bit_at(&prefix, i);
            cur = match self.nodes[cur].children[b] {
                Some(n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::new());
                    self.nodes[cur].children[b] = Some(n);
                    n
                }
            };
        }
        let old = self.nodes[cur].entry.take();
        self.nodes[cur].entry = Some((prefix, value));
        if old.is_none() {
            self.len += 1;
        }
        old.map(|(_, v)| v)
    }

    /// Exact lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        let mut cur = self.root(prefix);
        for i in 0..prefix.len() {
            cur = self.nodes[cur].children[bit_at(prefix, i)]?;
        }
        self.nodes[cur].entry.as_ref().map(|(_, v)| v)
    }

    /// Exact lookup, mutable.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut T> {
        let mut cur = self.root(prefix);
        for i in 0..prefix.len() {
            cur = self.nodes[cur].children[bit_at(prefix, i)]?;
        }
        self.nodes[cur].entry.as_mut().map(|(_, v)| v)
    }

    /// Removes `prefix`, returning its value (nodes are not compacted).
    pub fn remove(&mut self, prefix: &Prefix) -> Option<T> {
        let mut cur = self.root(prefix);
        for i in 0..prefix.len() {
            cur = self.nodes[cur].children[bit_at(prefix, i)]?;
        }
        let out = self.nodes[cur].entry.take();
        if out.is_some() {
            self.len -= 1;
        }
        out.map(|(_, v)| v)
    }

    /// Longest stored prefix covering `prefix` (route-table lookup).
    pub fn longest_match(&self, prefix: &Prefix) -> Option<(&Prefix, &T)> {
        let mut cur = self.root(prefix);
        let mut best = self.nodes[cur].entry.as_ref();
        for i in 0..prefix.len() {
            match self.nodes[cur].children[bit_at(prefix, i)] {
                Some(n) => {
                    cur = n;
                    if let Some(e) = self.nodes[cur].entry.as_ref() {
                        best = Some(e);
                    }
                }
                None => break,
            }
        }
        best.map(|(p, v)| (p, v))
    }

    /// All stored prefixes covered by `prefix` (itself included) — the
    /// sub-prefix enumeration used for more-specific hijack checks.
    pub fn more_specifics<'a>(&'a self, prefix: &Prefix) -> Vec<(&'a Prefix, &'a T)> {
        let mut cur = self.root(prefix);
        for i in 0..prefix.len() {
            match self.nodes[cur].children[bit_at(prefix, i)] {
                Some(n) => cur = n,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        let mut stack = vec![cur];
        while let Some(n) = stack.pop() {
            if let Some((p, v)) = self.nodes[n].entry.as_ref() {
                out.push((p, v));
            }
            for c in self.nodes[n].children.iter().flatten() {
                stack.push(*c);
            }
        }
        out
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &T)> {
        self.nodes
            .iter()
            .filter_map(|n| n.entry.as_ref().map(|(p, v)| (p, v)))
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut t: PrefixTrie<Vec<u32>> = [(p("10.0.0.0/8"), vec![1])].into_iter().collect();
        t.get_mut(&p("10.0.0.0/8")).unwrap().push(2);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&vec![1, 2]));
        assert!(t.get_mut(&p("10.0.0.0/9")).is_none());
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let t: PrefixTrie<u32> = [
            (p("10.0.0.0/8"), 8),
            (p("10.1.0.0/16"), 16),
            (p("10.1.2.0/24"), 24),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.longest_match(&p("10.1.2.0/24")).unwrap().1, &24);
        assert_eq!(t.longest_match(&p("10.1.2.128/25")).unwrap().1, &24);
        assert_eq!(t.longest_match(&p("10.1.9.0/24")).unwrap().1, &16);
        assert_eq!(t.longest_match(&p("10.9.9.0/24")).unwrap().1, &8);
        assert!(t.longest_match(&p("11.0.0.0/8")).is_none());
    }

    #[test]
    fn default_route_matches_everything_v4() {
        let t: PrefixTrie<u32> = [(p("0.0.0.0/0"), 0)].into_iter().collect();
        assert_eq!(t.longest_match(&p("203.0.113.0/24")).unwrap().1, &0);
        // but not v6
        assert!(t.longest_match(&p("2001:db8::/32")).is_none());
    }

    #[test]
    fn more_specifics_enumerates_subtree() {
        let t: PrefixTrie<u32> = [
            (p("10.0.0.0/8"), 8),
            (p("10.1.0.0/16"), 16),
            (p("10.1.2.0/24"), 24),
            (p("10.200.0.0/16"), 200),
            (p("11.0.0.0/8"), 11),
        ]
        .into_iter()
        .collect();
        let subs = t.more_specifics(&p("10.1.0.0/16"));
        let vals: std::collections::BTreeSet<u32> = subs.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, [16u32, 24].into_iter().collect());
        let all10 = t.more_specifics(&p("10.0.0.0/8"));
        assert_eq!(all10.len(), 4);
        assert!(t.more_specifics(&p("12.0.0.0/8")).is_empty());
    }

    #[test]
    fn v4_v6_are_disjoint() {
        let mut t = PrefixTrie::new();
        t.insert(p("::/0"), 6);
        t.insert(p("0.0.0.0/0"), 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t.longest_match(&p("2001:db8::/32")).unwrap().1, &6);
        assert_eq!(t.longest_match(&p("8.8.8.0/24")).unwrap().1, &4);
    }

    #[test]
    fn iter_yields_all_entries() {
        let t: PrefixTrie<u32> = (0..50u32).map(|i| (Prefix::synthetic(i), i)).collect();
        assert_eq!(t.iter().count(), 50);
        assert_eq!(t.len(), 50);
    }
}
