//! Per-vantage-point Routing Information Base.

use crate::{AsPath, BgpUpdate, Community, Prefix, Timestamp, UpdateKind, VpId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The best route a VP currently holds for one prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RibEntry {
    /// AS path of the best route.
    pub path: AsPath,
    /// Communities attached to the best route.
    pub communities: BTreeSet<Community>,
    /// When the route was last updated.
    pub time: Timestamp,
}

/// A single vantage point's routing table: (prefix, path-id) → best route.
///
/// Replaying a stream of updates through [`Rib::apply`] maintains the table
/// and, crucially, derives each update's implicit-withdrawal sets `Lw`/`Cw`
/// (§4.2): the links/communities of the *previous* route for the prefix that
/// the new update renders obsolete.
///
/// On classic sessions every route has `path_id = None` and the table is
/// the familiar prefix → route map. Where ADD-PATH (RFC 7911) was
/// negotiated a VP may hold several routes per prefix, one per path
/// identifier; an announce/withdraw only replaces/removes the route with
/// the *same* `(prefix, path_id)` key.
#[derive(Clone, Default, Debug)]
pub struct Rib {
    entries: HashMap<Prefix, BTreeMap<Option<u32>, RibEntry>>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed routes (counting each ADD-PATH path once).
    pub fn len(&self) -> usize {
        self.entries.values().map(|paths| paths.len()).sum()
    }

    /// Number of distinct prefixes with at least one route.
    pub fn prefix_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the RIB holds no routes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current route for `prefix`: the classic (`path_id = None`) route if
    /// installed, otherwise the lowest-path-id ADD-PATH route.
    pub fn get(&self, prefix: &Prefix) -> Option<&RibEntry> {
        self.entries
            .get(prefix)
            .and_then(|paths| paths.values().next())
    }

    /// The route installed under exactly `(prefix, path_id)`.
    pub fn get_path(&self, prefix: &Prefix, path_id: Option<u32>) -> Option<&RibEntry> {
        self.entries
            .get(prefix)
            .and_then(|paths| paths.get(&path_id))
    }

    /// All routes for `prefix`, ordered by path id (`None` first).
    pub fn paths(&self, prefix: &Prefix) -> impl Iterator<Item = (Option<u32>, &RibEntry)> {
        self.entries
            .get(prefix)
            .into_iter()
            .flat_map(|paths| paths.iter().map(|(id, e)| (*id, e)))
    }

    /// Builds a RIB directly from `(prefix, entry)` pairs (used by stores
    /// that keep routes in a compact interned form and materialize full
    /// tables on demand). Later duplicates replace earlier ones. All
    /// entries install with `path_id = None`; use
    /// [`Rib::from_path_entries`] for ADD-PATH tables.
    pub fn from_entries<I: IntoIterator<Item = (Prefix, RibEntry)>>(entries: I) -> Self {
        Self::from_path_entries(entries.into_iter().map(|(p, e)| (p, None, e)))
    }

    /// Builds a RIB from `(prefix, path_id, entry)` triples.
    pub fn from_path_entries<I: IntoIterator<Item = (Prefix, Option<u32>, RibEntry)>>(
        entries: I,
    ) -> Self {
        let mut rib = Rib::new();
        for (p, id, e) in entries {
            rib.entries.entry(p).or_default().insert(id, e);
        }
        rib
    }

    /// Iterates over `(prefix, entry)` pairs in arbitrary prefix order
    /// (ADD-PATH prefixes yield one pair per installed path).
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &RibEntry)> {
        self.entries
            .iter()
            .flat_map(|(p, paths)| paths.values().map(move |e| (p, e)))
    }

    /// Iterates over `(prefix, path_id, entry)` triples.
    pub fn iter_paths(&self) -> impl Iterator<Item = (&Prefix, Option<u32>, &RibEntry)> {
        self.entries
            .iter()
            .flat_map(|(p, paths)| paths.iter().map(move |(id, e)| (p, *id, e)))
    }

    /// Applies `update` to the table, filling in its `withdrawn_links` and
    /// `withdrawn_communities` from the route it replaces (empty sets when
    /// the `(prefix, path_id)` key was not previously installed, exactly
    /// as §4.2 specifies).
    ///
    /// Withdrawals remove the entry; their `Lw`/`Cw` carry everything the
    /// withdrawn route had.
    pub fn apply(&mut self, update: &mut BgpUpdate) {
        match update.kind {
            UpdateKind::Announce => {
                let new_links = update.path.links();
                let new_comms = update.communities.clone();
                let paths = self.entries.entry(update.prefix).or_default();
                if let Some(prev) = paths.get(&update.path_id) {
                    update.withdrawn_links =
                        prev.path.links().difference(&new_links).copied().collect();
                    update.withdrawn_communities =
                        prev.communities.difference(&new_comms).copied().collect();
                } else {
                    update.withdrawn_links.clear();
                    update.withdrawn_communities.clear();
                }
                paths.insert(
                    update.path_id,
                    RibEntry {
                        path: update.path.clone(),
                        communities: new_comms,
                        time: update.time,
                    },
                );
            }
            UpdateKind::Withdraw => {
                let removed = match self.entries.get_mut(&update.prefix) {
                    Some(paths) => {
                        let removed = paths.remove(&update.path_id);
                        if paths.is_empty() {
                            self.entries.remove(&update.prefix);
                        }
                        removed
                    }
                    None => None,
                };
                if let Some(prev) = removed {
                    update.withdrawn_links = prev.path.links();
                    update.withdrawn_communities = prev.communities;
                } else {
                    update.withdrawn_links.clear();
                    update.withdrawn_communities.clear();
                }
            }
        }
    }
}

/// Replays a time-ordered update stream through one RIB per VP, filling in
/// every update's implicit-withdrawal sets in place.
///
/// The input must be sorted by time for the derived sets to be meaningful
/// (the function does not reorder).
pub fn annotate_stream(updates: &mut [BgpUpdate]) {
    let mut ribs: HashMap<VpId, Rib> = HashMap::new();
    for u in updates.iter_mut() {
        ribs.entry(u.vp).or_default().apply(u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asn, Link, UpdateBuilder};

    fn vp(n: u32) -> VpId {
        VpId::from_asn(Asn(n))
    }

    fn ann(v: u32, t: u64, pfx: u32, path: &[u32], comms: &[(u16, u16)]) -> BgpUpdate {
        let mut b = UpdateBuilder::announce(vp(v), Prefix::synthetic(pfx))
            .at(Timestamp::from_secs(t))
            .path(path.iter().copied());
        for &(a, c) in comms {
            b = b.community(a, c);
        }
        b.build()
    }

    #[test]
    fn first_announce_has_empty_withdrawn_sets() {
        let mut rib = Rib::new();
        let mut u = ann(6, 1, 1, &[6, 2, 1, 4], &[(6, 100)]);
        rib.apply(&mut u);
        assert!(u.withdrawn_links.is_empty());
        assert!(u.withdrawn_communities.is_empty());
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn replacement_withdraws_obsolete_links() {
        let mut rib = Rib::new();
        let mut u1 = ann(6, 1, 1, &[6, 2, 1, 4], &[]);
        rib.apply(&mut u1);
        // New route via 3 instead of 2: links 6->2, 2->1 obsolete; 1->4 shared.
        let mut u2 = ann(6, 2, 1, &[6, 3, 1, 4], &[]);
        rib.apply(&mut u2);
        assert_eq!(
            u2.withdrawn_links,
            [Link::new(Asn(6), Asn(2)), Link::new(Asn(2), Asn(1))]
                .into_iter()
                .collect()
        );
        assert!(!u2.withdrawn_links.contains(&Link::new(Asn(1), Asn(4))));
    }

    #[test]
    fn replacement_withdraws_obsolete_communities() {
        let mut rib = Rib::new();
        let mut u1 = ann(6, 1, 1, &[6, 4], &[(6, 100), (6, 200)]);
        rib.apply(&mut u1);
        let mut u2 = ann(6, 2, 1, &[6, 4], &[(6, 200), (6, 300)]);
        rib.apply(&mut u2);
        assert_eq!(
            u2.withdrawn_communities,
            [Community::new(6, 100)].into_iter().collect()
        );
    }

    #[test]
    fn withdraw_removes_entry_and_reports_all_state() {
        let mut rib = Rib::new();
        let mut u1 = ann(6, 1, 1, &[6, 2, 4], &[(6, 100)]);
        rib.apply(&mut u1);
        let mut w = UpdateBuilder::withdraw(vp(6), Prefix::synthetic(1))
            .at(Timestamp::from_secs(2))
            .build();
        rib.apply(&mut w);
        assert!(rib.is_empty());
        assert_eq!(w.withdrawn_links.len(), 2);
        assert_eq!(w.withdrawn_communities.len(), 1);
    }

    #[test]
    fn withdraw_of_unknown_prefix_is_noop() {
        let mut rib = Rib::new();
        let mut w = UpdateBuilder::withdraw(vp(6), Prefix::synthetic(9)).build();
        rib.apply(&mut w);
        assert!(w.withdrawn_links.is_empty());
        assert!(rib.is_empty());
    }

    #[test]
    fn ribs_are_per_prefix() {
        let mut rib = Rib::new();
        let mut u1 = ann(6, 1, 1, &[6, 4], &[]);
        let mut u2 = ann(6, 1, 2, &[6, 4], &[]);
        rib.apply(&mut u1);
        rib.apply(&mut u2);
        assert_eq!(rib.len(), 2);
        // Re-announcing prefix 1 does not disturb prefix 2.
        let mut u3 = ann(6, 2, 1, &[6, 3, 4], &[]);
        rib.apply(&mut u3);
        assert_eq!(
            rib.get(&Prefix::synthetic(2)).unwrap().path,
            AsPath::from_u32s([6, 4])
        );
    }

    #[test]
    fn add_path_routes_are_keyed_separately() {
        let mut rib = Rib::new();
        let p = Prefix::synthetic(1);
        for (id, path) in [(1u32, &[6u32, 2, 4][..]), (2, &[6, 3, 4])] {
            let mut u = UpdateBuilder::announce(vp(6), p)
                .at(Timestamp::from_secs(1))
                .path(path.iter().copied())
                .path_id(id)
                .build();
            rib.apply(&mut u);
            // distinct keys: installing path 2 never withdraws path 1's links
            assert!(u.withdrawn_links.is_empty());
        }
        assert_eq!(rib.len(), 2);
        assert_eq!(rib.prefix_count(), 1);
        assert_eq!(rib.paths(&p).count(), 2);
        assert!(rib.get_path(&p, Some(1)).is_some());
        assert!(rib.get_path(&p, None).is_none());
        // withdrawing one path leaves the other installed
        let mut w = UpdateBuilder::withdraw(vp(6), p)
            .at(Timestamp::from_secs(2))
            .path_id(1)
            .build();
        rib.apply(&mut w);
        assert_eq!(w.withdrawn_links.len(), 2);
        assert_eq!(rib.len(), 1);
        assert_eq!(
            rib.get(&p).unwrap().path,
            AsPath::from_u32s([6, 3, 4]),
            "remaining route is path id 2"
        );
    }

    #[test]
    fn v6_routes_key_separately_from_v4() {
        let mut rib = Rib::new();
        let v4: Prefix = "10.1.0.0/24".parse().unwrap();
        let v6: Prefix = "2001:db8:1::/64".parse().unwrap();
        for p in [v4, v6] {
            let mut u = ann_at(p, 1);
            rib.apply(&mut u);
        }
        assert_eq!(rib.len(), 2);
        assert!(rib.get(&v4).is_some());
        assert!(rib.get(&v6).is_some());
        let mut w = UpdateBuilder::withdraw(vp(6), v6).build();
        rib.apply(&mut w);
        assert!(rib.get(&v6).is_none());
        assert!(rib.get(&v4).is_some());
    }

    fn ann_at(p: Prefix, t: u64) -> BgpUpdate {
        UpdateBuilder::announce(vp(6), p)
            .at(Timestamp::from_secs(t))
            .path([6, 2, 4])
            .build()
    }

    #[test]
    fn annotate_stream_keeps_vp_state_separate() {
        let mut updates = vec![
            ann(6, 1, 1, &[6, 2, 4], &[]),
            ann(7, 1, 1, &[7, 2, 4], &[]),
            ann(6, 2, 1, &[6, 3, 4], &[]),
        ];
        annotate_stream(&mut updates);
        // VP 6's second update withdraws 6->2 and 2->4; VP 7's state is untouched.
        assert!(updates[2]
            .withdrawn_links
            .contains(&Link::new(Asn(6), Asn(2))));
        assert!(updates[1].withdrawn_links.is_empty());
    }
}
