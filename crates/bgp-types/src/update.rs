//! BGP updates with the paper's attribute set.

use crate::{AsPath, Community, Link, Prefix, Timestamp, VpId};
use std::collections::BTreeSet;
use std::fmt;

/// Whether an update announces a (new) route or withdraws the prefix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UpdateKind {
    /// A route announcement (possibly replacing a previous route).
    Announce,
    /// An explicit withdrawal of the prefix.
    Withdraw,
}

/// A stored BGP update, `u(v, t, p, L, Lw, C, Cw)` in the paper's notation
/// (§4.2).
///
/// * `v` — the vantage point that observed the update ([`BgpUpdate::vp`]),
/// * `t` — the reception timestamp ([`BgpUpdate::time`]),
/// * `p` — the announced prefix ([`BgpUpdate::prefix`]),
/// * `L` — the set of AS links in the AS path (derived from
///   [`BgpUpdate::path`] via [`BgpUpdate::links`]),
/// * `Lw` — links implicitly withdrawn: present in the *previous* update for
///   `p` at `v` but absent from this one ([`BgpUpdate::withdrawn_links`]),
/// * `C` — the set of community values ([`BgpUpdate::communities`]),
/// * `Cw` — communities implicitly withdrawn
///   ([`BgpUpdate::withdrawn_communities`]).
///
/// `Lw = Cw = ∅` when there was no previous update for `p` observed by `v`.
/// The withdrawn sets are derived state; [`crate::Rib::apply`] fills them in
/// when replaying a stream.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BgpUpdate {
    /// Vantage point that observed the update (`v`).
    pub vp: VpId,
    /// Reception timestamp (`t`).
    pub time: Timestamp,
    /// Announced (or withdrawn) prefix (`p`).
    pub prefix: Prefix,
    /// ADD-PATH path identifier (RFC 7911), when the session that
    /// observed the update negotiated ADD-PATH for the prefix's family.
    /// `None` on classic single-path sessions. Routes are keyed by
    /// `(prefix, path_id)` so a VP can hold several paths per prefix.
    pub path_id: Option<u32>,
    /// Announcement vs withdrawal.
    pub kind: UpdateKind,
    /// The AS path; empty for withdrawals.
    pub path: AsPath,
    /// Community values attached to the announcement (`C`).
    pub communities: BTreeSet<Community>,
    /// Links of the previous route rendered obsolete by this update (`Lw`).
    pub withdrawn_links: BTreeSet<Link>,
    /// Communities of the previous route dropped by this update (`Cw`).
    pub withdrawn_communities: BTreeSet<Community>,
}

impl BgpUpdate {
    /// The set `L` of directed AS links in the AS path.
    pub fn links(&self) -> BTreeSet<Link> {
        self.path.links()
    }

    /// `L \ Lw` — the *new* links contributed by this update, as used by
    /// Condition 2 (§4.2). Since `Lw` is disjoint from `L` by construction
    /// this usually equals `L`, but the subtraction is kept literal so
    /// hand-built updates behave per the definition.
    pub fn effective_links(&self) -> BTreeSet<Link> {
        self.links()
            .difference(&self.withdrawn_links)
            .copied()
            .collect()
    }

    /// `C \ Cw` — the effective community set used by Condition 3 (§4.2).
    pub fn effective_communities(&self) -> BTreeSet<Community> {
        self.communities
            .difference(&self.withdrawn_communities)
            .copied()
            .collect()
    }

    /// Whether this update is an announcement.
    #[inline]
    pub fn is_announce(&self) -> bool {
        self.kind == UpdateKind::Announce
    }

    /// "Identical updates" per §17.2: same VP, prefix, AS path and community
    /// values, with timestamps within the 100 s slack.
    pub fn is_identical(&self, other: &BgpUpdate) -> bool {
        self.same_content(other) && self.time.within_slack(other.time)
    }

    /// Content equality ignoring the timestamp (the time-free part of the
    /// §17.2 identity test).
    pub fn same_content(&self, other: &BgpUpdate) -> bool {
        self.vp == other.vp
            && self.prefix == other.prefix
            && self.path_id == other.path_id
            && self.kind == other.kind
            && self.path == other.path
            && self.communities == other.communities
    }
}

impl fmt::Display for BgpUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            UpdateKind::Announce => {
                write!(
                    f,
                    "{} {} A {} [{}]",
                    self.time, self.vp, self.prefix, self.path
                )
            }
            UpdateKind::Withdraw => write!(f, "{} {} W {}", self.time, self.vp, self.prefix),
        }
    }
}

/// Fluent builder for [`BgpUpdate`].
///
/// ```
/// use bgp_types::{UpdateBuilder, Asn, VpId, Prefix, Timestamp};
///
/// let u = UpdateBuilder::announce(VpId::from_asn(Asn(6)), Prefix::synthetic(1))
///     .at(Timestamp::from_secs(10))
///     .path([6, 2, 1, 4])
///     .community(65000, 120)
///     .build();
/// assert_eq!(u.path.origin(), Some(Asn(4)));
/// ```
#[derive(Clone, Debug)]
pub struct UpdateBuilder {
    update: BgpUpdate,
}

impl UpdateBuilder {
    /// Starts an announcement for `prefix` observed by `vp`.
    pub fn announce(vp: VpId, prefix: Prefix) -> Self {
        UpdateBuilder {
            update: BgpUpdate {
                vp,
                time: Timestamp::ZERO,
                prefix,
                path_id: None,
                kind: UpdateKind::Announce,
                path: AsPath::empty(),
                communities: BTreeSet::new(),
                withdrawn_links: BTreeSet::new(),
                withdrawn_communities: BTreeSet::new(),
            },
        }
    }

    /// Starts a withdrawal for `prefix` observed by `vp`.
    pub fn withdraw(vp: VpId, prefix: Prefix) -> Self {
        let mut b = Self::announce(vp, prefix);
        b.update.kind = UpdateKind::Withdraw;
        b
    }

    /// Sets the reception timestamp.
    pub fn at(mut self, t: Timestamp) -> Self {
        self.update.time = t;
        self
    }

    /// Sets the ADD-PATH path identifier (RFC 7911).
    pub fn path_id(mut self, id: u32) -> Self {
        self.update.path_id = Some(id);
        self
    }

    /// Sets the AS path from raw ASNs (leftmost = VP's neighbor).
    pub fn path<I: IntoIterator<Item = u32>>(mut self, hops: I) -> Self {
        self.update.path = AsPath::from_u32s(hops);
        self
    }

    /// Sets the AS path directly.
    pub fn as_path(mut self, path: AsPath) -> Self {
        self.update.path = path;
        self
    }

    /// Adds one community.
    pub fn community(mut self, asn: u16, value: u16) -> Self {
        self.update.communities.insert(Community::new(asn, value));
        self
    }

    /// Replaces the community set.
    pub fn communities<I: IntoIterator<Item = Community>>(mut self, cs: I) -> Self {
        self.update.communities = cs.into_iter().collect();
        self
    }

    /// Sets the implicitly-withdrawn link set (`Lw`).
    pub fn withdrawn_links<I: IntoIterator<Item = Link>>(mut self, ls: I) -> Self {
        self.update.withdrawn_links = ls.into_iter().collect();
        self
    }

    /// Sets the implicitly-withdrawn community set (`Cw`).
    pub fn withdrawn_communities<I: IntoIterator<Item = Community>>(mut self, cs: I) -> Self {
        self.update.withdrawn_communities = cs.into_iter().collect();
        self
    }

    /// Finalizes the update.
    pub fn build(self) -> BgpUpdate {
        self.update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asn;

    fn upd(vp: u32, t: u64, pfx: u32, path: &[u32]) -> BgpUpdate {
        UpdateBuilder::announce(VpId::from_asn(Asn(vp)), Prefix::synthetic(pfx))
            .at(Timestamp::from_secs(t))
            .path(path.iter().copied())
            .build()
    }

    #[test]
    fn builder_defaults() {
        let u = upd(6, 10, 1, &[6, 2, 1, 4]);
        assert!(u.is_announce());
        assert!(u.withdrawn_links.is_empty());
        assert!(u.withdrawn_communities.is_empty());
        assert_eq!(u.links().len(), 3);
        assert_eq!(u.effective_links(), u.links());
    }

    #[test]
    fn withdraw_has_empty_path() {
        let w = UpdateBuilder::withdraw(VpId::from_asn(Asn(6)), Prefix::synthetic(1)).build();
        assert_eq!(w.kind, UpdateKind::Withdraw);
        assert!(w.path.is_empty());
        assert!(w.links().is_empty());
    }

    #[test]
    fn identical_respects_time_slack() {
        let a = upd(6, 100, 1, &[6, 2, 1, 4]);
        let b = upd(6, 199, 1, &[6, 2, 1, 4]);
        let c = upd(6, 200, 1, &[6, 2, 1, 4]);
        assert!(a.is_identical(&b));
        assert!(!a.is_identical(&c));
    }

    #[test]
    fn identical_requires_same_vp_and_content() {
        let a = upd(6, 100, 1, &[6, 2, 1, 4]);
        let other_vp = upd(7, 100, 1, &[6, 2, 1, 4]);
        let other_path = upd(6, 100, 1, &[6, 3, 1, 4]);
        let other_pfx = upd(6, 100, 2, &[6, 2, 1, 4]);
        assert!(!a.is_identical(&other_vp));
        assert!(!a.is_identical(&other_path));
        assert!(!a.is_identical(&other_pfx));
    }

    #[test]
    fn effective_sets_subtract_withdrawn() {
        let mut u = upd(6, 1, 1, &[6, 2]);
        u.withdrawn_links.insert(Link::new(Asn(6), Asn(2)));
        assert!(u.effective_links().is_empty());

        let c1 = Community::new(1, 2);
        let c2 = Community::new(1, 3);
        u.communities.insert(c1);
        u.communities.insert(c2);
        u.withdrawn_communities.insert(c2);
        assert_eq!(
            u.effective_communities().into_iter().collect::<Vec<_>>(),
            vec![c1]
        );
    }

    #[test]
    fn display_formats() {
        let u = upd(6, 1, 1, &[6, 4]);
        let s = u.to_string();
        assert!(s.contains(" A "), "{s}");
        let w = UpdateBuilder::withdraw(VpId::from_asn(Asn(6)), Prefix::synthetic(1)).build();
        assert!(w.to_string().contains(" W "));
    }
}
