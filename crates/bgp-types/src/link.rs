//! Directed AS-level links.

use crate::Asn;
use std::fmt;

/// A directed AS-level adjacency `from -> to` as it appears in an AS path.
///
/// Links are directed because the anchor-VP feature graph (§18) is a directed
/// weighted graph: "two identical paths in opposite directions should not
/// appear as redundant". Use [`Link::undirected`] to get a canonical
/// orientation when an unordered adjacency is needed (e.g. topology mapping,
/// use case III).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    /// The AS closer to the observing vantage point.
    pub from: Asn,
    /// The AS closer to the origin.
    pub to: Asn,
}

impl Link {
    /// Creates a directed link.
    #[inline]
    pub const fn new(from: Asn, to: Asn) -> Self {
        Self { from, to }
    }

    /// The same adjacency with endpoints swapped.
    #[inline]
    pub const fn reversed(self) -> Self {
        Link {
            from: self.to,
            to: self.from,
        }
    }

    /// Canonical undirected form: smaller ASN first.
    #[inline]
    pub fn undirected(self) -> Self {
        if self.from <= self.to {
            self
        } else {
            self.reversed()
        }
    }

    /// Whether the link is a self-loop (appears with path prepending).
    #[inline]
    pub fn is_loop(self) -> bool {
        self.from == self.to
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<(Asn, Asn)> for Link {
    fn from((a, b): (Asn, Asn)) -> Self {
        Link::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_is_canonical() {
        let a = Link::new(Asn(5), Asn(3));
        let b = Link::new(Asn(3), Asn(5));
        assert_ne!(a, b);
        assert_eq!(a.undirected(), b.undirected());
        assert_eq!(a.undirected(), Link::new(Asn(3), Asn(5)));
    }

    #[test]
    fn reversed_twice_is_identity() {
        let l = Link::new(Asn(1), Asn(2));
        assert_eq!(l.reversed().reversed(), l);
    }

    #[test]
    fn loop_detection() {
        assert!(Link::new(Asn(9), Asn(9)).is_loop());
        assert!(!Link::new(Asn(9), Asn(8)).is_loop());
    }
}
