//! IP prefixes (IPv4 and IPv6, CIDR notation).

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// An IP prefix in CIDR form — the `p` attribute of a BGP update.
///
/// Internally the address bits are stored in a `u128` (IPv4 addresses occupy
/// the low 32 bits) together with the prefix length and the address family.
/// Host bits beyond the prefix length are always zeroed, so two `Prefix`
/// values compare equal iff they denote the same route-table entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    bits: u128,
    len: u8,
    v6: bool,
}

impl Prefix {
    /// Builds an IPv4 prefix from an address and a length (`len <= 32`).
    ///
    /// Host bits are masked off. Panics if `len > 32`.
    pub fn v4(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length must be <= 32, got {len}");
        let bits = u32::from(addr) as u128;
        Self {
            bits: mask_bits(bits, len, 32),
            len,
            v6: false,
        }
    }

    /// Builds an IPv6 prefix from an address and a length (`len <= 128`).
    ///
    /// Host bits are masked off. Panics if `len > 128`.
    pub fn v6(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "IPv6 prefix length must be <= 128, got {len}");
        Self {
            bits: mask_bits(u128::from(addr), len, 128),
            len,
            v6: true,
        }
    }

    /// A synthetic test prefix: `10.x.y.0/24` derived from `id`.
    ///
    /// The simulator assigns each announced prefix a dense integer id; this
    /// constructor maps ids onto the 10.0.0.0/8 space deterministically
    /// (wrapping after 2^16 ids).
    pub fn synthetic(id: u32) -> Self {
        let x = ((id >> 8) & 0xff) as u8;
        let y = (id & 0xff) as u8;
        let z = ((id >> 16) & 0x3f) as u8; // folds ids >= 65536 into 10.x.y via second octet offset
        Prefix::v4(Ipv4Addr::new(10u8.wrapping_add(z), x, y, 0), 24)
    }

    /// A synthetic IPv6 test prefix: `2001:db8:x:y::/64` derived from
    /// `id` (the documentation prefix, RFC 3849). The v6 companion of
    /// [`Prefix::synthetic`] for dual-stack scenario generation.
    pub fn synthetic_v6(id: u32) -> Self {
        let x = ((id >> 16) & 0xffff) as u16;
        let y = (id & 0xffff) as u16;
        Prefix::v6(Ipv6Addr::new(0x2001, 0xdb8, x, y, 0, 0, 0, 0), 64)
    }

    /// Inverse of [`Prefix::synthetic_v6`]: the dense id this prefix was
    /// derived from, or `None` if it does not have the synthetic
    /// `2001:db8:x:y::/64` shape.
    pub fn synthetic_v6_index(&self) -> Option<u32> {
        if !self.v6 || self.len != 64 {
            return None;
        }
        let segs = Ipv6Addr::from(self.bits).segments();
        if segs[0] != 0x2001 || segs[1] != 0xdb8 {
            return None;
        }
        Some(((segs[2] as u32) << 16) | segs[3] as u32)
    }

    /// Inverse of [`Prefix::synthetic`]: the dense id this prefix was
    /// derived from, or `None` if it does not have the synthetic
    /// `10.z.x.y/24` shape. Exact for ids below `2^22` (the fold limit).
    pub fn synthetic_index(&self) -> Option<u32> {
        if self.v6 || self.len != 24 {
            return None;
        }
        let bits = self.bits as u32;
        let a = (bits >> 24) & 0xff;
        let x = (bits >> 16) & 0xff;
        let y = (bits >> 8) & 0xff;
        let z = a.wrapping_sub(10);
        if z >= 0x40 {
            return None;
        }
        Some((z << 16) | (x << 8) | y)
    }

    /// Prefix length in bits.
    #[inline]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// `true` for a zero-length (default-route) prefix.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if this is an IPv6 prefix.
    #[inline]
    pub const fn is_ipv6(&self) -> bool {
        self.v6
    }

    /// The address family this prefix belongs to.
    #[inline]
    pub fn family(&self) -> crate::AddressFamily {
        crate::AddressFamily::of(self)
    }

    /// The network address.
    pub fn addr(&self) -> IpAddr {
        if self.v6 {
            IpAddr::V6(Ipv6Addr::from(self.bits))
        } else {
            IpAddr::V4(Ipv4Addr::from(self.bits as u32))
        }
    }

    /// Raw network bits (low 32 bits for IPv4).
    #[inline]
    pub const fn raw_bits(&self) -> u128 {
        self.bits
    }

    /// Whether `self` covers `other` (i.e. `other` is equal to or more
    /// specific than `self`). Always `false` across address families.
    pub fn covers(&self, other: &Prefix) -> bool {
        if self.v6 != other.v6 || self.len > other.len {
            return false;
        }
        let width = if self.v6 { 128 } else { 32 };
        mask_bits(other.bits, self.len, width) == self.bits
    }

    /// Whether two prefixes overlap (one covers the other).
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }
}

#[inline]
fn mask_bits(bits: u128, len: u8, width: u8) -> u128 {
    if len == 0 {
        return 0;
    }
    let shift = (width - len) as u32;
    (bits >> shift) << shift
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a [`Prefix`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {:?}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePrefixError(s.to_owned());
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let len: u8 = len.parse().map_err(|_| err())?;
        match addr.parse::<IpAddr>().map_err(|_| err())? {
            IpAddr::V4(a) if len <= 32 => Ok(Prefix::v4(a, len)),
            IpAddr::V6(a) if len <= 128 => Ok(Prefix::v6(a, len)),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip_v4() {
        let x = p("192.0.2.0/24");
        assert_eq!(x.to_string(), "192.0.2.0/24");
        assert_eq!(x.len(), 24);
        assert!(!x.is_ipv6());
    }

    #[test]
    fn parse_display_roundtrip_v6() {
        let x = p("2001:db8::/32");
        assert_eq!(x.to_string(), "2001:db8::/32");
        assert!(x.is_ipv6());
    }

    #[test]
    fn host_bits_are_masked() {
        assert_eq!(p("192.0.2.77/24"), p("192.0.2.0/24"));
        assert_eq!(p("2001:db8::1/32"), p("2001:db8::/32"));
    }

    #[test]
    fn covers_and_overlaps() {
        let wide = p("10.0.0.0/8");
        let narrow = p("10.1.2.0/24");
        let other = p("11.0.0.0/8");
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.overlaps(&narrow));
        assert!(narrow.overlaps(&wide));
        assert!(!wide.overlaps(&other));
    }

    #[test]
    fn covers_is_family_local() {
        assert!(!p("0.0.0.0/0").covers(&p("::/0")));
        assert!(!p("::/0").covers(&p("0.0.0.0/0")));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("10.0.0.0".parse::<Prefix>().is_err()); // no length
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("bogus/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn synthetic_v6_roundtrips_through_index() {
        for id in [0u32, 1, 255, 65_535, 65_536, 0xdead_beef] {
            let p = Prefix::synthetic_v6(id);
            assert!(p.is_ipv6());
            assert_eq!(p.len(), 64);
            assert_eq!(p.synthetic_v6_index(), Some(id), "{p}");
            assert_eq!(p.synthetic_index(), None);
        }
        assert_eq!(Prefix::synthetic(7).synthetic_v6_index(), None);
    }

    #[test]
    fn synthetic_prefixes_are_distinct_and_stable() {
        let a = Prefix::synthetic(7);
        let b = Prefix::synthetic(8);
        assert_ne!(a, b);
        assert_eq!(a, Prefix::synthetic(7));
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn synthetic_covers_distinct_for_dense_range() {
        use std::collections::HashSet;
        let set: HashSet<Prefix> = (0..10_000).map(Prefix::synthetic).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn default_route() {
        let d = p("0.0.0.0/0");
        assert!(d.is_empty());
        assert!(d.covers(&p("203.0.113.0/24")));
    }
}
