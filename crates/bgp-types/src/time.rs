//! Simulation timestamps.

use crate::TIME_SLACK_MILLIS;
use std::fmt;
use std::ops::{Add, Sub};
use std::time::Duration;

/// A timestamp in milliseconds since an arbitrary epoch.
///
/// The paper compares update timestamps with a 100-second slack everywhere
/// (Condition 1 in §4.2, identical-update matching in §17.2);
/// [`Timestamp::within_slack`] implements exactly that comparison.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The epoch (t = 0).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1000)
    }

    /// Builds a timestamp from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Milliseconds since the epoch.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Absolute difference between two timestamps.
    #[inline]
    pub fn abs_diff(self, other: Timestamp) -> Duration {
        Duration::from_millis(self.0.abs_diff(other.0))
    }

    /// The paper's Condition-1 time test: `|t1 - t2| < 100 s`.
    #[inline]
    pub fn within_slack(self, other: Timestamp) -> bool {
        self.0.abs_diff(other.0) < TIME_SLACK_MILLIS
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.as_millis() as u64))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.as_millis() as u64)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, other: Timestamp) -> Duration {
        Duration::from_millis(self.0 - other.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_boundary_is_strict() {
        let a = Timestamp::from_secs(1000);
        assert!(a.within_slack(Timestamp::from_secs(1099)));
        assert!(a.within_slack(Timestamp::from_millis(1_099_999)));
        assert!(!a.within_slack(Timestamp::from_secs(1100))); // exactly 100s: not within
        assert!(a.within_slack(a));
    }

    #[test]
    fn slack_is_symmetric() {
        let a = Timestamp::from_secs(50);
        let b = Timestamp::from_secs(120);
        assert_eq!(a.within_slack(b), b.within_slack(a));
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10) + Duration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
        assert_eq!(t - Timestamp::from_secs(10), Duration::from_millis(500));
        assert_eq!(t.as_secs(), 10);
    }

    #[test]
    fn display_format() {
        assert_eq!(Timestamp::from_millis(12_345).to_string(), "12.345s");
    }
}
