//! Arena-id key types for interned BGP attributes.
//!
//! The route store (gill-query) deduplicates recurring attributes — AS
//! paths, community sets, implicit-withdrawal link sets, prefixes — into
//! append-only arenas and stores these `u32` ids in its per-update records
//! instead of owned values. The ids live here, next to the value types they
//! key, so other crates (segment codecs, storage backends) can pass them
//! around without depending on the store implementation.
//!
//! Id `0` is reserved in every arena for the empty value (empty path, empty
//! set), so a freshly zeroed record is a valid "no attributes" record.

/// Id of an interned AS path (`0` = the empty path).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PathId(pub u32);

/// Id of an interned, sorted community set (`0` = the empty set).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CommSetId(pub u32);

/// Id of an interned, sorted AS-link set (`0` = the empty set).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LinkSetId(pub u32);

/// Id of an interned prefix (prefixes are deduplicated but never empty, so
/// `0` is simply the first prefix seen).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PrefixId(pub u32);

impl PathId {
    /// The interned empty path.
    pub const EMPTY: PathId = PathId(0);
}

impl CommSetId {
    /// The interned empty community set.
    pub const EMPTY: CommSetId = CommSetId(0);
}

impl LinkSetId {
    /// The interned empty link set.
    pub const EMPTY: LinkSetId = LinkSetId(0);
}
