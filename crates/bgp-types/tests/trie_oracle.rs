//! Property tests: [`PrefixTrie`] lookups must agree with a naive
//! linear-scan oracle over arbitrary prefix sets.

use bgp_types::{Prefix, PrefixTrie};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Oracle for `longest_match`: scan every stored prefix, keep covering
/// ones, pick the longest (ties impossible — equal-length covering
/// prefixes of one query are equal).
fn oracle_longest<'a>(entries: &'a [(Prefix, u32)], q: &Prefix) -> Option<&'a (Prefix, u32)> {
    entries
        .iter()
        .filter(|(p, _)| p.covers(q))
        .max_by_key(|(p, _)| p.len())
}

/// Oracle for `more_specifics`: every stored prefix the query covers.
fn oracle_more_specifics(entries: &[(Prefix, u32)], q: &Prefix) -> Vec<(Prefix, u32)> {
    let mut out: Vec<_> = entries
        .iter()
        .filter(|(p, _)| q.covers(p))
        .copied()
        .collect();
    out.sort();
    out
}

/// Deduplicates by prefix keeping the *last* value, matching
/// `insert`'s replace semantics.
fn dedup_last(pairs: Vec<(Prefix, u32)>) -> Vec<(Prefix, u32)> {
    let mut map = std::collections::BTreeMap::new();
    for (p, v) in pairs {
        map.insert(p, v);
    }
    map.into_iter().collect()
}

fn prefix_from(addr: u32, len: u8) -> Prefix {
    Prefix::v4(Ipv4Addr::from(addr), len.min(32))
}

proptest! {
    #[test]
    fn longest_match_agrees_with_linear_scan(
        stored in proptest::collection::vec((any::<u32>(), 0u8..=32), 0..60),
        queries in proptest::collection::vec((any::<u32>(), 0u8..=32), 1..20),
    ) {
        let entries = dedup_last(
            stored.iter().map(|&(a, l)| (prefix_from(a, l), a)).collect(),
        );
        let trie: PrefixTrie<u32> = entries.iter().copied().collect();
        prop_assert_eq!(trie.len(), entries.len());
        for &(qa, ql) in &queries {
            let q = prefix_from(qa, ql);
            let got = trie.longest_match(&q).map(|(p, v)| (*p, *v));
            let want = oracle_longest(&entries, &q).copied();
            prop_assert_eq!(got, want, "query {}", q);
        }
    }

    #[test]
    fn longest_match_finds_stored_prefixes_clustered(
        // clustered in 10.0.0.0/8 so covering relations actually occur
        stored in proptest::collection::vec((any::<u16>(), 8u8..=32), 1..60),
        queries in proptest::collection::vec((any::<u16>(), 8u8..=32), 1..20),
    ) {
        let entries = dedup_last(
            stored
                .iter()
                .map(|&(a, l)| (prefix_from(0x0A00_0000 | (a as u32) << 8, l), a as u32))
                .collect(),
        );
        let trie: PrefixTrie<u32> = entries.iter().copied().collect();
        for &(qa, ql) in &queries {
            let q = prefix_from(0x0A00_0000 | (qa as u32) << 8, ql);
            let got = trie.longest_match(&q).map(|(p, v)| (*p, *v));
            let want = oracle_longest(&entries, &q).copied();
            prop_assert_eq!(got, want, "query {}", q);
        }
    }

    #[test]
    fn more_specifics_agrees_with_linear_scan(
        stored in proptest::collection::vec((any::<u16>(), 8u8..=32), 0..60),
        queries in proptest::collection::vec((any::<u16>(), 0u8..=24), 1..20),
    ) {
        let entries = dedup_last(
            stored
                .iter()
                .map(|&(a, l)| (prefix_from(0x0A00_0000 | (a as u32) << 8, l), a as u32))
                .collect(),
        );
        let trie: PrefixTrie<u32> = entries.iter().copied().collect();
        for &(qa, ql) in &queries {
            let q = prefix_from(0x0A00_0000 | (qa as u32) << 8, ql);
            let mut got: Vec<(Prefix, u32)> =
                trie.more_specifics(&q).into_iter().map(|(p, v)| (*p, *v)).collect();
            got.sort();
            let want = oracle_more_specifics(&entries, &q);
            prop_assert_eq!(got, want, "query {}", q);
        }
    }

    #[test]
    fn get_agrees_with_membership(
        stored in proptest::collection::vec((any::<u16>(), 8u8..=32), 0..60),
        queries in proptest::collection::vec((any::<u16>(), 8u8..=32), 1..20),
    ) {
        let entries = dedup_last(
            stored
                .iter()
                .map(|&(a, l)| (prefix_from(0x0A00_0000 | (a as u32) << 8, l), a as u32))
                .collect(),
        );
        let trie: PrefixTrie<u32> = entries.iter().copied().collect();
        for &(qa, ql) in &queries {
            let q = prefix_from(0x0A00_0000 | (qa as u32) << 8, ql);
            let want = entries.iter().find(|(p, _)| *p == q).map(|(_, v)| *v);
            prop_assert_eq!(trie.get(&q).copied(), want, "query {}", q);
        }
    }
}
