//! Live collector: runs the actual platform end to end on this machine —
//! real RFC 4271 BGP sessions over loopback TCP, GILL filters installed by
//! the orchestrator, and an MRT archive as output (§8–§9, Fig. 9).
//!
//! Run with: `cargo run --example live_collector --release`

use gill::collector::{
    run_fake_peer, DaemonConfig, DaemonPool, FakePeerConfig, MemoryStorage, Storage,
};
use gill::core::{FilterGranularity, FilterSet};
use gill::prelude::*;
use gill::wire::MrtReader;

fn main() -> std::io::Result<()> {
    // 1. Start the daemon pool (the collector).
    let mut pool = DaemonPool::start("127.0.0.1:0", DaemonConfig::default())?;
    let addr = pool.local_addr();
    println!("collector listening on {addr}");

    // 2. Install filters: drop prefix 0 from AS 65001 (a toy redundancy
    //    inference), accept everything from anchor AS 65002.
    let template = UpdateBuilder::announce(VpId::from_asn(Asn(65001)), Prefix::synthetic(0))
        .path([65001, 2, 3])
        .build();
    let filters = FilterSet::generate(
        [VpId::from_asn(Asn(65002))],
        [&template],
        FilterGranularity::VpPrefix,
    );
    pool.install_filters(filters);

    // 3. Three operators connect their routers (fake peers here), each
    //    sending 30 updates over 10 prefixes at ~50 upd/s.
    let mut handles = Vec::new();
    for asn in [65001u32, 65002, 65003] {
        let cfg = FakePeerConfig {
            asn,
            rate_per_sec: 50.0,
            count: 30,
            prefixes: 10,
        };
        handles.push(std::thread::spawn(move || run_fake_peer(addr, &cfg)));
    }
    for h in handles {
        let sent = h.join().expect("peer thread")?;
        println!("peer sent {sent} updates");
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    pool.stop();

    // 4. Drain retained updates into storage and report.
    let mut mem = MemoryStorage::default();
    pool.drain_into(&mut mem);
    let s = pool.stats();
    println!(
        "received {} | filtered {} | retained {} | lost {}",
        s.received.load(std::sync::atomic::Ordering::Relaxed),
        s.filtered.load(std::sync::atomic::Ordering::Relaxed),
        s.retained.load(std::sync::atomic::Ordering::Relaxed),
        s.lost.load(std::sync::atomic::Ordering::Relaxed),
    );

    // 5. Archive to MRT (the bgproutes.io publication format) and read it
    //    back to prove the archive is self-contained.
    let mut mrt = gill::collector::MrtStorage::new(Vec::new(), 65535);
    for u in &mem.updates {
        mrt.store(gill::collector::StoredUpdate { update: u.clone() });
    }
    let bytes = mrt.into_inner()?;
    println!("MRT archive: {} bytes", bytes.len());
    let mut reader = MrtReader::new(&bytes[..]);
    let mut n = 0;
    while let Some(_rec) = reader.next_record().expect("valid MRT") {
        n += 1;
    }
    println!("re-read {n} MRT records");
    assert_eq!(n, mem.stored());
    Ok(())
}
