//! Anchor-VP deep dive: how component #2 turns detected routing events
//! into pairwise redundancy scores and a volume-aware anchor selection
//! (§18), ending with the published filter file (§9).
//!
//! Run with: `cargo run --example anchor_analysis --release`

use gill::core::{
    category_matrix, detect_events, greedy_select, redundancy_scores, stratify_events, AnchorConfig,
};
use gill::prelude::*;
use std::collections::HashMap;

fn main() {
    let topo = TopologyBuilder::artificial(300, 42).build();
    let cats: HashMap<Asn, AsCategory> = {
        let c = gill::topology::categories::classify(&topo);
        (0..topo.num_ases() as u32)
            .map(|u| (topo.asn(u), c[u as usize]))
            .collect()
    };
    let vps = topo.pick_vps(0.2, 7);
    let mut sim = Simulator::new(&topo);
    let stream = sim.synthesize_stream(&vps, StreamConfig::default().events(100).seed(1));
    println!("{} VPs, {} updates", vps.len(), stream.updates.len());

    // Step 1: detect and stratify events.
    let events = detect_events(&stream.updates, &stream.initial_ribs, vps.len(), 300_000);
    let selected = stratify_events(&events, &cats, vps.len(), 10, 0.5);
    println!(
        "detected {} candidate events → {} after balanced stratification",
        events.len(),
        selected.len()
    );
    let m = category_matrix(&selected, &cats);
    println!("category-pair shares (Stub..Tier-1):");
    for row in &m {
        println!(
            "  {}",
            row.iter()
                .map(|v| format!("{v:.2}"))
                .collect::<Vec<_>>()
                .join("  ")
        );
    }

    // Steps 2–3: feature deltas → pairwise redundancy scores.
    let scores = redundancy_scores(&selected, &stream.updates, &stream.initial_ribs, &vps, 2);
    let mut vals: Vec<f64> = scores.values().copied().collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| vals[((vals.len() - 1) as f64 * p) as usize];
    println!(
        "redundancy scores over {} pairs: p10 {:.3}, median {:.3}, p90 {:.3}",
        vals.len(),
        q(0.1),
        q(0.5),
        q(0.9)
    );

    // Step 4: greedy, volume-aware selection.
    let mut volumes: HashMap<VpId, usize> = HashMap::new();
    for u in &stream.updates {
        *volumes.entry(u.vp).or_insert(0) += 1;
    }
    let anchors = greedy_select(&vps, &scores, &volumes, &AnchorConfig::default());
    println!(
        "selected {} anchors out of {} VPs ({:.0}%):",
        anchors.len(),
        vps.len(),
        anchors.len() as f64 / vps.len() as f64 * 100.0
    );
    for a in &anchors {
        println!("  {a}  (volume {})", volumes.get(a).copied().unwrap_or(0));
    }

    // The artifacts GILL publishes (§9): the filter file.
    let analysis = GillAnalysis::run_with_categories(&stream, &cats, &GillConfig::default());
    let text = analysis.filter_set().to_text().expect("coarse filters");
    let preview: Vec<&str> = text.lines().take(8).collect();
    println!(
        "\npublished filter file: {} lines; first {}:\n{}",
        text.lines().count(),
        preview.len(),
        preview.join("\n")
    );
}
