//! Topology mapping: how many p2p / c2p AS links are observable from a
//! growing VP deployment (§3.1, bottom panel of Fig. 4), and what GILL's
//! sampling preserves compared to random sampling at the same budget.
//!
//! Run with: `cargo run --example topology_mapping --release`

use gill::prelude::*;
use gill::sampling::{GillSampler, GillVariant, RandomVps, Sampler};
use gill::use_cases::topomap::{static_link_coverage, TopologyMapping};
use std::collections::HashMap;

fn main() {
    let topo = TopologyBuilder::artificial(500, 17).build();

    println!("AS-link visibility vs coverage (500-AS artificial topology):");
    println!("{:>10} {:>10} {:>10}", "coverage", "p2p links", "c2p links");
    for coverage in [0.01, 0.02, 0.10, 0.50, 1.0] {
        let vps = topo.pick_vps(coverage, 5);
        let nodes: Vec<u32> = vps.iter().filter_map(|v| topo.index_of(v.asn)).collect();
        let (p2p, c2p) = static_link_coverage(&topo, &nodes);
        println!(
            "{:>9.0}% {:>9.0}% {:>9.0}%",
            coverage * 100.0,
            p2p * 100.0,
            c2p * 100.0
        );
    }

    // --- GILL vs random at equal budget ---------------------------------
    let vps = topo.pick_vps(0.3, 5);
    let mut sim = Simulator::new(&topo);
    let train = sim.synthesize_stream(&vps, StreamConfig::default().events(80).seed(31));
    let eval = sim.synthesize_stream(&vps, StreamConfig::default().events(80).seed(32));
    let categories: HashMap<Asn, AsCategory> = {
        let cats = gill::topology::categories::classify(&topo);
        (0..topo.num_ases() as u32)
            .map(|u| (topo.asn(u), cats[u as usize]))
            .collect()
    };
    let gill = GillSampler::train(
        &train,
        &categories,
        &GillConfig::default(),
        GillVariant::Full,
    );
    let budget = gill.sample(&eval, usize::MAX, 1).len();
    let uc = TopologyMapping::new(&eval);
    let g = uc.score(&eval, &gill.sample(&eval, budget, 1));
    let r = uc.score(&eval, &RandomVps.sample(&eval, budget, 1));
    println!(
        "\nlink coverage at equal budget ({budget} updates): GILL {:.0}% vs Rnd.-VP {:.0}%",
        g * 100.0,
        r * 100.0
    );
}
