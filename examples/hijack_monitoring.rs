//! Hijack monitoring: shows why coverage matters for forged-origin hijack
//! detection (§3.1) and that GILL's filtered feed keeps the hijack signal
//! while discarding redundant churn.
//!
//! Run with: `cargo run --example hijack_monitoring --release`

use gill::prelude::*;
use gill::use_cases::hijack::{static_detection, HijackDetection};
use std::collections::HashMap;

fn main() {
    let topo = TopologyBuilder::artificial(400, 11).build();
    let victims: Vec<u32> = (0..120u32).map(|i| (i * 3) % 400).collect();

    // --- Part 1: static visibility vs coverage (the Fig. 4 story) -------
    println!("Type-1 forged-origin hijack visibility vs VP coverage:");
    for coverage in [0.01, 0.05, 0.25, 1.0] {
        let vps = topo.pick_vps(coverage, 3);
        let nodes: Vec<u32> = vps.iter().filter_map(|v| topo.index_of(v.asn)).collect();
        let c1 = static_detection(&topo, &nodes, &victims, 1, 9);
        let c2 = static_detection(&topo, &nodes, &victims, 2, 9);
        println!(
            "  coverage {:>4.0}% ({:>3} VPs): Type-1 {:>5.1}%  Type-2 {:>5.1}%",
            coverage * 100.0,
            nodes.len(),
            c1.rate() * 100.0,
            c2.rate() * 100.0
        );
    }

    // --- Part 2: GILL's filters keep the hijack signal ------------------
    let vps = topo.pick_vps(0.30, 3);
    let mut sim = Simulator::new(&topo);
    let train = sim.synthesize_stream(&vps, StreamConfig::default().events(60).seed(21));
    let categories: HashMap<Asn, AsCategory> = {
        let cats = gill::topology::categories::classify(&topo);
        (0..topo.num_ases() as u32)
            .map(|u| (topo.asn(u), cats[u as usize]))
            .collect()
    };
    let analysis = GillAnalysis::run_with_categories(&train, &categories, &GillConfig::default());
    let filters = analysis.filter_set();

    // a hijack-heavy evaluation window
    let eval = sim.synthesize_stream(
        &vps,
        StreamConfig {
            events: 40,
            seed: 22,
            weights: [0.3, 0.5, 0.1, 0.1],
            ..StreamConfig::default()
        },
    );
    let detector = HijackDetection::new(&eval);
    let all: Vec<usize> = (0..eval.updates.len()).collect();
    let gill_sample: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| filters.accepts(&eval.updates[i]))
        .collect();
    println!(
        "\nhijacks injected: {} | detection from all {} updates: {:.0}% | \
         from GILL's {} retained updates: {:.0}%",
        detector.truth_size(),
        all.len(),
        detector.score(&eval, &all) * 100.0,
        gill_sample.len(),
        detector.score(&eval, &gill_sample) * 100.0,
    );
}
