//! Quickstart: generate a mini Internet, synthesize BGP updates, run
//! GILL's redundancy analysis, and filter a fresh collection window.
//!
//! Run with: `cargo run --example quickstart --release`

use gill::prelude::*;
use std::collections::HashMap;

fn main() {
    // 1. A 300-AS artificial topology with the paper's statistical shape
    //    (power-law degree ~2.1, average degree ~6.1, 3 meshed Tier-1s).
    let topo = TopologyBuilder::artificial(300, 42).build();
    println!(
        "topology: {} ASes, {} links, avg degree {:.1}",
        topo.num_ases(),
        topo.num_links(),
        topo.avg_degree()
    );

    // 2. 20% of ASes host a vantage point; synthesize one training hour.
    let vps = topo.pick_vps(0.20, 7);
    let mut sim = Simulator::new(&topo);
    let train = sim.synthesize_stream(&vps, StreamConfig::default().events(80).seed(1));
    println!(
        "training window: {} VPs, {} events, {} updates",
        vps.len(),
        train.events.len(),
        train.updates.len()
    );

    // 3. Run GILL: component #1 (redundant updates) + component #2
    //    (anchor VPs), then generate (VP, prefix) filters.
    let categories: HashMap<Asn, AsCategory> = {
        let cats = gill::topology::categories::classify(&topo);
        (0..topo.num_ases() as u32)
            .map(|u| (topo.asn(u), cats[u as usize]))
            .collect()
    };
    let analysis = GillAnalysis::run_with_categories(&train, &categories, &GillConfig::default());
    println!(
        "component #1: {:.0}% of training updates classified redundant",
        analysis.component1.redundant_fraction() * 100.0
    );
    println!(
        "component #2: {} anchor VPs out of {} (scored over {} events)",
        analysis.component2.anchors.len(),
        vps.len(),
        analysis.component2.events_used
    );
    let filters = analysis.filter_set();
    println!(
        "generated {} drop rules + {} anchor accept-alls",
        filters.num_rules(),
        analysis.component2.anchors.len()
    );

    // 4. Apply the filters to a *future* window: the overshoot-and-discard
    //    collection path.
    let fresh = sim.synthesize_stream(&vps, StreamConfig::default().events(80).seed(2));
    let kept = fresh.updates.iter().filter(|u| filters.accepts(u)).count();
    println!(
        "fresh window: kept {kept}/{} updates ({:.0}% discarded at the session)",
        fresh.updates.len(),
        (1.0 - kept as f64 / fresh.updates.len() as f64) * 100.0
    );
}
